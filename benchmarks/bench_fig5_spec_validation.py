"""Figure 5: OOO core validation on SPEC CPU2006 vs the real machine.

All 29 workloads run on zsim's OOO-C model and on the reference machine
(same models + TLBs/page walks + a larger branch predictor).  Reported:
per-app IPCs sorted by |perf error|, and the MPKI error summaries the
figure's scatter plots aggregate.  Table 2's configuration is used.
"""

from conftest import emit, instrs, once

from repro.config import westmere
from repro.harness.validation import spec_validation
from repro.stats import format_table, mean_abs
from repro.workloads.spec_cpu import SPEC_CPU2006


def test_fig5_spec_cpu2006_validation(benchmark):
    config = westmere(num_cores=1, core_model="ooo")

    def run():
        return spec_validation(config, names=SPEC_CPU2006, scale=1 / 32,
                               target_instrs=instrs(25_000))

    rows = once(benchmark, run)
    table = [[r["name"], "%.3f" % r["ipc_real"], "%.3f" % r["ipc_zsim"],
              "%+.1f%%" % (100 * r["perf_error"]),
              "%.1f" % r["tlb_mpki"],
              "%+.2f" % r["l1i_mpki_err"], "%+.2f" % r["l1d_mpki_err"],
              "%+.2f" % r["l2_mpki_err"], "%+.2f" % r["l3_mpki_err"],
              "%+.2f" % r["branch_mpki_err"]] for r in rows]
    summary = [
        "avg |perf error|   : %5.1f%%" % (
            100 * mean_abs(r["perf_error"] for r in rows)),
        "within 10%%         : %d / %d apps" % (
            sum(1 for r in rows if abs(r["perf_error"]) <= 0.10),
            len(rows)),
        "avg |L1I MPKI err| : %6.2f" % mean_abs(
            r["l1i_mpki_err"] for r in rows),
        "avg |L1D MPKI err| : %6.2f" % mean_abs(
            r["l1d_mpki_err"] for r in rows),
        "avg |L2 MPKI err|  : %6.2f" % mean_abs(
            r["l2_mpki_err"] for r in rows),
        "avg |L3 MPKI err|  : %6.2f" % mean_abs(
            r["l3_mpki_err"] for r in rows),
        "avg |branch err|   : %6.2f" % mean_abs(
            r["branch_mpki_err"] for r in rows),
    ]
    emit("fig5_spec_validation",
         format_table(["app", "IPC real", "IPC zsim", "perf err",
                       "TLB MPKI", "L1I err", "L1D err", "L2 err",
                       "L3 err", "Br err"], table,
                      title="Figure 5: SPEC CPU2006 validation "
                            "(sorted by |perf error|)")
         + "\n\n" + "\n".join(summary))

    # Paper shapes: small average error with an overestimation bias,
    # most apps within 10%, and cache MPKI errors that shrink toward
    # the L3.
    avg_abs = mean_abs(r["perf_error"] for r in rows)
    assert avg_abs < 0.15
    overestimates = sum(1 for r in rows if r["perf_error"] > 0)
    assert overestimates >= len(rows) * 0.6
    assert mean_abs(r["l3_mpki_err"] for r in rows) <= \
        mean_abs(r["l1d_mpki_err"] for r in rows) + 0.2
