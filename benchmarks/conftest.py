"""Shared benchmark utilities.

Every benchmark regenerates one table or figure of the paper at a
Python-feasible scale, prints it, and saves it under
``benchmarks/results/``.  Scales can be grown via environment variables:

* ``REPRO_BENCH_INSTRS``  — multiplier on instruction targets (default 1)
* ``REPRO_BENCH_TILES``   — multiplier on tile counts (default 1)

The paper's 64/256/1024-core systems map by default onto 16/32/64-core
simulations (see DESIGN.md: shapes, not absolute magnitudes, are the
reproduction target).
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

INSTR_SCALE = float(os.environ.get("REPRO_BENCH_INSTRS", "1"))
TILE_SCALE = float(os.environ.get("REPRO_BENCH_TILES", "1"))


def instrs(base):
    """Scaled instruction target."""
    return max(2_000, int(base * INSTR_SCALE))


def tiles(base):
    """Scaled tile count."""
    return max(1, int(base * TILE_SCALE))


def emit(name, text):
    """Print a result block and persist it to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print()
    print(text)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
