"""Section 4.2: sensitivity to the interval length.

The paper reruns the Table 4 workloads with 1K/10K/100K-cycle intervals:
10K shows ~0.45% average error vs 1K and is ~42% faster; 100K shows
~1.1% error for little extra speed.  We sweep the same lengths on a
scaled chip and report error in simulated performance plus speedup.
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.harness.performance import interval_sensitivity
from repro.stats import format_table
from repro.workloads import mt_workload

INTERVALS = (1_000, 10_000, 100_000)
WORKLOADS = ("blackscholes", "fluidanimate", "ocean", "fft")


def test_interval_length_sensitivity(benchmark):
    num_tiles = tiles(2)
    config = tiled_chip(num_tiles=num_tiles, core_model="simple",
                        cores_per_tile=4)
    workloads = [mt_workload(name, scale=1 / 64,
                             num_threads=config.num_cores)
                 for name in WORKLOADS]

    def run():
        return interval_sensitivity(config, workloads,
                                    target_instrs=instrs(40_000),
                                    intervals=INTERVALS,
                                    num_threads=config.num_cores)

    out = once(benchmark, run)
    rows = [[interval,
             "%.2f%%" % (100 * out[interval]["avg_abs_error"]),
             "%.2f%%" % (100 * out[interval]["max_abs_error"]),
             "%.2fx" % out[interval]["speedup"]]
            for interval in INTERVALS]
    emit("interval_sensitivity", format_table(
        ["interval (cycles)", "avg |perf err| vs 1K",
         "max |perf err|", "wall-clock speedup vs 1K"], rows,
        title="Interval length sensitivity (Section 4.2)"))

    # Paper shapes: 10K-cycle intervals cost little accuracy; going to
    # 100K "may introduce excessive error" (our runs span well under
    # 100K cycles, so the effect is amplified — see EXPERIMENTS.md).
    assert out[10_000]["avg_abs_error"] < 0.10
    assert out[100_000]["avg_abs_error"] > out[10_000]["avg_abs_error"]
    # Deviation from the paper: longer intervals do NOT speed Python up
    # (per-instruction interpretation dominates the per-interval engine
    # overheads the paper's 42% speedup comes from; larger weave batches
    # even cost a little).  Keep a loose sanity floor only — wall-clock
    # ratios are noisy under load.
    assert out[10_000]["speedup"] > 0.1
    assert out[100_000]["speedup"] > 0.1
