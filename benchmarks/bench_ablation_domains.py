"""Ablation: weave-phase domain count.

Domains are the weave phase's unit of parallelism: more domains spread
events over more queues (better modeled host scaling) at the cost of
more domain crossings.  This sweep quantifies that trade-off on a fixed
8-tile chip.
"""

import dataclasses

from conftest import emit, instrs, once

from repro.config import tiled_chip
from repro.core import ZSim
from repro.stats import format_table
from repro.workloads import mt_workload

DOMAIN_COUNTS = (1, 2, 4, 8)


def run_once(num_domains):
    cfg = tiled_chip(num_tiles=8, core_model="simple", cores_per_tile=2)
    cfg = dataclasses.replace(cfg, boundweave=dataclasses.replace(
        cfg.boundweave, num_domains=num_domains))
    workload = mt_workload("swim_m", scale=1 / 64,
                           num_threads=cfg.num_cores)
    sim = ZSim(cfg, workload.make_threads(
        target_instrs=instrs(40_000), num_threads=cfg.num_cores))
    result = sim.run()
    return sim, result


def test_ablation_domain_count(benchmark):
    def run():
        out = {}
        for n in DOMAIN_COUNTS:
            sim, result = run_once(n)
            out[n] = {
                "domains": len(sim.weave.domains),
                "crossings": result.weave_stats.crossings,
                "cycles": result.cycles,
                "weave_speedup16": sim.host_model.speedup(16),
            }
        return out

    out = once(benchmark, run)
    rows = [[n, out[n]["domains"], out[n]["crossings"],
             out[n]["cycles"], "%.1fx" % out[n]["weave_speedup16"]]
            for n in DOMAIN_COUNTS]
    emit("ablation_domains", format_table(
        ["requested", "domains", "crossings", "simulated cycles",
         "modeled speedup @16"], rows,
        title="Ablation: weave domain count (8-tile chip, swim_m)"))

    # Timing is (nearly) domain-partition independent: partitions only
    # reorder same-cycle event ties, so results agree within a fraction
    # of a percent; crossings grow with domains.
    cycles = [out[n]["cycles"] for n in DOMAIN_COUNTS]
    assert max(cycles) - min(cycles) < 0.02 * min(cycles)
    assert out[1]["crossings"] == 0
    assert out[8]["crossings"] > out[2]["crossings"] > 0
    # More domains -> at least as much modeled parallelism.
    assert out[8]["weave_speedup16"] >= out[1]["weave_speedup16"] - 0.2
