"""Table 4: simulation speed on the large tiled chip.

The paper simulates 1024 cores (64 tiles) on a 16-core host; the
pure-Python default here is a 16-core chip (4 tiles x 4 cores, grow via
REPRO_BENCH_TILES) running the same 13 workloads with one thread per
core.  Reported per model set (IPC1/OOO x contention on/off):
simulated MIPS and slowdown vs "native" (functional-only) execution.
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.harness.performance import MODEL_SETS, table4
from repro.stats import format_table
from repro.workloads import TABLE4_WORKLOADS, mt_workload


def test_table4_simulation_speed(benchmark):
    num_tiles = tiles(4)
    config = tiled_chip(num_tiles=num_tiles, core_model="ooo",
                        cores_per_tile=4)
    workloads = [mt_workload(name, scale=1 / 64,
                             num_threads=config.num_cores)
                 for name in TABLE4_WORKLOADS]

    def run():
        return table4(config, workloads,
                      target_instrs=instrs(30_000),
                      num_threads=config.num_cores)

    table, summary = once(benchmark, run)
    labels = [label for label, _c, _m in MODEL_SETS]
    rows = []
    for name in TABLE4_WORKLOADS:
        cells = [name]
        for label in labels:
            entry = table[name][label]
            cells.append("%.3f/%.0fx" % (entry["mips"],
                                         entry["slowdown"]))
        rows.append(cells)
    rows.append(["hmean"] + ["%.3f/%.0fx"
                             % (summary[label]["hmean_mips"],
                                summary[label]["hmean_slowdown"])
                             for label in labels])
    emit("table4_thousand_core", format_table(
        ["workload"] + ["%s MIPS/slowdown" % l for l in labels], rows,
        title="Table 4: %d-core chip simulation speed "
              "(paper: 1024 cores)" % config.num_cores))

    # Model-set ordering (the paper's headline shape): the simplest
    # models simulate fastest, detail and contention cost speed.
    h = {label: summary[label]["hmean_mips"] for label in labels}
    assert h["IPC1-NC"] > h["IPC1-C"]
    assert h["IPC1-NC"] > h["OOO-C"]
    assert h["OOO-NC"] > h["OOO-C"]
    # Memory-intensive workloads simulate slower than compute-bound
    # ones under contention models (swim/stream vs blackscholes).
    assert table["blackscholes"]["IPC1-C"]["mips"] > \
        table["swim_m"]["IPC1-C"]["mips"]
