"""Figure 2: fraction of accesses with path-altering interference.

The paper profiles a 64-core chip (private L1s+L2, 16-bank shared L3)
over 10 PARSEC/SPLASH-2 workloads at 1K/10K/100K-cycle intervals; the
fraction is negligible at 1K cycles and grows with the window.  We run
the same ten workload names on a scaled-down tiled chip with one thread
per core.
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.core import InterferenceProfiler, ZSim
from repro.stats import format_table
from repro.workloads import FIGURE2_WORKLOADS, mt_workload

INTERVALS = (1_000, 10_000, 100_000)


def profile_workload(name, num_tiles, cores_per_tile):
    config = tiled_chip(num_tiles=num_tiles, core_model="simple",
                        cores_per_tile=cores_per_tile)
    profiler = InterferenceProfiler(INTERVALS)
    workload = mt_workload(name, scale=1 / 32,
                           num_threads=config.num_cores)
    threads = workload.make_threads(target_instrs=instrs(60_000),
                                    num_threads=config.num_cores)
    # Bound phase only: the profile is a property of the access streams.
    sim = ZSim(config, threads=threads, contention_model="none",
               profiler=profiler)
    sim.run()
    return profiler


def test_fig2_path_altering_interference(benchmark):
    num_tiles = tiles(4)

    def run():
        rows = []
        for name in FIGURE2_WORKLOADS:
            profiler = profile_workload(name, num_tiles, 4)
            rows.append([name] + ["%.2e" % profiler.fraction(n)
                                  for n in INTERVALS]
                        + ["%.2e" % profiler.reordered_fraction(1_000)])
        return rows

    rows = once(benchmark, run)
    from repro.stats import line_plot
    series = {row[0]: [(i + 1, float(row[i + 1])) for i in range(3)]
              for row in rows}
    plot = line_plot(series, width=48, height=12,
                     x_label="interval (1=1K, 2=10K, 3=100K cycles)",
                     y_label="fraction", logy=True,
                     title="Figure 2 (log y)")
    emit("fig2_interference", format_table(
        ["workload", "1Kcyc", "10Kcyc", "100Kcyc", "reordered@1K"],
        rows,
        title="Figure 2: fraction of accesses with path-altering "
              "interference (%d cores)" % (num_tiles * 4))
        + "\n\n" + plot)

    # The paper's claims: interference grows with the interval and is
    # small at 1K cycles for every workload.
    for row in rows:
        f1k, f10k, f100k = (float(row[1]), float(row[2]), float(row[3]))
        assert f1k <= f10k <= f100k
        assert f1k < 0.05
