"""Figure 8: simulator speedup vs host threads.

The bound phase's work division (interval barrier with shuffled wake
order and thread moderation) and the weave phase's domain partition are
executed for real; host parallelism is then modeled from the measured
per-core and per-domain work (Python's GIL precludes wall-clock thread
scaling — see DESIGN.md).  The paper's shapes: near-linear scaling of
no-contention models, sublinear weave-phase scaling for contention
models, saturation at the host's core count.
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.harness.performance import host_scalability
from repro.stats import format_table
from repro.workloads import mt_workload

HOST_THREADS = (1, 2, 4, 8, 16, 32)
MODELS = (("IPC1-NC", "simple", "none"), ("IPC1-C", "simple", "weave"),
          ("OOO-NC", "ooo", "none"), ("OOO-C", "ooo", "weave"))


def test_fig8_host_thread_scalability(benchmark):
    num_tiles = tiles(8)
    config = tiled_chip(num_tiles=num_tiles, core_model="simple",
                        cores_per_tile=4)
    workload = mt_workload("ocean", scale=1 / 64,
                           num_threads=config.num_cores)

    def run():
        from repro.core import ZSim
        from repro.harness.performance import with_core_model
        curves = {}
        for label, core_model, contention in MODELS:
            curves[label] = host_scalability(
                config, workload, instrs(160_000),
                num_threads=config.num_cores,
                host_threads=HOST_THREADS,
                core_model=core_model, contention_model=contention)
        # The paper's future work: pipelining bound and weave phases.
        sim = ZSim(with_core_model(config, "simple"),
                   threads=workload.make_threads(
                       target_instrs=instrs(160_000),
                       num_threads=config.num_cores),
                   contention_model="weave", host_threads=HOST_THREADS)
        sim.run()
        curves["IPC1-C pipelined"] = [
            (h, sim.host_model.pipelined_speedup(h))
            for h in HOST_THREADS]
        return curves

    curves = once(benchmark, run)
    labels = [label for label, _c, _m in MODELS] + ["IPC1-C pipelined"]
    rows = [[h] + ["%.1fx" % dict(curves[label])[h] for label in labels]
            for h in HOST_THREADS]
    from repro.stats import line_plot
    plot = line_plot({label: curves[label] for label, _c, _m in MODELS},
                     width=48, height=14, x_label="host threads",
                     y_label="speedup", title="Figure 8")
    emit("fig8_host_scalability", format_table(
        ["host threads"] + labels, rows,
        title="Figure 8: modeled simulator speedup vs host threads "
              "(%d simulated cores)" % config.num_cores)
        + "\n\n" + plot)

    for label, _c, _m in MODELS:
        speedups = [s for _h, s in curves[label]]
        # Monotone non-decreasing and meaningfully parallel.
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] > 2.0
    # The weave phase scales sublinearly (Section 4.2): the detailed
    # contention model's speedup is clearly capped below its
    # no-contention counterpart.  (IPC1 curves are too noisy on small
    # per-interval wall times to compare; the OOO pair is robust.)
    assert dict(curves["OOO-NC"])[16] > dict(curves["OOO-C"])[16] + 2.0
    # Pipelining bound+weave (the paper's future work) lifts the
    # contention model's scalability.
    assert dict(curves["IPC1-C pipelined"])[16] >= \
        dict(curves["IPC1-C"])[16] - 1e-9
