"""Figure 9: simulation speed vs simulated chip size.

The paper sweeps 64/256/1024-core tiled chips; the Python default maps
that to 8/16/32 cores (2/4/8 tiles).  Reported: hmean MIPS per model
set.  Expected shapes: performance does not collapse with size (unlike
conventional simulators), and contention models gain weave-phase
parallelism with more domains.
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.harness.performance import MODEL_SETS, target_scalability
from repro.stats import format_table
from repro.workloads import mt_workload

SIZES = (2, 4, 8)  # tiles; x4 cores each
WORKLOADS = ("blackscholes", "ocean", "canneal")


def test_fig9_target_scalability(benchmark):
    def config_factory(num_tiles):
        return tiled_chip(num_tiles=tiles(num_tiles),
                          core_model="ooo", cores_per_tile=4)

    def workloads_factory(num_tiles):
        cores = tiles(num_tiles) * 4
        return [mt_workload(name, scale=1 / 64, num_threads=cores)
                for name in WORKLOADS]

    def run():
        return target_scalability(config_factory, SIZES,
                                  workloads_factory,
                                  target_instrs=instrs(25_000))

    curves = once(benchmark, run)
    labels = [label for label, _c, _m in MODEL_SETS]
    rows = [[tiles(size) * 4]
            + ["%.3f" % dict(curves[label])[size] for label in labels]
            for size in SIZES]
    emit("fig9_target_scalability", format_table(
        ["cores"] + labels, rows,
        title="Figure 9: hmean simulation MIPS vs simulated cores"))

    for label in labels:
        mips = [dict(curves[label])[s] for s in SIZES]
        # Aggregate speed stays within an order of magnitude across a
        # 4x size sweep (no per-core collapse).
        assert max(mips) < 12 * min(mips)
