"""Extension: weave-phase NoC model (the paper's stated future work).

Section 3.2.2 leaves weave NoC models to future work, arguing zero-load
latencies capture most NoC impact for real workloads on well-provisioned
networks.  This benchmark implements-and-checks that claim: with the
link-contention model enabled, link stalls exist but shift end-to-end
results only modestly on a provisioned mesh — and the model is there for
under-provisioned ones.
"""

import dataclasses

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.core import ZSim
from repro.stats import format_table
from repro.workloads import mt_workload


def run_one(noc_weave, num_tiles, link_occupancy=2):
    cfg = tiled_chip(num_tiles=num_tiles, core_model="simple",
                     cores_per_tile=4)
    cfg = dataclasses.replace(cfg, network=dataclasses.replace(
        cfg.network, weave_model=noc_weave,
        link_occupancy=link_occupancy))
    workload = mt_workload("canneal", scale=1 / 64,
                           num_threads=cfg.num_cores)
    sim = ZSim(cfg, workload.make_threads(
        target_instrs=instrs(40_000), num_threads=cfg.num_cores))
    result = sim.run()
    return result, sim


def test_extension_weave_noc_model(benchmark):
    num_tiles = tiles(4)

    def run():
        base, _ = run_one(False, num_tiles)
        provisioned, sim_p = run_one(True, num_tiles)
        congested, sim_c = run_one(True, num_tiles, link_occupancy=16)
        return {
            "off": (base.cycles, 0, 0),
            "on (2-cyc links)": (
                provisioned.cycles,
                sim_p.hierarchy.noc_fabric.link_stall_cycles,
                sum(c.events_executed
                    for c in sim_p.hierarchy.weave_components
                    if c.name.startswith("noc"))),
            "on (16-cyc links)": (
                congested.cycles,
                sim_c.hierarchy.noc_fabric.link_stall_cycles,
                sum(c.events_executed
                    for c in sim_c.hierarchy.weave_components
                    if c.name.startswith("noc"))),
        }

    out = once(benchmark, run)
    rows = [[name, cycles, stalls, events]
            for name, (cycles, stalls, events) in out.items()]
    emit("extension_noc_weave", format_table(
        ["NoC weave model", "simulated cycles", "link stall cycles",
         "NoC events"], rows,
        title="Extension: weave-phase NoC link contention "
              "(canneal, %d tiles)" % num_tiles))

    base_cycles = out["off"][0]
    prov_cycles, prov_stalls, prov_events = out["on (2-cyc links)"]
    cong_cycles, cong_stalls, _ = out["on (16-cyc links)"]
    assert prov_events > 0
    # The paper's claim: on a provisioned NoC, contention barely moves
    # end-to-end results (zero-load latencies suffice)...
    assert abs(prov_cycles - base_cycles) < 0.10 * base_cycles
    # ...but an under-provisioned network shows real degradation.
    assert cong_stalls > 5 * max(prov_stalls, 1)
    assert cong_cycles > prov_cycles
