"""Ablation: L2 stride prefetcher (extension; see DESIGN.md).

STREAM-class traffic on real Westmeres rides on hardware prefetchers;
the reproduction substitutes line-stride accesses by default.  This
ablation shows the modeled prefetcher closing the same gap on streaming
SPEC-like workloads: L2 MPKIs collapse and IPC rises, while
pointer-chasing workloads are unaffected (no stable stride to train on).
"""

import dataclasses

from conftest import emit, instrs, once

from repro.config import westmere
from repro.core import ZSim
from repro.stats import format_table
from repro.workloads import spec_workload

STREAMING = ("libquantum", "lbm", "leslie3d")
CHASING = ("mcf", "omnetpp")


def run_one(name, degree):
    cfg = westmere(num_cores=1, core_model="ooo")
    cfg = dataclasses.replace(cfg, l2=dataclasses.replace(
        cfg.l2, prefetch_degree=degree))
    workload = spec_workload(name, scale=1 / 32)
    sim = ZSim(cfg, workload.make_threads(
        target_instrs=instrs(20_000)))
    res = sim.run()
    return res, sim


def test_ablation_stride_prefetcher(benchmark):
    def run():
        out = {}
        for name in STREAMING + CHASING:
            off, _ = run_one(name, 0)
            on, sim = run_one(name, 2)
            out[name] = {
                "ipc_off": off.ipc, "ipc_on": on.ipc,
                "l2_off": off.core_mpki("l2"),
                "l2_on": on.core_mpki("l2"),
                "fills": sum(l2.prefetch_fills
                             for l2 in sim.hierarchy.l2s),
            }
        return out

    out = once(benchmark, run)
    rows = [[name, "%.3f" % d["ipc_off"], "%.3f" % d["ipc_on"],
             "%.2f" % d["l2_off"], "%.2f" % d["l2_on"], d["fills"]]
            for name, d in out.items()]
    emit("ablation_prefetcher", format_table(
        ["app", "IPC off", "IPC on", "L2 MPKI off", "L2 MPKI on",
         "prefetch fills"], rows,
        title="Ablation: L2 stride prefetcher (degree 2)"))

    for name in STREAMING:
        assert out[name]["ipc_on"] > 1.2 * out[name]["ipc_off"]
        assert out[name]["l2_on"] < 0.5 * out[name]["l2_off"]
    for name in CHASING:
        # Pointer chasing has no trainable stride: little change.
        assert abs(out[name]["ipc_on"] - out[name]["ipc_off"]) \
            < 0.15 * out[name]["ipc_off"]
