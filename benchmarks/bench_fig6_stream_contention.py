"""Figure 6 (right): STREAM scalability under contention models.

STREAM saturates memory bandwidth.  Ignoring contention lets it scale
almost linearly; the M/D/1 queueing model (Graphite-style) is
inaccurate; the event-driven weave model and the DRAMSim-like
cycle-driven model both track the reference machine.
"""

from conftest import emit, instrs, once

from repro.config import westmere
from repro.harness.validation import stream_scalability
from repro.stats import format_table

THREADS = (1, 2, 4, 6)


def test_fig6_stream_contention_models(benchmark):
    def factory(num_cores):
        # OOO cores: saturation needs memory-level parallelism.
        return westmere(num_cores=num_cores, core_model="ooo")

    def run():
        return stream_scalability(factory, THREADS, scale=1 / 32,
                                  target_instrs=instrs(50_000))

    curves = once(benchmark, run)
    order = ["none", "md1", "weave", "dramsim", "real"]
    rows = [[n] + ["%.2f" % curves[m][i][1] for m in order]
            for i, n in enumerate(THREADS)]
    from repro.stats import line_plot
    plot = line_plot({m: curves[m] for m in order}, width=48, height=14,
                     x_label="threads", y_label="speedup",
                     title="Figure 6 (right)")
    emit("fig6_stream_contention", format_table(
        ["threads", "no contention", "M/D/1", "event-driven",
         "DRAMSim-like", "real"], rows,
        title="Figure 6 (right): STREAM speedup under contention "
              "models") + "\n\n" + plot)

    top = {m: curves[m][-1][1] for m in order}
    # The paper's shape: no-contention over-scales; the event-driven
    # model tracks the real machine closely; M/D/1 does not.
    assert top["none"] > 1.3 * top["real"]
    assert abs(top["weave"] - top["real"]) <= 0.15 * top["real"]
    assert abs(top["md1"] - top["real"]) > \
        abs(top["weave"] - top["real"])
