"""Execution backends: measured vs modeled speedup.

Runs the same multithreaded workload under each execution backend and
prints, side by side, the wall time the backend actually achieved
(measured makespan) and the speedup the host-parallelism model predicts
for the configured thread count.  On stock CPython the GIL keeps
measured speedups near 1x while the model predicts the algorithm's
parallelism — the gap IS the result; on free-threaded builds the two
columns converge.  Simulated results are asserted identical across
backends (the determinism contract of repro.exec).

Each backend is also run with the flight recorder disabled: the
``flight off`` / ``overhead`` columns pin the cost of the default-on
black box (one clock read + deque append per interval-grained event),
which must stay in the noise (<2%).
"""

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.core import ZSim
from repro.exec import BACKEND_NAMES
from repro.stats import assert_equivalent, format_table
from repro.workloads import mt_workload


def _run_backend(config, workload, target, backend, flight=None):
    sim = ZSim(config,
               threads=workload.make_threads(
                   target_instrs=target, num_threads=config.num_cores),
               contention_model="weave", backend=backend, flight=flight)
    result = sim.run()
    tree = result.stats().to_dict()
    tree.pop("host", None)
    return result, sim.host_model, tree, sim.backend.host_stats()


def test_backend_scaling(benchmark):
    config = tiled_chip(num_tiles=tiles(4), core_model="simple",
                        cores_per_tile=4)
    workload = mt_workload("ocean", scale=1 / 64,
                           num_threads=config.num_cores)
    target = instrs(120_000)
    host = config.boundweave.host_threads

    def run():
        rows = []
        baseline = None
        for backend in BACKEND_NAMES:
            result, model, tree, exec_stats = _run_backend(
                config, workload, target, backend)
            if baseline is None:
                baseline = tree
            assert_equivalent(
                tree, baseline,
                context="%s backend vs serial" % backend)
            # Same backend, recorder off: the delta is the flight
            # recorder's whole cost (ring appends + guard checks).
            # Best-of-two interleaved runs per mode, so host noise
            # (which dwarfs the real cost) largely cancels.
            result_off, _, tree_off, _ = _run_backend(
                config, workload, target, backend, flight=False)
            assert_equivalent(
                tree_off, baseline,
                context="%s backend without flight" % backend)
            result2, _, _, _ = _run_backend(
                config, workload, target, backend)
            result_off2, _, _, _ = _run_backend(
                config, workload, target, backend, flight=False)
            wall_on = min(result.wall_seconds, result2.wall_seconds)
            wall_off = min(result_off.wall_seconds,
                           result_off2.wall_seconds)
            overhead = (wall_on - wall_off) / wall_off
            modeled = (model.pipelined_speedup(host)
                       if backend == "pipelined" else model.speedup(host))
            if backend == "process":
                # Speculation efficiency: committed worker runs vs
                # driver-side fallbacks.  On a multi-core host the
                # measured column exceeds 1x (workers dodge the GIL);
                # on a single-CPU host it honestly reports the
                # validation overhead instead.
                note = "%d commits / %d rejects / %d inline (pool %s)" % (
                    exec_stats.get("spec_commits", 0),
                    exec_stats.get("spec_rejects", 0),
                    exec_stats.get("inline_runs", 0),
                    exec_stats.get("pool_size", "?"))
            else:
                note = "-"
            rows.append([backend,
                         "%.3f" % wall_on,
                         "%.3f" % wall_off,
                         "%+.1f%%" % (100 * overhead),
                         "%.2fx" % model.measured_speedup(),
                         "%.2fx" % modeled,
                         "%d" % result.instrs,
                         note])
        return rows

    rows = once(benchmark, run)
    emit("backend_scaling", format_table(
        ["backend", "wall s", "flight off", "overhead",
         "measured", "modeled x%d" % host, "instrs", "speculation"],
        rows,
        title="Execution backends (%d cores, measured vs modeled, "
              "flight-recorder overhead)" % config.num_cores))
