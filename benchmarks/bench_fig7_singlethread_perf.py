"""Figure 7: single-thread simulator performance distribution.

All 29 SPEC-like workloads on the Table 2 system under the four model
sets; the figure plots the per-app MIPS distribution.  The paper's
shapes: IPC1-NC fastest, OOO-C slowest, and memory intensity is the
main factor separating apps within a model set.
"""

from conftest import emit, instrs, once

from repro.config import westmere
from repro.harness.performance import MODEL_SETS, simulate_mips
from repro.stats import format_table, hmean
from repro.workloads.spec_cpu import SPEC_CPU2006, spec_workload


def test_fig7_singlethread_mips_distribution(benchmark):
    config = westmere(num_cores=1)
    labels = [label for label, _c, _m in MODEL_SETS]

    def run():
        out = {}
        for name in SPEC_CPU2006:
            workload = spec_workload(name, scale=1 / 32)
            out[name] = {}
            for label, core_model, contention in MODEL_SETS:
                res = simulate_mips(config, workload,
                                    instrs(12_000), core_model,
                                    contention)
                out[name][label] = res.mips
        return out

    mips = once(benchmark, run)
    rows = [[name] + ["%.3f" % mips[name][label] for label in labels]
            for name in sorted(mips,
                               key=lambda n: -mips[n]["IPC1-NC"])]
    summary = ["hmean %-8s: %.3f MIPS"
               % (label, hmean(mips[n][label] for n in mips))
               for label in labels]
    emit("fig7_singlethread_perf",
         format_table(["app"] + labels, rows,
                      title="Figure 7: single-thread simulation speed "
                            "(MIPS) per model set")
         + "\n\n" + "\n".join(summary))

    h = {label: hmean(mips[n][label] for n in mips)
         for label in labels}
    assert h["IPC1-NC"] >= h["IPC1-C"]
    assert h["IPC1-NC"] >= h["OOO-NC"] >= h["OOO-C"]
    # Memory-bound apps are the slowest to simulate within a model set.
    assert mips["namd"]["IPC1-NC"] > mips["mcf"]["IPC1-NC"]
