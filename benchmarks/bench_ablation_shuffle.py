"""Ablation: interval-barrier wake-order shuffling (Section 3.2.1).

The barrier reshuffles the wake-up order every interval to "avoid
consistently prioritizing a few threads, which in pathological cases can
cause small errors that add up", and to inject the non-determinism that
makes results robust.  This ablation measures both effects: with
shuffling, repeated runs with different seeds give a spread of results
(robustness can be quantified); without it, one fixed order is silently
trusted.
"""

import dataclasses

from conftest import emit, instrs, once

from repro.config import small_test_system
from repro.core import ZSim
from repro.stats import format_table, mean, stdev
from repro.workloads import mt_workload

SEEDS = (1, 2, 3, 4, 5)


def run_once(shuffle, seed):
    cfg = small_test_system(num_cores=4, core_model="simple")
    cfg = dataclasses.replace(cfg, boundweave=dataclasses.replace(
        cfg.boundweave, shuffle_wake_order=shuffle, seed=seed))
    workload = mt_workload("canneal", scale=1 / 64, num_threads=4)
    sim = ZSim(cfg, workload.make_threads(target_instrs=instrs(30_000),
                                          num_threads=4))
    return sim.run().cycles


def test_ablation_wake_order_shuffle(benchmark):
    def run():
        shuffled = [run_once(True, seed) for seed in SEEDS]
        fixed = [run_once(False, seed) for seed in SEEDS]
        return shuffled, fixed

    shuffled, fixed = once(benchmark, run)
    rows = [
        ["shuffled", "%.0f" % mean(shuffled), "%.0f" % stdev(shuffled),
         "%.2f%%" % (100 * stdev(shuffled) / mean(shuffled))],
        ["fixed order", "%.0f" % mean(fixed), "%.0f" % stdev(fixed),
         "%.2f%%" % (100 * stdev(fixed) / mean(fixed))],
    ]
    emit("ablation_shuffle", format_table(
        ["wake order", "mean cycles", "stdev", "cv"], rows,
        title="Ablation: barrier wake-order shuffling (5 seeds, "
              "canneal-4t)"))

    # Shuffling turns the seed into real non-determinism (non-zero
    # spread); the fixed order collapses every seed to one result.
    assert stdev(fixed) == 0.0
    assert stdev(shuffled) > 0.0
    # And the systematic-bias check: the fixed order's single result
    # lies within a few stdevs of the shuffled ensemble's mean.
    spread = max(stdev(shuffled), 1.0)
    assert abs(mean(fixed) - mean(shuffled)) < 20 * spread
