"""Ablation: domain-crossing dependency optimizations (Section 3.2.2).

The weave phase inserts dependencies on crossing events (response
crossings depend on the event generating the request; same-domain
crossings from one core are serialized) "to avoid premature
synchronization between domains".  Disabling the optimization makes
crossings poll eagerly: every requeue is a synchronization the optimized
engine avoids.
"""

import dataclasses

from conftest import emit, instrs, once, tiles

from repro.config import tiled_chip
from repro.core import ZSim
from repro.stats import format_table
from repro.workloads import mt_workload


def run_once(crossing_deps, num_tiles):
    cfg = tiled_chip(num_tiles=num_tiles, core_model="simple",
                     cores_per_tile=4)
    cfg = dataclasses.replace(cfg, boundweave=dataclasses.replace(
        cfg.boundweave, crossing_dependencies=crossing_deps))
    workload = mt_workload("ocean", scale=1 / 64,
                           num_threads=cfg.num_cores)
    sim = ZSim(cfg, workload.make_threads(
        target_instrs=instrs(40_000), num_threads=cfg.num_cores))
    result = sim.run()
    return result


def test_ablation_crossing_dependencies(benchmark):
    num_tiles = tiles(4)

    def run():
        return run_once(True, num_tiles), run_once(False, num_tiles)

    optimized, eager = once(benchmark, run)
    rows = [
        ["optimized", optimized.weave_stats.crossings,
         optimized.weave_stats.crossing_requeues, optimized.cycles],
        ["eager (ablated)", eager.weave_stats.crossings,
         eager.weave_stats.crossing_requeues, eager.cycles],
    ]
    emit("ablation_crossings", format_table(
        ["crossing deps", "crossings", "premature requeues",
         "simulated cycles"], rows,
        title="Ablation: domain-crossing dependency optimization "
              "(%d domains)" % num_tiles))

    # The optimization is about engine overhead, not timing: simulated
    # results are identical, but the eager variant pays premature
    # synchronizations (requeues) the optimized engine avoids entirely.
    assert eager.cycles == optimized.cycles
    assert optimized.weave_stats.crossing_requeues == 0
    assert eager.weave_stats.crossing_requeues > 0
    assert optimized.weave_stats.crossings > 0
