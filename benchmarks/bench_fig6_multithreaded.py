"""Figure 6 (left + middle): multithreaded validation.

Left: perf error (perf = 1/time) for the 23 multithreaded workloads at
the paper's thread counts.  Middle: PARSEC speedups from 1 to 6 threads,
zsim vs the reference machine.
"""

from conftest import emit, instrs, once

from repro.config import westmere
from repro.harness.validation import mt_validation, speedup_curve
from repro.stats import format_table, mean_abs
from repro.workloads.multithreaded import MULTITHREADED

SPEEDUP_WORKLOADS = ("blackscholes", "swaptions", "freqmine")
THREADS = (1, 2, 4, 6)


def test_fig6_multithreaded_perf_error(benchmark):
    config = westmere(num_cores=6, core_model="ooo")
    names = [n for n in MULTITHREADED if n != "stream"]

    def run():
        return mt_validation(config, names, scale=1 / 32,
                             target_instrs=instrs(30_000))

    rows = once(benchmark, run)
    table = [[r["name"], "%+.1f%%" % (100 * r["perf_error"]),
              "%+.2f" % r["l1d_mpki_err"], "%+.2f" % r["l3_mpki_err"]]
             for r in rows]
    avg = mean_abs(r["perf_error"] for r in rows)
    emit("fig6_mt_perf_error",
         format_table(["workload", "perf err", "L1D MPKI err",
                       "L3 MPKI err"], table,
                      title="Figure 6 (left): multithreaded perf error")
         + "\navg |perf error| = %.1f%%" % (100 * avg))
    assert avg < 0.20
    assert mean_abs(r["l3_mpki_err"] for r in rows) < 2.0


def test_fig6_parsec_speedups(benchmark):
    def factory(num_cores):
        return westmere(num_cores=num_cores, core_model="ooo")

    def run():
        curves = {}
        for name in SPEEDUP_WORKLOADS:
            curves[name] = {
                "zsim": speedup_curve(factory, name, THREADS,
                                      scale=1 / 32,
                                      target_instrs=instrs(40_000),
                                      simulator="zsim"),
                "real": speedup_curve(factory, name, THREADS,
                                      scale=1 / 32,
                                      target_instrs=instrs(40_000),
                                      simulator="real"),
            }
        return curves

    curves = once(benchmark, run)
    rows = []
    for name, by_sim in curves.items():
        for sim_name, points in by_sim.items():
            rows.append([name, sim_name]
                        + ["%.2f" % s for _n, s in points])
    emit("fig6_parsec_speedups",
         format_table(["workload", "machine"]
                      + ["%dt" % n for n in THREADS], rows,
                      title="Figure 6 (middle): PARSEC speedups, "
                            "zsim vs real"))

    for name, by_sim in curves.items():
        zsim_pts = dict(by_sim["zsim"])
        real_pts = dict(by_sim["real"])
        # zsim tracks the reference's *scaling*, the paper's claim that
        # constant per-thread effects cancel in speedups.
        for n in THREADS:
            assert abs(zsim_pts[n] - real_pts[n]) <= \
                0.25 * max(real_pts[n], 1.0)
    # Scaling limiters are reproduced on both machines: blackscholes
    # (embarrassingly parallel) scales well, swaptions is lock-limited,
    # freqmine is serial-section-limited (the paper's examples).
    for machine in ("zsim", "real"):
        black = dict(curves["blackscholes"][machine])[6]
        assert black > 3.0
        assert dict(curves["swaptions"][machine])[6] < black + 0.5
        assert dict(curves["freqmine"][machine])[6] < black - 1.0
