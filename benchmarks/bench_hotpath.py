#!/usr/bin/env python
"""Hot-path microbenchmark: simulated MIPS of the per-instruction data
plane, emitted as machine-readable JSON.

Two pinned scenarios track the data-plane trajectory (ISSUE 7):

* ``single`` — a bench_fig7-style single-thread run: 1 Westmere OOO
  core, weave contention, one compute-bound and one memory-bound
  SPEC-like app.
* ``16core`` — an end-to-end 16-core tiled run (OOO, weave contention,
  serial backend) on a multithreaded workload.
* ``pingpong`` — a coherence-heavy 4-core run (ISSUE 10): canneal's
  high-sharing pointer chase bounces written lines between private
  caches, so wall time lives in the directory walk, not the L1 fast
  path.  This is where the flattened coherence walk is measured.

Unlike the pytest figure benchmarks, this is a standalone script so CI
can run it directly and assert a MIPS floor::

    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --label after --json benchmarks/results/bench_hotpath_after.json

The JSON lands in ``benchmarks/results/`` by default (committed
before/after pairs seed the BENCH_*.json trajectory).  ``--assert-mips``
exits non-zero when the harmonic-mean single-thread MIPS falls below the
floor (the CI perf-smoke gate).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.config import tiled_chip, westmere  # noqa: E402
from repro.core.simulator import ZSim  # noqa: E402
from repro.harness.performance import with_core_model  # noqa: E402
from repro.stats.aggregate import hmean  # noqa: E402
from repro.workloads import mt_workload, spec_workload  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One compute-bound and one memory-bound SPEC-like app: the two ends
#: of Figure 7's per-app MIPS spread.
SINGLE_APPS = ("namd", "mcf")

SCHEMA_VERSION = 1


def _dbt_stats(result):
    """The host/dbt amortization counters of one run (hit rates for the
    translation cache, L1 fast path, and slabs), as plain floats."""
    tree = result.stats().to_dict()
    return tree.get("host", {}).get("dbt", {})


def run_single(target_instrs, repeats):
    """Single-thread OOO+weave MIPS per app (best of ``repeats``)."""
    runs = []
    config = westmere(num_cores=1)
    for app in SINGLE_APPS:
        best = None
        for _ in range(repeats):
            workload = spec_workload(app, scale=1 / 32)
            threads = workload.make_threads(target_instrs=target_instrs)
            sim = ZSim(with_core_model(config, "ooo"), threads=threads,
                       contention_model="weave", flight=False)
            result = sim.run()
            if best is None or result.mips > best[0].mips:
                best = (result, _dbt_stats(result))
        result, dbt = best
        runs.append({
            "name": "single/%s" % app,
            "cores": 1,
            "instrs": result.instrs,
            "cycles": result.cycles,
            "wall_seconds": result.wall_seconds,
            "mips": result.mips,
            "ipc": result.ipc,
            "dbt": dbt,
        })
    return runs


def run_16core(target_instrs, repeats):
    """16-core end-to-end MIPS (best of ``repeats``)."""
    config = tiled_chip(num_tiles=1, cores_per_tile=16)
    best = None
    for _ in range(repeats):
        workload = mt_workload("blackscholes", scale=1 / 32,
                               num_threads=16)
        threads = workload.make_threads(target_instrs=target_instrs,
                                        num_threads=16)
        sim = ZSim(config, threads=threads, contention_model="weave",
                   flight=False)
        result = sim.run()
        if best is None or result.mips > best[0].mips:
            best = (result, _dbt_stats(result))
    result, dbt = best
    return [{
        "name": "16core/blackscholes",
        "cores": 16,
        "instrs": result.instrs,
        "cycles": result.cycles,
        "wall_seconds": result.wall_seconds,
        "mips": result.mips,
        "ipc": result.ipc,
        "dbt": dbt,
    }]


def run_pingpong(target_instrs, repeats):
    """Coherence-heavy 4-core MIPS (best of ``repeats``): canneal on a
    Westmere-like chip — 60% shared footprint, chase pattern, lock
    traffic — so upgrades, downgrades, and directory fan-out dominate."""
    config = westmere(num_cores=4)
    best = None
    for _ in range(repeats):
        workload = mt_workload("canneal", scale=1 / 32, num_threads=4)
        threads = workload.make_threads(target_instrs=target_instrs,
                                        num_threads=4)
        sim = ZSim(with_core_model(config, "ooo"), threads=threads,
                   contention_model="weave", flight=False)
        result = sim.run()
        if best is None or result.mips > best[0].mips:
            best = (result, _dbt_stats(result))
    result, dbt = best
    return [{
        "name": "pingpong/canneal",
        "cores": 4,
        "instrs": result.instrs,
        "cycles": result.cycles,
        "wall_seconds": result.wall_seconds,
        "mips": result.mips,
        "ipc": result.ipc,
        "dbt": dbt,
    }]


def run_fingerprint(target_instrs, repeats):
    """Fingerprint-chain overhead column: the pinned 16-core scenario
    with the integrity sentinel absent vs fingerprint-only (audit
    stride 0 — chain every barrier, never audit), best of ``repeats``
    each.

    The on/off MIPS columns are wall-clock and therefore noisy on
    shared runners (the scenario runs ~0.1s; host jitter alone swings
    it past any few-percent gate).  The *asserted* number is measured
    deterministically instead: the cheap per-barrier digest is timed
    directly on the run's final (largest) state, multiplied by the
    barrier count, and taken as a fraction of the fastest baseline
    wall time.  ``--assert-fingerprint-overhead`` gates that budget."""
    from repro.resilience.integrity import (IntegritySentinel,
                                            fingerprint_components)

    config = tiled_chip(num_tiles=1, cores_per_tile=16)

    def one_run(with_sentinel):
        workload = mt_workload("blackscholes", scale=1 / 32,
                               num_threads=16)
        threads = workload.make_threads(target_instrs=target_instrs,
                                        num_threads=16)
        sim = ZSim(config, threads=threads, contention_model="weave",
                   flight=False)
        if with_sentinel:
            sim.integrity = IntegritySentinel(audit_every=0)
        return sim.run(), sim

    def best_of(with_sentinel):
        best = sim = None
        for _ in range(repeats):
            result, ran = one_run(with_sentinel)
            if best is None or result.mips > best.mips:
                best, sim = result, ran
        return best, sim

    one_run(False)  # warm-up: don't charge cold caches to either column
    off, _ = best_of(False)
    on, on_sim = best_of(True)
    # Deterministic per-barrier cost: time the digest the sentinel runs
    # at every barrier, on the final state (the largest it ever covers).
    probes = 50
    start = time.perf_counter()
    for _ in range(probes):
        fingerprint_components(on_sim)
    per_barrier = (time.perf_counter() - start) / probes
    barriers = on_sim.bound.intervals
    overhead = 100.0 * (per_barrier * barriers) / off.wall_seconds
    return {
        "scenario": "16core/blackscholes",
        "instrs": on.instrs,
        "barriers": barriers,
        "mips_off": off.mips,
        "mips_on": on.mips,
        "fingerprint_ms": per_barrier * 1e3,
        "overhead_pct": overhead,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--label", default="run",
                        help="label recorded in the JSON and used in "
                             "the default output filename")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="output path (default: benchmarks/results/"
                             "bench_hotpath_<label>.json)")
    parser.add_argument("--scenario",
                        choices=("single", "16core", "pingpong",
                                 "fingerprint", "all"),
                        default="all")
    parser.add_argument("--instrs", type=int, default=60_000,
                        help="single-thread instruction target "
                             "(the 16-core run uses instrs/4 per thread)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="take the best MIPS of N runs (default 2)")
    parser.add_argument("--assert-mips", type=float, default=None,
                        metavar="FLOOR",
                        help="exit 1 unless hmean single-thread MIPS "
                             ">= FLOOR (CI perf-smoke gate)")
    parser.add_argument("--assert-pingpong-mips", type=float,
                        default=None, metavar="FLOOR",
                        help="exit 1 unless the coherence-heavy pingpong "
                             "MIPS >= FLOOR (CI perf-smoke gate)")
    parser.add_argument("--assert-fingerprint-overhead", type=float,
                        default=None, metavar="PCT",
                        help="exit 1 if the fingerprint chain costs "
                             "more than PCT%% MIPS on the 16-core "
                             "scenario (integrity-sentinel budget)")
    args = parser.parse_args(argv)

    runs = []
    fingerprint = None
    start = time.perf_counter()
    if args.scenario in ("single", "all"):
        runs.extend(run_single(args.instrs, args.repeats))
    if args.scenario in ("16core", "all"):
        runs.extend(run_16core(max(2_000, args.instrs // 4),
                               args.repeats))
    if args.scenario in ("pingpong", "all"):
        runs.extend(run_pingpong(max(2_000, args.instrs // 2),
                                 args.repeats))
    if args.scenario in ("fingerprint", "all"):
        fingerprint = run_fingerprint(max(2_000, args.instrs // 4),
                                      args.repeats)
    elapsed = time.perf_counter() - start

    single = [r["mips"] for r in runs if r["name"].startswith("single/")]
    multi = [r["mips"] for r in runs if r["name"].startswith("16core/")]
    pingpong = [r["mips"] for r in runs
                if r["name"].startswith("pingpong/")]
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": "hotpath",
        "label": args.label,
        "python": platform.python_version(),
        "instrs_target": args.instrs,
        "repeats": args.repeats,
        "wall_seconds_total": elapsed,
        "runs": runs,
        "fingerprint": fingerprint,
        "summary": {
            "single_thread_hmean_mips": hmean(single) if single else None,
            "multicore_mips": multi[0] if multi else None,
            "pingpong_mips": pingpong[0] if pingpong else None,
            "fingerprint_overhead_pct": (fingerprint["overhead_pct"]
                                         if fingerprint else None),
        },
    }

    out = args.json
    if out is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / ("bench_hotpath_%s.json" % args.label)
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    for run in runs:
        print("%-22s %8.4f MIPS  (%d instrs, %.2fs)"
              % (run["name"], run["mips"], run["instrs"],
                 run["wall_seconds"]))
    if single:
        print("single-thread hmean : %.4f MIPS" % payload["summary"][
            "single_thread_hmean_mips"])
    if multi:
        print("16-core end-to-end  : %.4f MIPS" % multi[0])
    if pingpong:
        print("pingpong coherence  : %.4f MIPS" % pingpong[0])
    if fingerprint:
        print("fingerprint off/on  : %.4f / %.4f MIPS  (overhead %+.2f%%)"
              % (fingerprint["mips_off"], fingerprint["mips_on"],
                 fingerprint["overhead_pct"]))
    print("json written to %s" % out)

    if args.assert_mips is not None:
        got = payload["summary"]["single_thread_hmean_mips"] or 0.0
        if got < args.assert_mips:
            print("FAIL: hmean single-thread MIPS %.4f below floor %.4f"
                  % (got, args.assert_mips), file=sys.stderr)
            return 1
        print("perf-smoke floor OK (%.4f >= %.4f)"
              % (got, args.assert_mips))
    if args.assert_pingpong_mips is not None:
        got = payload["summary"]["pingpong_mips"] or 0.0
        if got < args.assert_pingpong_mips:
            print("FAIL: pingpong MIPS %.4f below floor %.4f"
                  % (got, args.assert_pingpong_mips), file=sys.stderr)
            return 1
        print("pingpong floor OK (%.4f >= %.4f)"
              % (got, args.assert_pingpong_mips))
    if args.assert_fingerprint_overhead is not None and fingerprint:
        got = fingerprint["overhead_pct"]
        if got > args.assert_fingerprint_overhead:
            print("FAIL: fingerprint overhead %+.2f%% above budget %.2f%%"
                  % (got, args.assert_fingerprint_overhead),
                  file=sys.stderr)
            return 1
        print("fingerprint budget OK (%+.2f%% <= %.2f%%)"
              % (got, args.assert_fingerprint_overhead))
    return 0


if __name__ == "__main__":
    os.environ.setdefault("PYTHONHASHSEED", "0")
    sys.exit(main())
