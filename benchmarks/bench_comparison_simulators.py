"""Section 4.2 "comparison with other simulators", reproduced in-repo.

The paper's claim is that bound-weave is orders of magnitude faster than
pessimistic PDES at comparable accuracy, and that skew-limited
simulators (Graphite) trade accuracy for speed.  All three engines here
share the same core/memory models, so the comparison isolates the
*parallelization technique*:

* zsim (bound-weave, 1000-cycle intervals, weave contention),
* conservative PDES (10-cycle global quanta, inline contention),
* Graphite-like (5000-cycle skew, M/D/1 contention, no weave).
"""

from conftest import emit, instrs, once

from repro.baselines import PDESSimulator, graphite_simulator
from repro.config import small_test_system
from repro.core import ZSim
from repro.stats import format_table
from repro.workloads import mt_workload


def make_threads(n):
    workload = mt_workload("fluidanimate", scale=1 / 64, num_threads=n)
    return workload.make_threads(target_instrs=instrs(40_000),
                                 num_threads=n)


def test_comparison_with_other_simulators(benchmark):
    cfg = small_test_system(num_cores=4, core_model="simple")

    def run():
        out = {}
        zsim = ZSim(cfg, make_threads(4))
        out["zsim (bound-weave)"] = zsim.run()
        pdes = PDESSimulator(cfg, make_threads(4), lookahead=10)
        out["PDES (10-cyc quanta)"] = pdes.run()
        graphite = graphite_simulator(cfg, make_threads(4))
        out["Graphite-like (skew+M/D/1)"] = graphite.run()
        return out

    out = once(benchmark, run)
    zsim_res = out["zsim (bound-weave)"]
    rows = []
    for name, res in out.items():
        syncs = getattr(res, "synchronizations", res.intervals)
        rows.append([name, "%.4f" % res.mips,
                     "%.1fx" % (res.mips / zsim_res.mips),
                     syncs, res.cycles,
                     "%+.1f%%" % (100 * (zsim_res.cycles - res.cycles)
                                  / res.cycles)])
    emit("comparison_simulators", format_table(
        ["engine", "MIPS", "speed vs zsim", "global syncs",
         "simulated cycles", "zsim timing diff"], rows,
        title="Parallelization-technique comparison (same models, "
              "same workload)"))

    pdes_res = out["PDES (10-cyc quanta)"]
    graphite_res = out["Graphite-like (skew+M/D/1)"]
    # The structural result behind the paper's orders-of-magnitude
    # claim: bound-weave needs far fewer global synchronizations than
    # conservative PDES.  (In C++ each sync costs a cross-core barrier,
    # so the sync ratio translates directly into wall-clock; in Python
    # interpretation dominates and the wall-clock gap compresses — see
    # EXPERIMENTS.md.)
    assert pdes_res.synchronizations > 10 * zsim_res.intervals
    # Wall-clock MIPS is noisy on a shared host; sanity floor only.
    assert zsim_res.mips > 0.8 * pdes_res.mips
    # zsim's timing stays close to the fully ordered PDES result...
    assert abs(zsim_res.cycles - pdes_res.cycles) < 0.25 * pdes_res.cycles
    # ...while the skew+queueing simulator is fast but disagrees more.
    assert graphite_res.mips > pdes_res.mips
