"""Table 1: simulator comparison matrix (static feature data)."""

from conftest import emit, once

from repro.harness import table1


def test_table1_feature_matrix(benchmark):
    text = once(benchmark, table1.render)
    emit("table1_features", text)
    matrix = table1.feature_matrix()
    assert len(matrix) == 7
    assert table1.zsim_row()["Parallelization"] == "Bound-weave"
