"""Extension: multiprogrammed interference study (zsim's multiprocess
support put to work).

Four different SPEC-like apps run together, one process per core,
sharing a deliberately small L3 and one memory controller.  The classic
consolidation result: cache- and bandwidth-hungry apps slow each other
down, compute-bound apps barely notice.
"""

import dataclasses

from conftest import emit, instrs, once

from repro.config import westmere
from repro.stats import format_table
from repro.workloads import spec_workload
from repro.workloads.multiprogrammed import interference_study

MIX = ("lbm", "libquantum", "namd", "povray")


def test_extension_multiprogrammed_interference(benchmark):
    config = westmere(num_cores=4, core_model="ooo")
    # Shrink the L3 so the mix actually contends for it.
    config = dataclasses.replace(config, l3=dataclasses.replace(
        config.l3, size_kb=512, banks=4))

    def run():
        workloads = [spec_workload(name, scale=1 / 32) for name in MIX]
        return interference_study(config, workloads,
                                  target_instrs=instrs(25_000))

    results = once(benchmark, run)
    rows = [[name, results[name]["solo_cycles"],
             results[name]["mix_cycles"],
             "%.2fx" % results[name]["slowdown"]] for name in MIX]
    emit("extension_multiprogrammed", format_table(
        ["app", "solo cycles", "mix cycles", "slowdown"], rows,
        title="Extension: multiprogrammed mix vs solo "
              "(512KB shared L3)"))

    # Nobody speeds up from sharing; the streaming/bandwidth-bound apps
    # suffer more than the compute-bound ones.
    for name in MIX:
        assert results[name]["slowdown"] >= 0.98
    memory_bound = max(results["lbm"]["slowdown"],
                       results["libquantum"]["slowdown"])
    compute_bound = min(results["namd"]["slowdown"],
                        results["povray"]["slowdown"])
    assert memory_bound > compute_bound
