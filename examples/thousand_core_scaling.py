#!/usr/bin/env python3
"""Scaling demo: simulate tiled chips of growing size (Table 3 systems).

Builds the paper's tiled architecture at several sizes, runs a
memory-intensive workload with one thread per core, and reports
simulation speed, weave-phase parallelism (domains), and modeled host
scalability — the machinery behind Figures 8 and 9.

The paper simulates 64/256/1024 cores on a 16-core Xeon; pure Python is
~3 orders of magnitude slower, so the default sizes here are 16/32/64
cores (pass a list of tile counts to go bigger).

Run:  python examples/thousand_core_scaling.py [tiles ...]
"""

import sys

from repro import ZSim, tiled_chip, mt_workload
from repro.stats import format_table


def run_size(num_tiles, cores_per_tile=8, target_instrs=60_000):
    config = tiled_chip(num_tiles=num_tiles, core_model="simple",
                        cores_per_tile=cores_per_tile)
    workload = mt_workload("ocean", scale=1 / 64,
                           num_threads=config.num_cores)
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=config.num_cores)
    sim = ZSim(config, threads=threads)
    result = sim.run()
    return config, sim, result


def main():
    tile_counts = [int(a) for a in sys.argv[1:]] or [2, 4, 8]
    rows = []
    for tiles in tile_counts:
        config, sim, result = run_size(tiles)
        speedup16 = sim.host_model.speedup(16)
        rows.append([
            config.num_cores,
            len(sim.weave.domains),
            "%.3f" % result.mips,
            result.weave_stats.events,
            result.weave_stats.crossings,
            "%.1fx" % speedup16,
        ])
        print("simulated %d cores: %.3f MIPS, %d weave domains"
              % (config.num_cores, result.mips, len(sim.weave.domains)))
    print()
    print(format_table(
        ["cores", "domains", "sim MIPS", "weave events",
         "domain crossings", "modeled speedup @16 host threads"],
        rows, title="Tiled-chip scaling (Table 3 systems)"))


if __name__ == "__main__":
    main()
