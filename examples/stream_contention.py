#!/usr/bin/env python3
"""STREAM under four contention models (Figure 6, right panel).

STREAM saturates memory bandwidth, so its parallel scaling depends
entirely on how contention is modeled:

* ``none``    — zero-load latencies only: scales almost linearly (wrong).
* ``md1``     — Graphite-style M/D/1 queueing in the bound phase:
                tolerates reordering but underestimates saturation.
* ``weave``   — the paper's event-driven DDR3 weave model.
* ``dramsim`` — the DRAMSim2-like cycle-driven model behind the same
                glue interface.

The reference machine ("real") uses the detailed weave model plus TLBs.

Run:  python examples/stream_contention.py
"""

from repro.config import westmere
from repro.harness.validation import stream_scalability
from repro.stats import format_table

THREADS = (1, 2, 4, 6)


def main():
    # OOO cores: STREAM needs memory-level parallelism to saturate the
    # DDR3 channels (a blocking IPC1 core has one outstanding miss).
    def factory(num_cores):
        return westmere(num_cores=num_cores, core_model="ooo")

    curves = stream_scalability(factory, THREADS, scale=1 / 32,
                                target_instrs=60_000)
    order = ["none", "md1", "weave", "dramsim", "real"]
    rows = []
    for n_idx, n in enumerate(THREADS):
        rows.append([n] + ["%.2f" % curves[m][n_idx][1] for m in order])
    print(format_table(
        ["threads", "no contention", "M/D/1", "event-driven",
         "DRAMSim-like", "real"],
        rows, title="STREAM speedup under contention models (Fig 6 right)"))
    print()
    top = {m: curves[m][-1][1] for m in order}
    print("At %d threads: no-contention speedup %.2f vs real %.2f; the "
          "event-driven weave model lands at %.2f and the DRAMSim-like "
          "model at %.2f — both track the real machine, while M/D/1 "
          "(%.2f) does not." % (THREADS[-1], top["none"], top["real"],
                                top["weave"], top["dramsim"], top["md1"]))


if __name__ == "__main__":
    main()
