#!/usr/bin/env python3
"""Client-server workload demo (Section 3.3's h-store/memcached class).

A server process handles requests from two client processes over
shared-memory "queues" (futex-signalled).  The clients enforce a
request *timeout* — the scenario the paper's timing virtualization
exists for: "client-server workloads would time out as simulated time
advances much more slowly than real time".  Because timeouts here are
evaluated against the *simulated* clock, no request times out even
though the run takes far longer in host time than the timeout allows.

Run:  python examples/client_server.py
"""

from repro import ZSim, westmere
from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.virt.process import SimProcess, SimThread
from repro.virt.syscalls import FutexWait, FutexWake, GetTime
from repro.virt.timing import VirtualClock

NUM_CLIENTS = 2
REQUESTS_PER_CLIENT = 8
TIMEOUT_US = 500.0


def build_blocks():
    program = Program("server")
    work = program.add_block(
        [Instruction(Opcode.LOAD, gp(14), dst1=gp(2)),
         Instruction(Opcode.ALU, gp(2), gp(3), gp(2)),
         Instruction(Opcode.STORE, gp(14), gp(2))]
        + [Instruction(Opcode.ALU, gp(4), gp(5), gp(4))] * 5)
    syscall = program.add_block([Instruction(Opcode.SYSCALL)])
    return work, syscall


def main():
    config = westmere(num_cores=4, core_model="simple")
    clock = VirtualClock(config.core.freq_mhz)
    work, sys_block = build_blocks()
    tcache = TranslationCache()
    server_proc = SimProcess("h-store-site")
    timings = []  # (client, request, issue_cycle, reply_cycle)

    def server_stream():
        total = NUM_CLIENTS * REQUESTS_PER_CLIENT
        for _ in range(total):
            yield BBLExec(sys_block, (), syscall=FutexWait("requests"))
            # Handle the request: touch the shared table.
            for i in range(20):
                addr = 0x8000_0000 + (i * 64) % 8192
                yield BBLExec(work, (addr, addr))
            yield BBLExec(sys_block, (), syscall=FutexWake("replies"))

    class RequestTimer:
        """Records issue/reply cycles via the GetTime virtualization."""

        def __init__(self, client_id):
            self.client_id = client_id
            self.issue = None

    def client_stream(client_id, thread_ref):
        base = 0x1000_0000 + client_id * 0x100_0000
        for req in range(REQUESTS_PER_CLIENT):
            # Build the request (private work), note the issue time.
            for i in range(10):
                yield BBLExec(work, (base + i * 64, base + i * 64))
            yield BBLExec(sys_block, (), syscall=GetTime())
            issue = thread_ref[0]
            yield BBLExec(sys_block, (), syscall=FutexWake("requests"))
            yield BBLExec(sys_block, (), syscall=FutexWait("replies"))
            yield BBLExec(sys_block, (), syscall=GetTime())
            reply = thread_ref[0]
            timings.append((client_id, req, issue, reply))

    sim = ZSim(config)
    server = SimThread(InstrumentedStream(server_stream(), tcache),
                       name="server", process=server_proc)
    sim.add_thread(server)

    client_threads = []
    for cid in range(NUM_CLIENTS):
        ref = [0]
        thread = SimThread(InstrumentedStream(client_stream(cid, ref),
                                              tcache),
                           name="client-%d" % cid)
        client_threads.append((thread, ref))
        sim.add_thread(thread)

    # GetTime is non-blocking; capture the issue/reply timestamps the
    # syscalls observe by wrapping the scheduler's handler (the stream
    # generator itself cannot see simulated time — like a real binary,
    # it learns the time only through the virtualized interface).
    orig_handle = sim.scheduler.handle_syscall

    def handle(thread, syscall, cycle):
        for t, ref in client_threads:
            if t is thread:
                ref[0] = cycle
        return orig_handle(thread, syscall, cycle)
    sim.scheduler.handle_syscall = handle

    result = sim.run()

    print("simulated %d requests over %d cycles (%.1f us simulated, "
          "host wall time %.2f s)"
          % (len(timings), result.cycles,
             clock.cycles_to_us(result.cycles), result.wall_seconds))
    print()
    timeouts = 0
    for client_id, req, issue, reply in sorted(timings):
        latency_us = clock.cycles_to_us(reply - issue)
        expired = clock.timeout_expired(issue, reply, TIMEOUT_US * 1000)
        timeouts += expired
        flag = "TIMEOUT" if expired else "ok"
        print("client %d request %d: %8.2f us  %s"
              % (client_id, req, latency_us, flag))
    print()
    print("timeouts against the %.0f us simulated-time budget: %d"
          % (TIMEOUT_US, timeouts))
    print("(host wall time per request vastly exceeds the timeout — "
          "without timing virtualization every request would expire)")


if __name__ == "__main__":
    main()
