#!/usr/bin/env python3
"""Validation demo (Figure 5 methodology, small scale).

Runs a handful of SPEC-CPU2006-like workloads on both zsim's detailed
OOO model and the golden reference machine (same models + TLBs and page
walks, the effects zsim deliberately omits), then reports the paper's
validation metrics: IPC error and per-level MPKI errors.

Run:  python examples/validate_against_reference.py
"""

from repro.config import westmere
from repro.harness.validation import validate_workload
from repro.stats import format_table, mean_abs
from repro.workloads import spec_workload

WORKLOADS = ("namd", "povray", "libquantum", "mcf", "omnetpp", "hmmer")


def main():
    config = westmere(num_cores=1, core_model="ooo")
    rows = []
    for name in WORKLOADS:
        workload = spec_workload(name, scale=1 / 32)
        row = validate_workload(config, workload, target_instrs=40_000)
        rows.append(row)
        print("validated %-12s perf_error %+6.1f%%"
              % (name, 100 * row["perf_error"]))
    rows.sort(key=lambda r: abs(r["perf_error"]))

    print()
    table = [[r["name"],
              "%.3f" % r["ipc_real"],
              "%.3f" % r["ipc_zsim"],
              "%+.1f%%" % (100 * r["perf_error"]),
              "%.2f" % r["tlb_mpki"],
              "%+.2f" % r["l1d_mpki_err"],
              "%+.2f" % r["l3_mpki_err"]] for r in rows]
    print(format_table(
        ["workload", "IPC real", "IPC zsim", "perf err", "TLB MPKI",
         "L1D err", "L3 err"],
        table, title="zsim vs reference machine (Figure 5 methodology)"))

    print()
    print("avg |perf error| : %.1f%%"
          % (100 * mean_abs(r["perf_error"] for r in rows)))
    print("avg |L1D MPKI err|: %.2f"
          % mean_abs(r["l1d_mpki_err"] for r in rows))
    print("avg |L3 MPKI err| : %.2f"
          % mean_abs(r["l3_mpki_err"] for r in rows))
    print()
    print("Note the paper's error structure: zsim tends to overestimate "
          "performance, and the largest errors belong to TLB-heavy "
          "workloads (compare the TLB MPKI column).")


if __name__ == "__main__":
    main()
