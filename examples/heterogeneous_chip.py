#!/usr/bin/env python3
"""Heterogeneous chip demo (Section 3.4).

"We support multiple core types running at the same time... For
instance, we can model a multi-core chip with a few large OOO cores with
private L1s and L2 plus a larger set of simple, Atom-like cores with
small L1 caches, all connected to a shared L3 cache."

This example builds exactly that: 2 big OOO cores + 6 simple cores on
one chip, runs the same per-thread work on each, and shows the big
cores retiring it faster.

Run:  python examples/heterogeneous_chip.py
"""

import dataclasses

from repro import ZSim, mt_workload, westmere
from repro.config import CoreConfig
from repro.stats import format_table

NUM_BIG = 2
NUM_LITTLE = 6


def main():
    total = NUM_BIG + NUM_LITTLE
    config = westmere(num_cores=total, core_model="simple")
    big = CoreConfig(model="ooo", freq_mhz=config.core.freq_mhz)
    config = dataclasses.replace(
        config, hetero_cores={i: big for i in range(NUM_BIG)})

    workload = mt_workload("water", scale=1 / 32, num_threads=total)
    # Strip synchronization: barriers would lockstep the big cores to
    # the little ones and hide the per-core speed difference.
    workload.spec = dataclasses.replace(workload.spec, barrier_iters=0,
                                        lock_iters=0)
    threads = workload.make_threads(target_instrs=40_000 * total,
                                    num_threads=total)
    # Pin one thread per core so the comparison is direct.
    for core_id, thread in enumerate(threads):
        thread.affinity = {core_id}

    sim = ZSim(config, threads=threads)
    result = sim.run()

    rows = []
    for core in sim.cores:
        kind = "OOO (big)" if core.core_id < NUM_BIG else "simple"
        rows.append([core.core_id, kind, core.instrs,
                     "%.3f" % core.ipc])
    print(format_table(["core", "type", "instrs", "IPC"], rows,
                       title="Heterogeneous chip: %d OOO + %d simple "
                             "cores, shared L3" % (NUM_BIG, NUM_LITTLE)))
    big_ipc = sum(c.ipc for c in sim.cores[:NUM_BIG]) / NUM_BIG
    little_ipc = sum(c.ipc for c in sim.cores[NUM_BIG:]) / NUM_LITTLE
    print()
    print("big-core IPC %.3f vs little-core IPC %.3f (%.2fx)"
          % (big_ipc, little_ipc, big_ipc / little_ipc))
    print("chip finished %d instructions in %d cycles"
          % (result.instrs, result.cycles))


if __name__ == "__main__":
    main()
