#!/usr/bin/env python3
"""Multiprogrammed interference study (zsim's multiprocess support).

Runs four different SPEC-like benchmarks together on one chip — each as
its own process pinned to its own core, sharing the L3 and the memory
controllers — and reports each app's slowdown versus running alone:
the classic consolidation/interference experiment zsim's multiprocess
support enables (Section 3.3).

Run:  python examples/multiprogrammed_mix.py
"""

from repro.config import westmere
from repro.stats import format_table
from repro.workloads import spec_workload
from repro.workloads.multiprogrammed import (
    MultiprogrammedMix,
    interference_study,
)

MIX = ("mcf", "libquantum", "namd", "povray")


def main():
    config = westmere(num_cores=4, core_model="ooo")
    workloads = [spec_workload(name, scale=1 / 32) for name in MIX]
    mix = MultiprogrammedMix(workloads)
    assert mix.footprint_span(), "address slices must not overlap"
    print("running mix %s on a %d-core chip..."
          % (mix.name, config.num_cores))

    results = interference_study(config, workloads,
                                 target_instrs=40_000)
    rows = [[name,
             results[name]["solo_cycles"],
             results[name]["mix_cycles"],
             "%.2fx" % results[name]["slowdown"]]
            for name in MIX]
    print()
    print(format_table(
        ["app", "solo cycles", "mix cycles", "slowdown"], rows,
        title="Per-app interference: mix vs solo (shared L3 + DRAM)"))
    print()
    worst = max(MIX, key=lambda n: results[n]["slowdown"])
    best = min(MIX, key=lambda n: results[n]["slowdown"])
    print("memory-bound apps suffer most from consolidation: "
          "%s (%.2fx) vs %s (%.2fx)"
          % (worst, results[worst]["slowdown"],
             best, results[best]["slowdown"]))


if __name__ == "__main__":
    main()
