#!/usr/bin/env python3
"""Quickstart: simulate a PARSEC-like workload on the validated
Westmere configuration (Table 2 of the paper).

Run:  python examples/quickstart.py
"""

from repro import ZSim, mt_workload, westmere
from repro.stats import format_table


def main():
    # The 6-core Westmere system the paper validates against.
    config = westmere(num_cores=6, core_model="ooo")

    # A blackscholes-like multithreaded workload, scaled down so the
    # example runs in seconds (scale only shrinks data footprints).
    workload = mt_workload("blackscholes", scale=1 / 16)
    threads = workload.make_threads(target_instrs=120_000)

    sim = ZSim(config, threads=threads, contention_model="weave")
    result = sim.run()

    print("Simulated %s on %s" % (workload.name, config.name))
    print("  instructions : %d" % result.instrs)
    print("  cycles       : %d" % result.cycles)
    print("  IPC          : %.3f" % result.ipc)
    print("  sim speed    : %.3f MIPS (host wall clock)" % result.mips)
    print("  intervals    : %d (bound-weave, %d cycles each)"
          % (result.intervals, config.boundweave.interval_cycles))
    print()

    rows = []
    for level in ("l1i", "l1d", "l2", "l3"):
        rows.append([level.upper(), "%.2f" % result.core_mpki(level)])
    rows.append(["branch", "%.2f" % result.branch_mpki()])
    print(format_table(["cache", "MPKI"], rows,
                       title="Miss rates (misses per 1000 instructions)"))
    print()

    ws = result.weave_stats
    print("Weave phase: %d events, %d domain crossings, "
          "%d total delay cycles fed back"
          % (ws.events, ws.crossings, ws.total_delay))


if __name__ == "__main__":
    main()
