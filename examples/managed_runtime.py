#!/usr/bin/env python3
"""User-level virtualization demo: a JVM-like managed runtime.

Reproduces the workload class Section 3.3 targets: an application that
(1) reads the *simulated* system configuration to size its thread pool
(system virtualization), (2) launches more threads than cores — worker
threads plus background GC threads (scheduler), (3) uses blocking
synchronization (join/leave on the interval barrier), (4) sleeps on
simulated time (timing virtualization), and (5) spawns a child process
(multiprocess capture).

Run:  python examples/managed_runtime.py
"""

from repro import ZSim, westmere
from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.virt.process import SimProcess, SimThread
from repro.virt.sysview import SystemView
from repro.virt.syscalls import Barrier, Sleep, Spawn
from repro.virt.timing import VirtualClock


def build_program():
    program = Program("jvm")
    work = program.add_block(
        [Instruction(Opcode.ALU, gp(1 + i % 4), gp(5), gp(1 + i % 4))
         for i in range(6)]
        + [Instruction(Opcode.LOAD, gp(14), dst1=gp(6)),
           Instruction(Opcode.STORE, gp(14), gp(6))])
    syscall = program.add_block([Instruction(Opcode.SYSCALL)])
    return program, work, syscall


def main():
    config = westmere(num_cores=4, core_model="simple")
    view = SystemView(config)
    clock = VirtualClock(config.core.freq_mhz)

    # (1) The runtime tunes itself to the SIMULATED machine, like the
    # JVM reading /proc/cpuinfo: one worker per core plus 2 GC threads.
    num_workers = view.cpu_count()
    total_threads = num_workers + 2
    print("virtualized /proc/cpuinfo reports %d cores -> launching "
          "%d threads (%d workers + 2 GC) on a %d-core chip"
          % (view.cpu_count(), total_threads, num_workers,
             config.num_cores))

    _program, work, sys_block = build_program()
    tcache = TranslationCache()
    jvm = SimProcess("java")

    def worker_stream(tid, phases=4, iters=150):
        base = 0x1000_0000 + tid * 0x100_0000
        for phase in range(phases):
            for i in range(iters):
                addr = base + (i * 64) % 32768
                yield BBLExec(work, (addr, addr))
            # (3) Blocking synchronization between phases.
            yield BBLExec(sys_block, (),
                          syscall=Barrier(("gen", phase), num_workers))

    def gc_stream(tid):
        # (4) GC threads mostly sleep (on simulated time), then scan a
        # shared heap region; they never join the worker barriers.
        base = 0x8000_0000
        for _cycle in range(4):
            yield BBLExec(sys_block, (),
                          syscall=Sleep(clock.ns_to_cycles(20_000)))
            for i in range(100):
                yield BBLExec(work, (base + i * 64, base + i * 64))

    # (5) Worker 0 doubles as the "main" thread and spawns a helper
    # process mid-run (fork/exec capture).
    child_proc = SimProcess("helper", parent=jvm)

    def child_stream():
        for i in range(200):
            yield BBLExec(work, (0xC000_0000 + i * 64,) * 2)

    def make_child():
        return SimThread(InstrumentedStream(child_stream(), tcache),
                         name="helper", process=child_proc)

    def main_stream():
        yield BBLExec(sys_block, (), syscall=Spawn(make_child))
        yield from worker_stream(0)

    sim = ZSim(config)
    sim.add_thread(SimThread(InstrumentedStream(main_stream(), tcache),
                             name="main", process=jvm))
    for tid in range(1, num_workers):
        sim.add_thread(SimThread(
            InstrumentedStream(worker_stream(tid), tcache),
            name="worker-%d" % tid, process=jvm))
    for tid in range(2):
        sim.add_thread(SimThread(InstrumentedStream(gc_stream(tid),
                                                    tcache),
                                 name="gc-%d" % tid, process=jvm))

    result = sim.run()
    sched = sim.scheduler
    print()
    print("ran %d instructions over %d cycles (%.3f ms simulated)"
          % (result.instrs, result.cycles,
             clock.cycles_to_ns(result.cycles) / 1e6))
    print("threads: %d on %d cores, %d context switches, %d syscalls"
          % (len(sched.threads), config.num_cores,
             sched.context_switches, sched.syscalls_handled))
    print("process tree: %s" % " -> ".join(p.name for p in jvm.tree()))
    print("rdtsc at end of run: %d (virtualized to simulated cycles)"
          % clock.rdtsc(result.cycles))


if __name__ == "__main__":
    main()
