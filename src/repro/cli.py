"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``run`` — simulate a workload on a config (preset or JSON file) and
  print/dump stats.
* ``validate`` — compare zsim vs the reference machine on a workload.
* ``list-workloads`` — enumerate the synthetic suites.
* ``table1`` — print the simulator comparison matrix.
* ``experiment`` — run one of the paper's experiments at a chosen scale
  (the benchmarks drive the same harness under pytest).

``run`` carries the resilience layer's flags (see docs/resilience.md):
``--supervise``, ``--watchdog-budget``, ``--checkpoint-dir`` /
``--checkpoint-every`` / ``--resume``, ``--max-wall-seconds``, and the
fault-injection harness ``--inject-faults``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config import small_test_system, tiled_chip, westmere
from repro.config.loader import load_config
from repro.core.simulator import CONTENTION_MODELS, ZSim
from repro.errors import WallClockExceeded
from repro.exec import BACKEND_NAMES

#: Exit status for a run that stopped on ``--max-wall-seconds`` (the
#: conventional "temporary failure; retry later" code).
EXIT_WALL_BUDGET = 75

PRESETS = {
    "westmere": lambda cores: westmere(num_cores=cores or 6),
    "tiled": lambda cores: tiled_chip(
        num_tiles=max(1, (cores or 64) // 16)),
    "test": lambda cores: small_test_system(num_cores=cores or 4),
}


def _resolve_config(args):
    if args.config in PRESETS:
        config = PRESETS[args.config](args.cores)
    else:
        config = load_config(args.config)
    if args.core_model:
        import dataclasses
        config = dataclasses.replace(
            config, core=dataclasses.replace(config.core,
                                             model=args.core_model))
    return config.validate()


def _resolve_workload(name, scale, num_threads):
    from repro.workloads import (
        MULTITHREADED,
        SPEC_CPU2006,
        mt_workload,
        spec_workload,
    )
    if name in SPEC_CPU2006:
        return spec_workload(name, scale=scale)
    if name in MULTITHREADED:
        return mt_workload(name, scale=scale, num_threads=num_threads)
    raise SystemExit("Unknown workload %r; see `repro list-workloads`"
                     % name)


def _make_telemetry(args):
    """Build the observability context (or None) from run flags."""
    want_trace = bool(args.trace_out or args.trace_timeline)
    want_metrics = bool(args.metrics_out or args.metrics_csv)
    if not want_trace and not want_metrics:
        return None
    from repro.obs import Telemetry
    return Telemetry(trace=want_trace, metrics=want_metrics)


def _write_telemetry(args, telemetry):
    if telemetry is None:
        return
    if args.trace_out:
        telemetry.write_trace(args.trace_out)
        print("trace written to %s (load in chrome://tracing)"
              % args.trace_out)
    if args.trace_timeline:
        print(telemetry.tracer.text_timeline())
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print("metrics written to %s" % args.metrics_out)
    if args.metrics_csv:
        with open(args.metrics_csv, "w") as handle:
            handle.write(telemetry.metrics.samples_csv())
        print("interval samples written to %s" % args.metrics_csv)


def _run_meta(args, workload, threads):
    """Identity of a run, recorded in checkpoints and verified on
    resume: the stream fast-forward is only sound when the resuming
    process rebuilds the *same* workload."""
    return {"workload": workload.name, "scale": args.scale,
            "instrs": args.instrs, "threads": len(threads),
            "contention": args.contention}


def _resume_sim(args, meta, threads, telemetry):
    from repro.resilience import latest, read_checkpoint
    path = args.resume
    if os.path.isdir(path):
        path = latest(path)
        if path is None:
            raise SystemExit("no checkpoints in %s" % args.resume)
    capsule = read_checkpoint(path)
    saved_meta = capsule.get("meta") or {}
    if saved_meta and saved_meta != meta:
        diffs = ["%s: checkpoint=%r, flags=%r" % (k, saved_meta.get(k),
                                                  meta.get(k))
                 for k in sorted(set(saved_meta) | set(meta))
                 if saved_meta.get(k) != meta.get(k)]
        raise SystemExit(
            "checkpoint %s was written by a different run (%s); resume "
            "needs the original workload flags" % (path, "; ".join(diffs)))
    print("resuming from %s (interval %d)" % (path, capsule["interval"]))
    return ZSim.resume(capsule, threads, backend=args.backend,
                       telemetry=telemetry)


def _setup_resilience(args, sim, meta):
    """Wire the resilience layer onto a built simulator from run
    flags."""
    from repro.resilience import Checkpointer, FaultPlan, Supervisor
    if args.watchdog_budget:
        sim.backend.watchdog_budget = args.watchdog_budget
    if getattr(args, "pool_size", None):
        sim.backend.pool_size = args.pool_size
    if getattr(args, "heartbeat_budget", None):
        sim.backend.heartbeat_budget_s = args.heartbeat_budget
    if args.inject_faults:
        sim.backend.fault_plan = FaultPlan.parse(args.inject_faults)
    if args.supervise or args.inject_faults:
        Supervisor(sim,
                   max_retries=sim.config.boundweave.recovery_max_retries)
    if args.checkpoint_dir:
        sim.checkpointer = Checkpointer(args.checkpoint_dir,
                                        every=args.checkpoint_every,
                                        meta=meta)
    if args.max_wall_seconds:
        sim.max_wall_seconds = args.max_wall_seconds


class _GracefulStop:
    """SIGTERM/SIGINT handler for ``repro run``: the first signal asks
    the simulator to stop at the next interval barrier (final
    checkpoint + EXIT_WALL_BUDGET, same path as an exhausted wall-clock
    budget); a second signal takes the previous disposition, so it
    force-quits."""

    SIGNALS = ("SIGTERM", "SIGINT")

    def __init__(self, sim):
        self.sim = sim
        self._previous = {}

    def __enter__(self):
        import signal
        for name in self.SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            except (ValueError, OSError):
                pass  # not the main thread / unsupported platform
        return self

    def __exit__(self, *exc_info):
        import signal
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        return False

    def _handle(self, signum, frame):
        import signal
        self.sim.request_stop("signal %s"
                              % getattr(signal.Signals(signum), "name",
                                        signum))
        # One graceful chance: the next signal acts normally (Ctrl-C
        # twice kills a wedged run).
        previous = self._previous.pop(signum, signal.SIG_DFL)
        try:
            signal.signal(signum, previous)
        except (ValueError, OSError):
            pass


def cmd_run(args):
    if args.log_level:
        from repro.obs import configure_logging
        configure_logging(args.log_level)
    config = _resolve_config(args)
    workload = _resolve_workload(args.workload, args.scale, args.threads)
    threads = workload.make_threads(
        target_instrs=args.instrs,
        num_threads=args.threads or workload.num_threads)
    telemetry = _make_telemetry(args)
    meta = _run_meta(args, workload, threads)
    if args.resume:
        sim = _resume_sim(args, meta, threads, telemetry)
    else:
        sim = ZSim(config, threads=threads,
                   contention_model=args.contention,
                   telemetry=telemetry, backend=args.backend)
    _setup_resilience(args, sim, meta)
    try:
        with _GracefulStop(sim):
            result = sim.run()
    except WallClockExceeded as exc:
        # Covers RunInterrupted too (SIGTERM/SIGINT): same resumable
        # exit, no traceback.
        print("stopped: %s" % exc)
        if exc.checkpoint_path:
            print("resume with: repro run --resume %s <original flags>"
                  % exc.checkpoint_path)
        return EXIT_WALL_BUDGET
    config = sim.config  # the capsule's config when resuming
    print("workload %s on %s (%d cores, %s, %s contention, %s backend)"
          % (workload.name, config.name, config.num_cores,
             config.core.model, sim.contention_model, sim.backend.name))
    if sim.supervisor is not None and sim.supervisor.summary()["recoveries"]:
        summary = sim.supervisor.summary()
        print("  recovered from %d execution fault(s)%s"
              % (summary["recoveries"],
                 " — fell back to the serial backend permanently"
                 if summary["fallback_permanent"] else ""))
        if summary.get("demotions"):
            print("  degradation ladder: %s" % summary["demotion_path"])
    print("  instrs  : %d" % result.instrs)
    print("  cycles  : %d" % result.cycles)
    print("  IPC     : %.3f" % result.ipc)
    print("  MIPS    : %.3f" % result.mips)
    for level in ("l1i", "l1d", "l2", "l3"):
        print("  %s MPKI: %.2f" % (level.upper().ljust(4),
                                   result.core_mpki(level)))
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            handle.write(result.stats().to_json(indent=2))
        print("stats written to %s" % args.stats_out)
    _write_telemetry(args, telemetry)
    return 0


def cmd_validate(args):
    from repro.harness.validation import validate_workload
    config = _resolve_config(args)
    workload = _resolve_workload(args.workload, args.scale, args.threads)
    row = validate_workload(config, workload, target_instrs=args.instrs,
                            num_threads=args.threads)
    for key in ("ipc_real", "ipc_zsim", "perf_error", "tlb_mpki",
                "l1d_mpki_err", "l3_mpki_err", "branch_mpki_err"):
        value = row[key]
        print("  %-16s %s" % (key,
                              "%.4f" % value
                              if isinstance(value, float) else value))
    return 0


def cmd_list_workloads(_args):
    from repro.workloads import (
        PARSEC,
        SPEC_CPU2006,
        SPEC_OMP,
        SPLASH2,
    )
    print("SPEC CPU2006-like (single-threaded):")
    print("  " + " ".join(SPEC_CPU2006))
    print("PARSEC-like:")
    print("  " + " ".join(PARSEC))
    print("SPLASH-2-like:")
    print("  " + " ".join(SPLASH2))
    print("SPEC OMP-like:")
    print("  " + " ".join(SPEC_OMP))
    print("Other: stream")
    return 0


def cmd_table1(_args):
    from repro.harness import table1
    print(table1.render())
    return 0


def cmd_experiment(args):
    from repro.config import westmere
    from repro.stats import format_table

    if args.name == "fig5":
        from repro.harness.validation import spec_validation
        from repro.workloads import SPEC_CPU2006
        names = SPEC_CPU2006[:args.limit] if args.limit else SPEC_CPU2006
        rows = spec_validation(westmere(num_cores=1), names=names,
                               scale=args.scale,
                               target_instrs=args.instrs)
        print(format_table(
            ["app", "IPC real", "IPC zsim", "perf err"],
            [[r["name"], "%.3f" % r["ipc_real"],
              "%.3f" % r["ipc_zsim"],
              "%+.1f%%" % (100 * r["perf_error"])] for r in rows],
            title="Figure 5 (scale %.3g)" % args.scale))
        return 0
    if args.name == "fig6-stream":
        from repro.harness.validation import stream_scalability
        curves = stream_scalability(
            lambda n: westmere(num_cores=max(n, 1), core_model="ooo"),
            (1, 2, 4, 6), scale=args.scale, target_instrs=args.instrs)
        order = ["none", "md1", "weave", "dramsim", "real"]
        rows = [[n] + ["%.2f" % curves[m][i][1] for m in order]
                for i, n in enumerate((1, 2, 4, 6))]
        print(format_table(["threads"] + order, rows,
                           title="Figure 6 (right)"))
        return 0
    if args.name == "mt-validation":
        from repro.harness.validation import mt_validation
        from repro.workloads import MULTITHREADED
        names = [n for n in MULTITHREADED if n != "stream"]
        if args.limit:
            names = names[:args.limit]
        rows = mt_validation(westmere(num_cores=6), names,
                             scale=args.scale,
                             target_instrs=args.instrs)
        print(format_table(
            ["workload", "perf err"],
            [[r["name"], "%+.1f%%" % (100 * r["perf_error"])]
             for r in rows], title="Figure 6 (left)"))
        return 0
    raise SystemExit("Unknown experiment %r (have: fig5, fig6-stream, "
                     "mt-validation)" % args.name)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZSim reproduction: bound-weave multicore simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--config", "--preset", dest="config",
                       default="westmere",
                       help="preset (%s) or JSON config path"
                       % "/".join(PRESETS))
        p.add_argument("--cores", type=int, default=None)
        p.add_argument("--core-model", choices=("simple", "ooo"),
                       default=None)
        p.add_argument("--workload", default="blackscholes")
        p.add_argument("--scale", type=float, default=1 / 32,
                       help="footprint scale factor")
        p.add_argument("--instrs", type=int, default=100_000)
        p.add_argument("--threads", type=int, default=None)

    run = sub.add_parser("run", help="simulate a workload")
    add_common(run)
    run.add_argument("--contention", choices=CONTENTION_MODELS,
                     default="weave")
    run.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                     help="execution backend (how the engine runs on "
                          "the host; simulated results are identical "
                          "across backends; default: config's "
                          "boundweave.backend)")
    run.add_argument("--pool-size", type=int, default=None, metavar="N",
                     help="process backend: worker processes forked "
                          "per interval (overrides "
                          "boundweave.process_workers; default: host "
                          "CPUs minus one)")
    run.add_argument("--heartbeat-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="process backend: seconds without a worker "
                          "heartbeat before the driver kills "
                          "stragglers and runs their cores inline "
                          "(overrides boundweave.heartbeat_budget_s)")
    run.add_argument("--stats-json", "--stats-out", dest="stats_out",
                     default=None,
                     help="write the stats tree (incl. host speedup "
                          "curves, weave stats, latency histograms) "
                          "as JSON")
    run.add_argument("--trace-out", default=None,
                     help="write a Chrome trace-event JSON "
                          "(chrome://tracing / Perfetto)")
    run.add_argument("--trace-timeline", action="store_true",
                     help="print a compact text timeline after the run")
    run.add_argument("--metrics-out", default=None,
                     help="write the metrics registry (counters, "
                          "histograms, per-interval samples) as JSON")
    run.add_argument("--metrics-csv", default=None,
                     help="write the per-interval sample table as CSV")
    run.add_argument("--log-level", default=None,
                     choices=("debug", "info", "warning", "error"),
                     help="enable structured logging at this level")
    run.add_argument("--supervise", action="store_true",
                     help="supervised execution: recover from backend "
                          "faults by replaying the interval serially "
                          "(implied by --inject-faults)")
    run.add_argument("--watchdog-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="seconds of no worker progress before a pass "
                          "raises WatchdogTimeout (overrides "
                          "boundweave.watchdog_budget_s)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write interval checkpoints to DIR")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="N",
                     help="checkpoint stride in intervals (default 1)")
    run.add_argument("--resume", default=None, metavar="PATH",
                     help="resume from a checkpoint file, or from the "
                          "latest checkpoint in a directory; requires "
                          "the original workload flags")
    run.add_argument("--max-wall-seconds", type=float, default=None,
                     metavar="SECONDS",
                     help="stop (exit %d) after this much wall time, "
                          "checkpointing first when --checkpoint-dir "
                          "is set" % EXIT_WALL_BUDGET)
    run.add_argument("--inject-faults", default=None, metavar="PLAN",
                     help="deterministic fault plan, e.g. "
                          "'kill@3:w0;corrupt@5:d1' (see "
                          "docs/resilience.md); enables supervision")
    run.set_defaults(func=cmd_run)

    val = sub.add_parser("validate",
                         help="compare zsim vs the reference machine")
    add_common(val)
    val.set_defaults(func=cmd_validate)

    lw = sub.add_parser("list-workloads", help="list synthetic suites")
    lw.set_defaults(func=cmd_list_workloads)

    t1 = sub.add_parser("table1", help="print the simulator matrix")
    t1.set_defaults(func=cmd_table1)

    exp = sub.add_parser("experiment",
                         help="run one of the paper's experiments")
    exp.add_argument("name",
                     choices=("fig5", "fig6-stream", "mt-validation"))
    exp.add_argument("--scale", type=float, default=1 / 32)
    exp.add_argument("--instrs", type=int, default=25_000)
    exp.add_argument("--limit", type=int, default=0,
                     help="restrict to the first N workloads")
    exp.set_defaults(func=cmd_experiment)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
