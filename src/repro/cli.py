"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``run`` — simulate a workload on a config (preset or JSON file) and
  print/dump stats.
* ``validate`` — compare zsim vs the reference machine on a workload.
* ``list-workloads`` — enumerate the synthetic suites.
* ``table1`` — print the simulator comparison matrix.
* ``experiment`` — run one of the paper's experiments at a chosen scale
  (the benchmarks drive the same harness under pytest).
* ``diff`` — structurally compare two stats-JSON trees (the
  equivalence oracle; exit 0 identical/within tolerance, 1 divergent).
* ``verify`` — certify a checkpoint directory's integrity fingerprint
  chain: re-derive every capsule's deep state digests, then serially
  re-execute sampled checkpoint-to-checkpoint spans and compare chains
  (exit 0 certified, 1 tampered/corrupt).
* ``report`` — render flight-recorder post-mortem capsules as
  human-readable timelines (paths or directories; corrupt capsules are
  skipped with a warning).
* ``top`` — watch a running simulation (or fleet campaign) through its
  status file.
* ``fleet`` — crash-tolerant experiment campaigns: ``fleet run`` a
  sweep spec under the durable journal, ``fleet resume`` a killed
  campaign, ``fleet status`` its aggregated snapshot, ``fleet spec``
  a canned paper-figure sweep (see docs/resilience.md).

``run`` carries the resilience layer's flags (see docs/resilience.md):
``--supervise``, ``--watchdog-budget``, ``--checkpoint-dir`` /
``--checkpoint-every`` / ``--resume``, ``--max-wall-seconds``, and the
fault-injection harness ``--inject-faults`` — plus the observability
flags (docs/observability.md): ``--status-file``/``--status-port``
(live monitor), ``--flight-dir``/``--no-flight`` (flight recorder).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config import small_test_system, tiled_chip, westmere
from repro.config.loader import load_config
from repro.core.simulator import CONTENTION_MODELS, ZSim
from repro.errors import WallClockExceeded
from repro.exec import BACKEND_NAMES

#: Exit status for a run that stopped on ``--max-wall-seconds`` (the
#: conventional "temporary failure; retry later" code).
EXIT_WALL_BUDGET = 75

PRESETS = {
    "westmere": lambda cores: westmere(num_cores=cores or 6),
    "tiled": lambda cores: tiled_chip(
        num_tiles=max(1, (cores or 64) // 16)),
    "test": lambda cores: small_test_system(num_cores=cores or 4),
}


def _resolve_config(args):
    if args.config in PRESETS:
        config = PRESETS[args.config](args.cores)
    else:
        config = load_config(args.config)
    if args.core_model:
        import dataclasses
        config = dataclasses.replace(
            config, core=dataclasses.replace(config.core,
                                             model=args.core_model))
    return config.validate()


def _resolve_workload(name, scale, num_threads):
    from repro.workloads import (
        MULTITHREADED,
        SPEC_CPU2006,
        mt_workload,
        spec_workload,
    )
    if name in SPEC_CPU2006:
        return spec_workload(name, scale=scale)
    if name in MULTITHREADED:
        return mt_workload(name, scale=scale, num_threads=num_threads)
    raise SystemExit("Unknown workload %r; see `repro list-workloads`"
                     % name)


def _make_telemetry(args):
    """Build the observability context (or None) from run flags."""
    want_trace = bool(args.trace_out or args.trace_timeline)
    want_metrics = bool(args.metrics_out or args.metrics_csv)
    if not want_trace and not want_metrics:
        return None
    from repro.obs import Telemetry
    return Telemetry(trace=want_trace, metrics=want_metrics)


def _write_telemetry(args, telemetry):
    if telemetry is None:
        return
    if args.trace_out:
        telemetry.write_trace(args.trace_out)
        print("trace written to %s (load in chrome://tracing)"
              % args.trace_out)
    if args.trace_timeline:
        print(telemetry.tracer.text_timeline())
    if args.metrics_out:
        telemetry.write_metrics(args.metrics_out)
        print("metrics written to %s" % args.metrics_out)
    if args.metrics_csv:
        with open(args.metrics_csv, "w") as handle:
            handle.write(telemetry.metrics.samples_csv())
        print("interval samples written to %s" % args.metrics_csv)


def _run_meta(args, workload, threads):
    """Identity of a run, recorded in checkpoints and verified on
    resume: the stream fast-forward is only sound when the resuming
    process rebuilds the *same* workload."""
    return {"workload": workload.name, "scale": args.scale,
            "instrs": args.instrs, "threads": len(threads),
            "contention": args.contention, "seed": args.seed_offset}


def _resume_sim(args, meta, threads, telemetry, flight=None):
    from repro.errors import CheckpointError
    from repro.resilience import read_checkpoint, read_latest_checkpoint
    path = args.resume
    try:
        if os.path.isdir(path):
            # Falls back past corrupt/truncated capsules to the newest
            # valid one; only an empty/all-corrupt directory raises.
            path, capsule = read_latest_checkpoint(
                path, flight=flight or None)
        else:
            capsule = read_checkpoint(path)
    except CheckpointError as exc:
        raise SystemExit(str(exc))
    # The integrity record is capsule-internal (deep digests checked by
    # ZSim.resume), not part of the run identity the flags must match.
    saved_meta = dict(capsule.get("meta") or {})
    saved_meta.pop("integrity", None)
    if saved_meta and saved_meta != meta:
        diffs = ["%s: checkpoint=%r, flags=%r" % (k, saved_meta.get(k),
                                                  meta.get(k))
                 for k in sorted(set(saved_meta) | set(meta))
                 if saved_meta.get(k) != meta.get(k)]
        raise SystemExit(
            "checkpoint %s was written by a different run (%s); resume "
            "needs the original workload flags" % (path, "; ".join(diffs)))
    print("resuming from %s (interval %d)" % (path, capsule["interval"]))
    from repro.errors import IntegrityError
    try:
        return ZSim.resume(capsule, threads, backend=args.backend,
                           telemetry=telemetry, flight=flight)
    except IntegrityError as exc:
        raise SystemExit(
            "refusing to resume from %s: %s (certify the directory "
            "with `repro verify`)" % (path, exc))


def _setup_resilience(args, sim, meta):
    """Wire the resilience layer onto a built simulator from run
    flags."""
    from repro.resilience import Checkpointer, FaultPlan, Supervisor
    if args.watchdog_budget:
        sim.backend.watchdog_budget = args.watchdog_budget
    if getattr(args, "pool_size", None):
        sim.backend.pool_size = args.pool_size
    if getattr(args, "heartbeat_budget", None):
        sim.backend.heartbeat_budget_s = args.heartbeat_budget
    if args.inject_faults:
        sim.backend.fault_plan = FaultPlan.parse(args.inject_faults)
    if args.supervise or args.inject_faults:
        Supervisor(sim,
                   max_retries=sim.config.boundweave.recovery_max_retries)
    if args.checkpoint_dir:
        sim.checkpointer = Checkpointer(args.checkpoint_dir,
                                        every=args.checkpoint_every,
                                        meta=meta)
    if args.max_wall_seconds:
        sim.max_wall_seconds = args.max_wall_seconds


class _GracefulStop:
    """SIGTERM/SIGINT handler for ``repro run``: the first signal asks
    the simulator to stop at the next interval barrier (final
    checkpoint + EXIT_WALL_BUDGET, same path as an exhausted wall-clock
    budget); a second signal takes the previous disposition, so it
    force-quits."""

    SIGNALS = ("SIGTERM", "SIGINT")

    def __init__(self, sim):
        self.sim = sim
        self._previous = {}

    def __enter__(self):
        import signal
        for name in self.SIGNALS:
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                self._previous[signum] = signal.signal(signum,
                                                       self._handle)
            except (ValueError, OSError):
                pass  # not the main thread / unsupported platform
        return self

    def __exit__(self, *exc_info):
        import signal
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        return False

    def _handle(self, signum, frame):
        import signal
        self.sim.request_stop("signal %s"
                              % getattr(signal.Signals(signum), "name",
                                        signum))
        # One graceful chance: the next signal acts normally (Ctrl-C
        # twice kills a wedged run).
        previous = self._previous.pop(signum, signal.SIG_DFL)
        try:
            signal.signal(signum, previous)
        except (ValueError, OSError):
            pass


def _make_flight(args):
    """The run's flight recorder (or False to disable): capsules land
    in --flight-dir, else next to the checkpoints, else the cwd."""
    if args.no_flight:
        return False
    from repro.obs import FlightRecorder
    capsule_dir = args.flight_dir or args.checkpoint_dir or "."
    return FlightRecorder(capsule_dir=capsule_dir)


def _setup_monitor(args, sim):
    """Install a live RunMonitor when --status-file/--status-port asked
    for one."""
    if not args.status_file and args.status_port is None:
        return
    from repro.obs import RunMonitor
    run_id = sim.flight.run_id if sim.flight is not None else None
    sim.monitor = RunMonitor(path=args.status_file,
                             port=args.status_port,
                             target_instrs=args.instrs, run_id=run_id)
    if sim.monitor.port is not None:
        print("status exposition: http://127.0.0.1:%d/metrics"
              % sim.monitor.port)


def cmd_run(args):
    if args.log_level:
        from repro.obs import configure_logging
        configure_logging(args.log_level)
    config = _resolve_config(args)
    if args.audit_every is not None:
        config.boundweave.audit_every = args.audit_every
        config.validate()
    workload = _resolve_workload(args.workload, args.scale, args.threads)
    threads = workload.make_threads(
        target_instrs=args.instrs,
        num_threads=args.threads or workload.num_threads,
        seed_offset=args.seed_offset)
    telemetry = _make_telemetry(args)
    meta = _run_meta(args, workload, threads)
    flight = _make_flight(args)
    if args.resume:
        sim = _resume_sim(args, meta, threads, telemetry, flight)
    else:
        sim = ZSim(config, threads=threads,
                   contention_model=args.contention,
                   telemetry=telemetry, backend=args.backend,
                   flight=flight)
    if args.audit_every is not None:
        # Resumed capsules predating the sentinel (or written with
        # auditing off) can still opt in; a fresh sim already has one.
        sentinel = getattr(sim, "integrity", None)
        if sentinel is None:
            from repro.resilience import IntegritySentinel
            sim.integrity = IntegritySentinel(
                audit_every=args.audit_every)
        else:
            sentinel.audit_every = args.audit_every
    _setup_resilience(args, sim, meta)
    _setup_monitor(args, sim)
    profiler = None
    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
    try:
        with _GracefulStop(sim):
            if profiler is not None:
                profiler.enable()
            try:
                result = sim.run()
            finally:
                # Dump on *every* exit — normal completion, wall-budget
                # stop, signals, faults — so a wedged run still leaves
                # its profile behind.
                if profiler is not None:
                    profiler.disable()
                    profiler.dump_stats(args.profile)
                    print("profile written to %s (inspect with: "
                          "python -m pstats %s)"
                          % (args.profile, args.profile))
    except WallClockExceeded as exc:
        # Covers RunInterrupted too (SIGTERM/SIGINT): same resumable
        # exit, no traceback.
        print("stopped: %s" % exc)
        if exc.checkpoint_path:
            print("resume with: repro run --resume %s <original flags>"
                  % exc.checkpoint_path)
        if sim.flight is not None and sim.flight.capsules:
            print("post-mortem capsule: %s (render with: repro report)"
                  % sim.flight.capsules[-1])
        return EXIT_WALL_BUDGET
    config = sim.config  # the capsule's config when resuming
    print("workload %s on %s (%d cores, %s, %s contention, %s backend)"
          % (workload.name, config.name, config.num_cores,
             config.core.model, sim.contention_model, sim.backend.name))
    if sim.supervisor is not None and sim.supervisor.summary()["recoveries"]:
        summary = sim.supervisor.summary()
        print("  recovered from %d execution fault(s)%s"
              % (summary["recoveries"],
                 " — fell back to the serial backend permanently"
                 if summary["fallback_permanent"] else ""))
        if summary.get("demotions"):
            print("  degradation ladder: %s" % summary["demotion_path"])
        if summary.get("integrity_rollbacks"):
            print("  integrity rollbacks: %d (silent corruption caught "
                  "and replayed from a verified barrier)"
                  % summary["integrity_rollbacks"])
    if sim.integrity is not None:
        s = sim.integrity.summary()
        print("  integrity: chain %08x over %d barrier(s), %d audit(s), "
              "%d violation(s)" % (s["chain"], s["fingerprints"],
                                   s["audits"], s["violations"]))
    print("  instrs  : %d" % result.instrs)
    print("  cycles  : %d" % result.cycles)
    print("  IPC     : %.3f" % result.ipc)
    print("  MIPS    : %.3f" % result.mips)
    for level in ("l1i", "l1d", "l2", "l3"):
        print("  %s MPKI: %.2f" % (level.upper().ljust(4),
                                   result.core_mpki(level)))
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            handle.write(result.stats().to_json(indent=2))
        print("stats written to %s" % args.stats_out)
    _write_telemetry(args, telemetry)
    return 0


def cmd_validate(args):
    from repro.harness.validation import validate_workload
    config = _resolve_config(args)
    workload = _resolve_workload(args.workload, args.scale, args.threads)
    row = validate_workload(config, workload, target_instrs=args.instrs,
                            num_threads=args.threads)
    for key in ("ipc_real", "ipc_zsim", "perf_error", "tlb_mpki",
                "l1d_mpki_err", "l3_mpki_err", "branch_mpki_err"):
        value = row[key]
        print("  %-16s %s" % (key,
                              "%.4f" % value
                              if isinstance(value, float) else value))
    return 0


def cmd_list_workloads(_args):
    from repro.workloads import (
        PARSEC,
        SPEC_CPU2006,
        SPEC_OMP,
        SPLASH2,
    )
    print("SPEC CPU2006-like (single-threaded):")
    print("  " + " ".join(SPEC_CPU2006))
    print("PARSEC-like:")
    print("  " + " ".join(PARSEC))
    print("SPLASH-2-like:")
    print("  " + " ".join(SPLASH2))
    print("SPEC OMP-like:")
    print("  " + " ".join(SPEC_OMP))
    print("Other: stream")
    return 0


def cmd_table1(_args):
    from repro.harness import table1
    print(table1.render())
    return 0


def cmd_experiment(args):
    from repro.config import westmere
    from repro.stats import format_table

    if args.name == "fig5":
        from repro.harness.validation import spec_validation
        from repro.workloads import SPEC_CPU2006
        names = SPEC_CPU2006[:args.limit] if args.limit else SPEC_CPU2006
        rows = spec_validation(westmere(num_cores=1), names=names,
                               scale=args.scale,
                               target_instrs=args.instrs)
        print(format_table(
            ["app", "IPC real", "IPC zsim", "perf err"],
            [[r["name"], "%.3f" % r["ipc_real"],
              "%.3f" % r["ipc_zsim"],
              "%+.1f%%" % (100 * r["perf_error"])] for r in rows],
            title="Figure 5 (scale %.3g)" % args.scale))
        return 0
    if args.name == "fig6-stream":
        from repro.harness.validation import stream_scalability
        curves = stream_scalability(
            lambda n: westmere(num_cores=max(n, 1), core_model="ooo"),
            (1, 2, 4, 6), scale=args.scale, target_instrs=args.instrs)
        order = ["none", "md1", "weave", "dramsim", "real"]
        rows = [[n] + ["%.2f" % curves[m][i][1] for m in order]
                for i, n in enumerate((1, 2, 4, 6))]
        print(format_table(["threads"] + order, rows,
                           title="Figure 6 (right)"))
        return 0
    if args.name == "mt-validation":
        from repro.harness.validation import mt_validation
        from repro.workloads import MULTITHREADED
        names = [n for n in MULTITHREADED if n != "stream"]
        if args.limit:
            names = names[:args.limit]
        rows = mt_validation(westmere(num_cores=6), names,
                             scale=args.scale,
                             target_instrs=args.instrs)
        print(format_table(
            ["workload", "perf err"],
            [[r["name"], "%+.1f%%" % (100 * r["perf_error"])]
             for r in rows], title="Figure 6 (left)"))
        return 0
    raise SystemExit("Unknown experiment %r (have: fig5, fig6-stream, "
                     "mt-validation)" % args.name)


def cmd_diff(args):
    from repro.stats import diff_trees, load_tree
    try:
        tree_a = load_tree(args.a)
        tree_b = load_tree(args.b)
    except (OSError, ValueError) as exc:
        raise SystemExit("could not read stats tree: %s" % exc)
    result = diff_trees(tree_a, tree_b, tolerance=args.tolerance,
                        ignore=args.ignore)
    print(result.render(max_report=args.max_report))
    return 0 if result.equivalent else 1


def _replay_span(capsule, interval_a, interval_b):
    """Serially re-execute intervals (a, b] from capsule_a and return
    the sentinel's chain at b, or None when the capsule lacks the run
    meta needed to rebuild its workload."""
    meta = capsule.get("meta") or {}
    if any(meta.get(key) is None
           for key in ("workload", "scale", "instrs", "threads")):
        print("note: capsule at interval %d lacks run meta; span "
              "replay skipped" % interval_a)
        return None
    workload = _resolve_workload(meta["workload"], meta["scale"],
                                 meta["threads"])
    threads = workload.make_threads(target_instrs=meta["instrs"],
                                    num_threads=meta["threads"],
                                    seed_offset=meta.get("seed", 0))
    sim = ZSim.resume(capsule, threads, backend="serial", flight=False)
    sim.run(max_intervals=interval_b)
    sentinel = sim.integrity
    return sentinel.chain if sentinel is not None else None


def cmd_verify(args):
    from repro.errors import CheckpointError, IntegrityError
    from repro.resilience import read_checkpoint
    from repro.resilience.checkpoint import checkpoints
    from repro.resilience.integrity import verify_state

    if os.path.isdir(args.path):
        paths = [path for _interval, path in sorted(checkpoints(args.path))]
        if not paths:
            raise SystemExit("no checkpoints under %s" % args.path)
    else:
        paths = [args.path]
    failures = 0
    verified = []
    for path in paths:
        try:
            capsule = read_checkpoint(path)
        except (CheckpointError, OSError) as exc:
            print("FAIL %s: unreadable capsule: %s" % (path, exc))
            failures += 1
            continue
        record = (capsule.get("meta") or {}).get("integrity")
        if not record:
            print("FAIL %s: no integrity record (checkpoint written "
                  "without the sentinel; rerun with --audit-every)"
                  % path)
            failures += 1
            continue
        try:
            verify_state(capsule["sim"], record, context="verify")
        except IntegrityError as exc:
            print("FAIL %s: %s" % (path, exc))
            failures += 1
            continue
        print("ok   %s (interval %d, chain %08x)"
              % (path, capsule["interval"], record["chain"]))
        verified.append((capsule["interval"], capsule, record))
    replayed = 0
    if args.replay and len(verified) >= 2:
        spans = list(zip(verified, verified[1:]))[-args.replay:]
        for (a, capsule_a, _rec_a), (b, _capsule_b, rec_b) in spans:
            try:
                chain = _replay_span(capsule_a, a, b)
            except Exception as exc:  # tampered pickles crash replay
                print("FAIL replay %d..%d: %s" % (a, b, exc))
                failures += 1
                continue
            if chain is None:
                continue
            replayed += 1
            if chain != rec_b["chain"]:
                print("FAIL replay %d..%d: recomputed chain %08x does "
                      "not match recorded %08x"
                      % (a, b, chain, rec_b["chain"]))
                failures += 1
            else:
                print("ok   replay %d..%d: chain matches (%08x)"
                      % (a, b, chain))
    print("verified %d/%d capsule(s), replayed %d span(s), %d "
          "failure(s)" % (len(verified), len(paths), replayed, failures))
    return 1 if failures or not verified else 0


def _expand_capsule_paths(paths):
    """Expand directories into their ``postmortem-*.json`` capsules
    (sorted), keeping explicit file paths as given."""
    expanded = []
    for path in paths:
        if os.path.isdir(path):
            try:
                names = sorted(os.listdir(path))
            except OSError as exc:
                print("warning: could not list %s: %s" % (path, exc),
                      file=sys.stderr)
                continue
            expanded.extend(os.path.join(path, n) for n in names
                            if n.startswith("postmortem-")
                            and n.endswith(".json"))
        else:
            expanded.append(path)
    return expanded


def cmd_report(args):
    from repro.obs import load_capsule, render_report
    paths = _expand_capsule_paths(args.capsule)
    if not paths:
        raise SystemExit("no post-mortem capsules found under: %s"
                         % " ".join(args.capsule))
    rendered = 0
    for index, path in enumerate(paths):
        try:
            capsule = load_capsule(path)
        except (OSError, ValueError) as exc:
            # A truncated or schema-skewed capsule (host died while the
            # recorder flushed, or an old build wrote it) must not hide
            # the readable ones next to it.
            print("warning: skipping unreadable capsule %s: %s"
                  % (path, exc), file=sys.stderr)
            continue
        if rendered:
            print()
        if len(paths) > 1:
            print("=== %s" % path)
        print(render_report(capsule, last_seconds=args.last_seconds,
                            max_events=args.max_events))
        rendered += 1
    if not rendered:
        raise SystemExit("no readable capsule among %d path(s)"
                         % len(paths))
    return 0


def cmd_top(args):
    import json
    import time as _time

    from repro.obs import render_top
    period = max(0.1, args.interval)
    while True:
        try:
            with open(args.status_file) as fh:
                status = json.load(fh)
        except FileNotFoundError:
            raise SystemExit("no status file at %s (is the run using "
                             "--status-file?)" % args.status_file)
        except ValueError:
            # Mid-replace torn read cannot happen (os.replace is
            # atomic), but an unrelated non-JSON file can.
            raise SystemExit("%s is not a status file"
                             % args.status_file)
        print(render_top(status))
        state = status.get("state", "running")
        if args.once or state != "running":
            return 0 if state in ("running", "done") else 1
        print()
        _time.sleep(period)


def _fleet_orchestrator(args, spec_data=None, resume=False):
    from repro.fleet import FleetOrchestrator
    return FleetOrchestrator(
        args.dir, spec_data=spec_data, resume=resume,
        workers=args.workers, quarantine_after=args.quarantine_after,
        job_timeout_s=args.job_timeout, term_grace_s=args.term_grace,
        backoff_base_s=args.backoff_base,
        checkpoint_every=args.checkpoint_every,
        status_port=args.status_port, seed=args.seed,
        retry_quarantined=getattr(args, "retry_quarantined", False),
        rotate_bytes=args.rotate_bytes)


def _fleet_campaign(args, orchestrator):
    print("campaign %s: %d job(s) x %d worker(s) in %s"
          % (orchestrator.spec.name, len(orchestrator.jobs),
             orchestrator.workers, orchestrator.directory))
    if orchestrator.monitor.port is not None:
        print("status exposition: http://127.0.0.1:%d/metrics"
              % orchestrator.monitor.port)
    print("watch with: repro top %s"
          % os.path.join(orchestrator.directory, "status.json"))
    code = orchestrator.run()
    summary = orchestrator.summary()
    counts = summary["counts"]
    print("campaign %s: %s (%d attempt(s), %d retried)"
          % (summary["campaign"],
             ", ".join("%d %s" % (counts[k], k) for k in sorted(counts)),
             summary["attempts"], summary["retries"]))
    for job_id in summary["quarantined"]:
        print("  quarantined: %s (post-mortems under %s)"
              % (job_id, os.path.join(orchestrator.directory, "jobs",
                                      job_id)))
    if code == EXIT_WALL_BUDGET:
        print("campaign drained; resume with: repro fleet resume %s"
              % orchestrator.directory)
    return code


def cmd_fleet_run(args):
    import json

    from repro.errors import FleetError
    if args.log_level:
        from repro.obs import configure_logging
        configure_logging(args.log_level)
    try:
        with open(args.spec) as fh:
            spec_data = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit("could not read sweep spec %s: %s"
                         % (args.spec, exc))
    try:
        orchestrator = _fleet_orchestrator(args, spec_data=spec_data)
    except FleetError as exc:
        raise SystemExit(str(exc))
    return _fleet_campaign(args, orchestrator)


def cmd_fleet_resume(args):
    from repro.errors import FleetError
    if args.log_level:
        from repro.obs import configure_logging
        configure_logging(args.log_level)
    try:
        orchestrator = _fleet_orchestrator(args, resume=True)
    except FleetError as exc:
        raise SystemExit(str(exc))
    return _fleet_campaign(args, orchestrator)


def cmd_fleet_status(args):
    import json

    from repro.obs import render_top
    path = os.path.join(args.dir, "status.json")
    try:
        with open(path) as fh:
            status = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit("no readable campaign status at %s (%s)"
                         % (path, exc))
    print(render_top(status))
    return 0 if status.get("state") in ("running", "done") else 1


def cmd_fleet_spec(args):
    import json

    from repro.harness.sweeps import build_sweep
    data = build_sweep(args.name, scale=args.scale, instrs=args.instrs,
                       limit=args.limit, seeds=args.seeds)
    text = json.dumps(data, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print("sweep spec written to %s (run with: repro fleet run %s "
              "--dir <campaign-dir>)" % (args.out, args.out))
    else:
        print(text)
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ZSim reproduction: bound-weave multicore simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--config", "--preset", dest="config",
                       default="westmere",
                       help="preset (%s) or JSON config path"
                       % "/".join(PRESETS))
        p.add_argument("--cores", type=int, default=None)
        p.add_argument("--core-model", choices=("simple", "ooo"),
                       default=None)
        p.add_argument("--workload", default="blackscholes")
        p.add_argument("--scale", type=float, default=1 / 32,
                       help="footprint scale factor")
        p.add_argument("--instrs", type=int, default=100_000)
        p.add_argument("--threads", type=int, default=None)
        p.add_argument("--seed-offset", type=int, default=0,
                       metavar="N",
                       help="offset the workload's RNG seeds (the "
                            "statistical axis for sweeps; default 0)")
        p.add_argument("--strict-config", action="store_true",
                       help="alias documenting the default: config "
                            "loading always rejects unknown keys and "
                            "wrong-typed values with the full dotted "
                            "path (there is no lenient mode)")

    run = sub.add_parser("run", help="simulate a workload")
    add_common(run)
    run.add_argument("--contention", choices=CONTENTION_MODELS,
                     default="weave")
    run.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                     help="execution backend (how the engine runs on "
                          "the host; simulated results are identical "
                          "across backends; default: config's "
                          "boundweave.backend)")
    run.add_argument("--pool-size", type=int, default=None, metavar="N",
                     help="process backend: worker processes forked "
                          "per interval (overrides "
                          "boundweave.process_workers; default: host "
                          "CPUs minus one)")
    run.add_argument("--heartbeat-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="process backend: seconds without a worker "
                          "heartbeat before the driver kills "
                          "stragglers and runs their cores inline "
                          "(overrides boundweave.heartbeat_budget_s)")
    run.add_argument("--stats-json", "--stats-out", dest="stats_out",
                     default=None,
                     help="write the stats tree (incl. host speedup "
                          "curves, weave stats, latency histograms) "
                          "as JSON")
    run.add_argument("--trace-out", default=None,
                     help="write a Chrome trace-event JSON "
                          "(chrome://tracing / Perfetto)")
    run.add_argument("--trace-timeline", action="store_true",
                     help="print a compact text timeline after the run")
    run.add_argument("--metrics-out", default=None,
                     help="write the metrics registry (counters, "
                          "histograms, per-interval samples) as JSON")
    run.add_argument("--metrics-csv", default=None,
                     help="write the per-interval sample table as CSV")
    run.add_argument("--profile", default=None, metavar="OUT.pstats",
                     help="profile the simulation loop with cProfile "
                          "and dump pstats data to this path on exit "
                          "(written even when the run stops early)")
    run.add_argument("--log-level", default=None,
                     choices=("debug", "info", "warning", "error"),
                     help="enable structured logging at this level")
    run.add_argument("--supervise", action="store_true",
                     help="supervised execution: recover from backend "
                          "faults by replaying the interval serially "
                          "(implied by --inject-faults)")
    run.add_argument("--watchdog-budget", type=float, default=None,
                     metavar="SECONDS",
                     help="seconds of no worker progress before a pass "
                          "raises WatchdogTimeout (overrides "
                          "boundweave.watchdog_budget_s)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write interval checkpoints to DIR")
    run.add_argument("--checkpoint-every", type=int, default=1,
                     metavar="N",
                     help="checkpoint stride in intervals (default 1)")
    run.add_argument("--resume", default=None, metavar="PATH",
                     help="resume from a checkpoint file, or from the "
                          "latest checkpoint in a directory; requires "
                          "the original workload flags")
    run.add_argument("--max-wall-seconds", type=float, default=None,
                     metavar="SECONDS",
                     help="stop (exit %d) after this much wall time, "
                          "checkpointing first when --checkpoint-dir "
                          "is set" % EXIT_WALL_BUDGET)
    run.add_argument("--inject-faults", default=None, metavar="PLAN",
                     help="deterministic fault plan, e.g. "
                          "'kill@3:w0;corrupt@5:d1' (see "
                          "docs/resilience.md); enables supervision")
    run.add_argument("--audit-every", type=int, default=None,
                     metavar="N",
                     help="integrity sentinel: fingerprint-chain every "
                          "interval barrier and run the invariant "
                          "auditor every N barriers; under "
                          "--supervise, violations roll back to the "
                          "last verified barrier (0 chains without "
                          "auditing; default: config's "
                          "boundweave.audit_every, normally off)")
    run.add_argument("--status-file", default=None, metavar="PATH",
                     help="atomically rewrite a JSON status file at "
                          "every interval barrier (watch it with "
                          "`repro top PATH`)")
    run.add_argument("--status-port", type=int, default=None,
                     metavar="PORT",
                     help="serve live status on 127.0.0.1:PORT "
                          "(/metrics is Prometheus text exposition; "
                          "0 picks an ephemeral port)")
    run.add_argument("--flight-dir", default=None, metavar="DIR",
                     help="directory for flight-recorder post-mortem "
                          "capsules (default: --checkpoint-dir, else "
                          "the cwd)")
    run.add_argument("--no-flight", action="store_true",
                     help="disable the flight recorder (on by default; "
                          "capsules are only written when a run "
                          "crashes or is stopped)")
    run.set_defaults(func=cmd_run)

    val = sub.add_parser("validate",
                         help="compare zsim vs the reference machine")
    add_common(val)
    val.set_defaults(func=cmd_validate)

    lw = sub.add_parser("list-workloads", help="list synthetic suites")
    lw.set_defaults(func=cmd_list_workloads)

    t1 = sub.add_parser("table1", help="print the simulator matrix")
    t1.set_defaults(func=cmd_table1)

    exp = sub.add_parser("experiment",
                         help="run one of the paper's experiments")
    exp.add_argument("name",
                     choices=("fig5", "fig6-stream", "mt-validation"))
    exp.add_argument("--scale", type=float, default=1 / 32)
    exp.add_argument("--instrs", type=int, default=25_000)
    exp.add_argument("--limit", type=int, default=0,
                     help="restrict to the first N workloads")
    exp.set_defaults(func=cmd_experiment)

    diff = sub.add_parser(
        "diff", help="structurally compare two stats-JSON trees "
                     "(exit 0: equivalent, 1: divergent)")
    diff.add_argument("a", help="baseline stats JSON (side A)")
    diff.add_argument("b", help="candidate stats JSON (side B)")
    diff.add_argument("--tolerance", type=float, default=0.0,
                      metavar="REL",
                      help="relative tolerance for numeric leaves "
                           "(default 0: exact)")
    diff.add_argument("--ignore", action="append", default=[],
                      metavar="KEY",
                      help="prune this subtree key wherever it appears "
                           "(repeatable; e.g. --ignore host drops "
                           "host-side wall-clock stats)")
    diff.add_argument("--max-report", type=int, default=25,
                      metavar="N",
                      help="cap the number of mismatches printed")
    diff.set_defaults(func=cmd_diff)

    ver = sub.add_parser(
        "verify", help="certify a checkpoint chain: re-derive each "
                       "capsule's deep state digests and serially "
                       "replay sampled spans (exit 0 certified, 1 "
                       "tampered/corrupt)")
    ver.add_argument("path", help="checkpoint file, or directory of "
                                  "checkpoints (verified in interval "
                                  "order)")
    ver.add_argument("--replay", type=int, default=1, metavar="N",
                     help="serially re-execute the last N checkpoint-"
                          "to-checkpoint spans and compare fingerprint "
                          "chains (0 disables; default 1)")
    ver.set_defaults(func=cmd_verify)

    rep = sub.add_parser(
        "report", help="render flight-recorder post-mortem capsules")
    rep.add_argument("capsule", nargs="+",
                     help="postmortem-*.json path(s), or directories "
                          "to scan for capsules; unreadable capsules "
                          "are skipped with a warning")
    rep.add_argument("--last-seconds", type=float, default=None,
                     metavar="S",
                     help="only show events from the final S seconds")
    rep.add_argument("--max-events", type=int, default=None, metavar="N",
                     help="only show the last N events")
    rep.set_defaults(func=cmd_report)

    top = sub.add_parser(
        "top", help="watch a running simulation via its --status-file")
    top.add_argument("status_file", help="path passed to --status-file")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="refresh period (default 1s)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit")
    top.set_defaults(func=cmd_top)

    fleet = sub.add_parser(
        "fleet", help="crash-tolerant experiment campaigns "
                      "(durable journal, retries, quarantine)")
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_knobs(p):
        p.add_argument("--workers", type=int, default=2, metavar="N",
                       help="concurrent jobs (default 2)")
        p.add_argument("--quarantine-after", type=int, default=3,
                       metavar="K",
                       help="park a job after K consecutive attempts "
                            "without checkpoint progress (default 3)")
        p.add_argument("--job-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-attempt wall budget: SIGTERM (the "
                            "run checkpoints and exits %d), then "
                            "SIGKILL after --term-grace"
                            % EXIT_WALL_BUDGET)
        p.add_argument("--term-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="grace between SIGTERM and SIGKILL "
                            "(default 10)")
        p.add_argument("--backoff-base", type=float, default=0.5,
                       metavar="SECONDS",
                       help="retry backoff base; decorrelated jitter "
                            "in [base, 8*base] (default 0.5)")
        p.add_argument("--checkpoint-every", type=int, default=2,
                       metavar="N",
                       help="per-job checkpoint stride in intervals "
                            "(default 2)")
        p.add_argument("--status-port", type=int, default=None,
                       metavar="PORT",
                       help="serve campaign status on 127.0.0.1:PORT "
                            "(0 picks an ephemeral port)")
        p.add_argument("--rotate-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="compact the journal past this size")
        p.add_argument("--seed", type=int, default=0,
                       help="campaign seed for the backoff jitter")
        p.add_argument("--log-level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="enable structured logging at this level")

    frun = fsub.add_parser(
        "run", help="execute a sweep spec JSON as a fresh campaign")
    frun.add_argument("spec", help="sweep spec JSON (see `repro fleet "
                                   "spec` for canned ones)")
    frun.add_argument("--dir", required=True, metavar="DIR",
                      help="campaign directory (journal, status, "
                           "per-job checkpoints and stats)")
    add_fleet_knobs(frun)
    frun.set_defaults(func=cmd_fleet_run)

    fres = fsub.add_parser(
        "resume", help="resume a killed or drained campaign: replay "
                       "the journal, re-run only incomplete jobs")
    fres.add_argument("dir", help="campaign directory")
    fres.add_argument("--retry-quarantined", action="store_true",
                      help="unpark quarantined jobs and retry them")
    add_fleet_knobs(fres)
    fres.set_defaults(func=cmd_fleet_resume)

    fstat = fsub.add_parser(
        "status", help="print a campaign's status snapshot once")
    fstat.add_argument("dir", help="campaign directory")
    fstat.set_defaults(func=cmd_fleet_status)

    fspec = fsub.add_parser(
        "spec", help="emit a canned paper-figure sweep spec")
    fspec.add_argument("name",
                       choices=("fig5", "fig6-stream", "mt-validation"))
    fspec.add_argument("--out", default=None, metavar="PATH",
                       help="write the spec JSON here (default: stdout)")
    fspec.add_argument("--scale", type=float, default=1 / 32)
    fspec.add_argument("--instrs", type=int, default=25_000)
    fspec.add_argument("--limit", type=int, default=0,
                       help="restrict to the first N workloads")
    fspec.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="seed-offset axis size (default 1)")
    fspec.set_defaults(func=cmd_fleet_spec)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro report ... | head` closing the pipe early is normal
        # use, not an error.  Detach stdout so the interpreter's
        # shutdown flush cannot raise again, and exit like a killed-
        # by-SIGPIPE process would.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
