"""Instrumentation layer: turns functional streams into timed streams.

zsim instruments every basic block, load, and store so that executing the
program drives the timing models.  Here the functional side is a Python
iterator of :class:`~repro.isa.program.BBLExec` records; the instrumenter
attaches decoded descriptors from the translation cache, dispatches magic
ops, and supports fast-forwarding (running the functional stream at full
speed with no timing models attached, as zsim does before the region of
interest).

Checkpoint/replay support (see :mod:`repro.resilience`): the underlying
functional source is usually a generator and cannot be pickled, but it
*is* deterministic, so position — ``pulled``, the count of records drawn
from it — fully describes it.  Three mechanisms build on that:

* ``__getstate__`` drops the source; a pickled stream round-trips with
  its position, counters, and any pushed-back records intact.
* ``resume_source()`` installs a fresh source (a re-created generator)
  and fast-forwards it ``pulled`` records to the saved position.
* ``begin_log()`` / ``rollback_log()`` bracket a speculative span (one
  supervised interval): every record served is logged, and on rollback
  the records are pushed back to be re-served, with the retire counters
  rewound — an in-memory rewind to the interval boundary.
"""

from __future__ import annotations

from collections import deque

from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode


class MagicOp:
    """Magic-op codes embedded in workloads (special NOP sequences)."""

    ROI_BEGIN = 1
    ROI_END = 2
    HEARTBEAT = 3


class InstrumentedStream:
    """Wraps a functional BBLExec stream with decode-once instrumentation.

    Iterating yields ``(decoded_bbl, bbl_exec)`` pairs.  Magic ops invoke
    registered handlers inline, mirroring how zsim recognizes magic NOP
    sequences at instrumentation time.
    """

    def __init__(self, stream, translation_cache=None, program_id=0,
                 magic_handler=None):
        self._stream = iter(stream)
        # Note: an empty TranslationCache is falsy (len == 0), so an
        # explicit None check is required to honor shared caches.
        self.tcache = (translation_cache if translation_cache is not None
                       else TranslationCache())
        self.program_id = program_id
        self.magic_handler = magic_handler
        self.instrs_retired = 0
        self.bbls_executed = 0
        #: Records drawn from the underlying source so far.  Re-served
        #: pushback records do not count: ``pulled`` is the *source*
        #: position, which is what resume needs to replay.
        self.pulled = 0
        self._pushback = deque()
        self._log = None
        self._log_mark = (0, 0)

    def __iter__(self):
        return self

    def _next_record(self):
        if self._pushback:
            record = self._pushback.popleft()
        else:
            record = next(self._stream)
            self.pulled += 1
        if self._log is not None:
            self._log.append(record)
        return record

    def __next__(self):
        bbl_exec = self._next_record()
        block = bbl_exec.block
        decoded = self.tcache.translate(block, self.program_id)
        self.instrs_retired += block.num_instrs
        self.bbls_executed += 1
        if (self.magic_handler is not None
                and block.instructions[0].opcode == Opcode.MAGIC):
            self.magic_handler(bbl_exec)
        return decoded, bbl_exec

    def fast_forward(self, num_instrs):
        """Consume the stream without timing until ``num_instrs`` retire.

        Returns the number of instructions actually skipped (less than
        requested if the stream ends early).  This is the analogue of
        zsim's close-to-native-speed fast-forwarding: the functional side
        runs, the timing side is never invoked.
        """
        skipped = 0
        while skipped < num_instrs:
            try:
                bbl_exec = self._next_record()
            except StopIteration:
                break
            skipped += bbl_exec.block.num_instrs
        self.instrs_retired += skipped
        return skipped

    # ------------------------------------------------------------------
    # Speculative spans (supervised intervals)
    # ------------------------------------------------------------------

    def begin_log(self):
        """Start logging served records so the span can be rolled back."""
        self._log = []
        self._log_mark = (self.instrs_retired, self.bbls_executed)

    def rollback_log(self):
        """Undo the span since :meth:`begin_log`: re-serve its records
        and rewind the retire counters.  ``pulled`` stays — the source
        genuinely produced those records; they now wait in pushback."""
        log, self._log = self._log, None
        if log:
            self._pushback.extendleft(reversed(log))
        self.instrs_retired, self.bbls_executed = self._log_mark

    def discard_log(self):
        """Commit the span: drop the log without rewinding."""
        self._log = None

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        # The functional source is a generator (unpicklable); its
        # position is fully captured by ``pulled``.  An open log is a
        # supervisor-private rollback buffer, never checkpoint state.
        state["_stream"] = None
        state["_log"] = None
        return state

    def resume_source(self, source):
        """Install a freshly re-created functional source and advance it
        to the saved position (``pulled`` records).  Sources are
        deterministic, so the replayed prefix is exactly the consumed
        one; a source that ends early simply leaves the stream
        exhausted (the thread had already finished)."""
        source = iter(source)
        for _ in range(self.pulled):
            try:
                next(source)
            except StopIteration:
                break
        self._stream = source
