"""Instrumentation layer: turns functional streams into timed streams.

zsim instruments every basic block, load, and store so that executing the
program drives the timing models.  Here the functional side is a Python
iterator of :class:`~repro.isa.program.BBLExec` records; the instrumenter
attaches decoded descriptors from the translation cache, dispatches magic
ops, and supports fast-forwarding (running the functional stream at full
speed with no timing models attached, as zsim does before the region of
interest).
"""

from __future__ import annotations

from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode


class MagicOp:
    """Magic-op codes embedded in workloads (special NOP sequences)."""

    ROI_BEGIN = 1
    ROI_END = 2
    HEARTBEAT = 3


class InstrumentedStream:
    """Wraps a functional BBLExec stream with decode-once instrumentation.

    Iterating yields ``(decoded_bbl, bbl_exec)`` pairs.  Magic ops invoke
    registered handlers inline, mirroring how zsim recognizes magic NOP
    sequences at instrumentation time.
    """

    def __init__(self, stream, translation_cache=None, program_id=0,
                 magic_handler=None):
        self._stream = iter(stream)
        # Note: an empty TranslationCache is falsy (len == 0), so an
        # explicit None check is required to honor shared caches.
        self.tcache = (translation_cache if translation_cache is not None
                       else TranslationCache())
        self.program_id = program_id
        self.magic_handler = magic_handler
        self.instrs_retired = 0
        self.bbls_executed = 0

    def __iter__(self):
        return self

    def __next__(self):
        bbl_exec = next(self._stream)
        block = bbl_exec.block
        decoded = self.tcache.translate(block, self.program_id)
        self.instrs_retired += block.num_instrs
        self.bbls_executed += 1
        if (self.magic_handler is not None
                and block.instructions[0].opcode == Opcode.MAGIC):
            self.magic_handler(bbl_exec)
        return decoded, bbl_exec

    def fast_forward(self, num_instrs):
        """Consume the stream without timing until ``num_instrs`` retire.

        Returns the number of instructions actually skipped (less than
        requested if the stream ends early).  This is the analogue of
        zsim's close-to-native-speed fast-forwarding: the functional side
        runs, the timing side is never invoked.
        """
        skipped = 0
        while skipped < num_instrs:
            try:
                bbl_exec = next(self._stream)
            except StopIteration:
                break
            skipped += bbl_exec.block.num_instrs
        self.instrs_retired += skipped
        return skipped
