"""Dynamic-binary-translation substrate (the Pin stand-in).

Provides the translation cache (decode-once basic-block descriptors) and
the instrumentation layer that turns functional execution streams into
timed streams, including fast-forwarding and magic ops.
"""

from repro.dbt.instrumentation import InstrumentedStream, MagicOp
from repro.dbt.tracing import TraceReader, record_trace
from repro.dbt.translation_cache import TranslationCache

__all__ = ["InstrumentedStream", "MagicOp", "TraceReader",
           "TranslationCache", "record_trace"]
