"""Execution trace capture and replay.

zsim is execution-driven; Table 1 notes that several contemporaries
(Sniper, HORNET) only support some workload classes *trace-driven*.
This module provides the bridge in both directions: record a functional
stream to a portable JSON-lines file, and replay it later as if it were
live — useful for deterministic regression corpora and for feeding the
simulator from traces captured elsewhere.

Format: the first line is the static program (blocks of instruction
tuples); each following line is one dynamic basic-block execution.
Syscalls are serialized structurally for the known descriptor types;
``Spawn`` (which carries a callable) cannot be traced.
"""

from __future__ import annotations

import json

from repro.isa.program import BBLExec, Instruction, Program
from repro.virt import syscalls as sc

_SYSCALL_TYPES = {
    "FutexWait": (sc.FutexWait, ("key",)),
    "FutexWake": (sc.FutexWake, ("key", "count")),
    "Barrier": (sc.Barrier, ("key", "parties")),
    "Lock": (sc.Lock, ("key",)),
    "Unlock": (sc.Unlock, ("key",)),
    "Sleep": (sc.Sleep, ("cycles",)),
    "ThreadExit": (sc.ThreadExit, ()),
    "GetTime": (sc.GetTime, ()),
    "Yield": (sc.Yield, ()),
}


def _encode_key(value):
    # Syscall keys may be tuples; JSON turns them into lists, so tag.
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_key(v) for v in value]}
    return value


def _decode_key(value):
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_decode_key(v) for v in value["__tuple__"])
    if isinstance(value, list):
        return tuple(_decode_key(v) for v in value)
    return value


def _encode_syscall(syscall):
    if syscall is None:
        return None
    name = type(syscall).__name__
    if name not in _SYSCALL_TYPES:
        raise ValueError("Syscall %r cannot be traced" % name)
    _cls, fields = _SYSCALL_TYPES[name]
    return [name] + [_encode_key(getattr(syscall, f)) for f in fields]


def _decode_syscall(data):
    if data is None:
        return None
    name, *values = data
    cls, fields = _SYSCALL_TYPES[name]
    kwargs = {f: _decode_key(v) for f, v in zip(fields, values)}
    return cls(**kwargs)


def record_trace(stream, path, program):
    """Consume ``stream`` (BBLExec iterator) and write it to ``path``.

    Returns the number of executions recorded.  All executed blocks must
    belong to ``program``.
    """
    count = 0
    with open(path, "w") as handle:
        header = {
            "name": program.name,
            "code_base": program.code_base,
            "blocks": [[(i.opcode, i.src1, i.src2, i.dst1)
                        for i in block.instructions]
                       for block in program.blocks],
        }
        handle.write(json.dumps(header) + "\n")
        for bbl_exec in stream:
            if bbl_exec.block.bbl_id >= program.num_blocks:
                raise ValueError("Executed block %d is not in program %r"
                                 % (bbl_exec.block.bbl_id, program.name))
            record = [bbl_exec.block.bbl_id, list(bbl_exec.addrs),
                      1 if bbl_exec.taken else 0,
                      _encode_syscall(bbl_exec.syscall)]
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


class TraceReader:
    """Replays a recorded trace as a BBLExec stream.

    The static program is rebuilt from the header, so the replay is
    fully self-contained (no access to the original workload needed).
    """

    def __init__(self, path):
        self.path = path
        with open(path) as handle:
            header = json.loads(handle.readline())
        self.program = Program(header["name"],
                               code_base=header["code_base"])
        for instrs in header["blocks"]:
            self.program.add_block(
                [Instruction(op, s1, s2, d1)
                 for op, s1, s2, d1 in instrs])

    def __iter__(self):
        with open(self.path) as handle:
            handle.readline()  # skip header
            for line in handle:
                bbl_id, addrs, taken, syscall = json.loads(line)
                yield BBLExec(self.program.block(bbl_id), tuple(addrs),
                              taken=bool(taken),
                              syscall=_decode_syscall(syscall))

    def __len__(self):
        with open(self.path) as handle:
            return sum(1 for _ in handle) - 1
