"""Translation cache: decode-once storage for basic-block descriptors.

zsim leans on Pin's dynamic binary translation to pay decode costs once
per *static* instruction rather than once per *dynamic* instruction.  Our
substrate reproduces the same amortization: the first execution of a basic
block decodes it (µop fission, fusion, port/latency assignment, frontend
accounting) and caches the :class:`~repro.isa.decoder.DecodedBBL`; every
later execution reuses the descriptor.

Like zsim, we also support invalidation: when the "code cache" drops a
trace (e.g., self-modifying code or cache pressure in Pin), the translated
block must be freed and re-decoded on next use.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.isa.decoder import decode_bbl


class TranslationCache:
    """Caches decoded basic blocks keyed by (program id, block id)."""

    def __init__(self, capacity=None):
        """``capacity`` optionally bounds the number of cached blocks;
        when full, the least-recently-*used* block is evicted (a simple
        stand-in for Pin's code-cache eviction).  Hits refresh recency,
        so a hot block survives capacity pressure indefinitely."""
        self._cache = OrderedDict()
        self._capacity = capacity
        self.translations = 0
        self.hits = 0
        #: Blocks dropped by capacity pressure; distinct from
        #: ``invalidations`` (explicit drops: self-modifying code,
        #: program teardown), which capacity evictions used to pollute.
        self.evictions = 0
        self.invalidations = 0

    def translate(self, block, program_id=0):
        """Return the decoded descriptor for ``block``, decoding on miss."""
        key = (program_id, block.bbl_id)
        decoded = self._cache.get(key)
        if decoded is not None:
            self.hits += 1
            if self._capacity is not None:
                # Unbounded caches never evict, so recency bookkeeping
                # would be pure overhead on the hottest path in the
                # simulator.
                self._cache.move_to_end(key)
            return decoded
        decoded = decode_bbl(block)
        if self._capacity is not None and len(self._cache) >= self._capacity:
            self._cache.popitem(last=False)
            self.evictions += 1
        self._cache[key] = decoded
        self.translations += 1
        return decoded

    def invalidate(self, block, program_id=0):
        """Drop one translated block (Pin trace invalidation)."""
        if self._cache.pop((program_id, block.bbl_id), None) is not None:
            self.invalidations += 1

    def invalidate_program(self, program_id):
        """Drop every translation of one program (e.g., on exec())."""
        stale = [key for key in self._cache if key[0] == program_id]
        for key in stale:
            del self._cache[key]
        self.invalidations += len(stale)

    def __len__(self):
        return len(self._cache)

    def __contains__(self, key):
        return key in self._cache
