"""The live run monitor: a status file you can watch while a run runs.

A multi-hour checkpointed run is a black hole between its start banner
and its final stats dump.  :class:`RunMonitor` fixes that with the
cheapest possible interface — one small JSON file, atomically rewritten
at every interval barrier (write-to-temp + ``os.replace``, so readers
never see a torn write).  Anything can watch it: ``repro top`` renders
a terminal view, CI asserts on it, and ``--status-port`` additionally
serves the same numbers as Prometheus-style text exposition for real
scrape pipelines.

Status file schema (``version`` 1)::

    {
      "version": 1, "run_id": "…", "pid": 1234,
      "state": "running" | "done" | "stopped" | "failed",
      "backend": "process", "contention": "weave",
      "interval": 42, "limit_cycle": 430000,
      "cycle": 421877, "instrs": 612345, "target_instrs": 1200000,
      "progress": 0.51,             # instrs/target (1.0 when done)
      "intervals_per_s": 3.1, "instrs_per_s": 45123.0,
      "eta_s": 13.0,                # null when no target
      "elapsed_s": 12.8, "updated_monotonic": 12345.6,
      "spec_hit_rate": 0.93,        # process backend only, else null
      "recoveries": 0, "demotions": 0, "demotion_path": "",
      "workers": {"0": {"last_event": "worker_done", "age_s": 0.2}}
    }

All timing uses ``time.monotonic()``: rates and ETAs are deltas, and
Linux's CLOCK_MONOTONIC is system-wide, so a reader process can compute
the file's age from ``updated_monotonic`` without trusting wall clocks.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque

from repro.obs.log import get_logger

_log = get_logger("obs.monitor")

STATUS_VERSION = 1

#: Sliding window (samples) for interval/instruction rates.
RATE_WINDOW = 32


def write_status_json(path, status):
    """Atomically rewrite ``path`` with ``status`` as JSON (write to a
    pid-unique temp, then ``os.replace``): readers never see a torn
    write.  Shared by the run monitor and the fleet monitor.  Returns
    True on success (failures are logged, never raised: a full disk
    must not kill the run being monitored)."""
    tmp = "%s.%d.tmp" % (path, os.getpid())
    try:
        with open(tmp, "w") as fh:
            json.dump(status, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return True
    except OSError as exc:
        _log.warning("could not write status file %s: %s", path, exc)
        return False


def prune_status_orphans(path):
    """Remove stale ``<path>.<pid>.tmp`` files left next to a status
    file by a SIGKILL mid-write.  Only temps for this exact target
    path are touched, so a shared directory stays safe."""
    if not path:
        return
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    try:
        names = os.listdir(directory)
    except OSError:
        return
    for name in names:
        if name.startswith(prefix) and name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
                _log.info("pruned orphaned status temp %s", name)
            except OSError:
                pass


class RunMonitor:
    """Per-interval status publication for one simulation run."""

    def __init__(self, path=None, port=None, target_instrs=None,
                 run_id=None):
        self.path = path
        self.target_instrs = target_instrs
        self.run_id = run_id or os.urandom(4).hex()
        self.state = "running"
        #: The latest snapshot dict (what the file/server publish).
        self.status = {}
        self._start = time.monotonic()
        self._samples = deque(maxlen=RATE_WINDOW)
        self._server = None
        if path:
            prune_status_orphans(path)
        if port is not None:
            self._server = StatusServer(self, port)

    @property
    def port(self):
        """Bound exposition port (None without ``--status-port``)."""
        return self._server.port if self._server is not None else None

    # -- publication ---------------------------------------------------

    def update(self, sim, interval, limit, cycle=None, instrs=None):
        """Publish one interval's status (called at the barrier)."""
        if cycle is None:
            cycle = max((c.cycle for c in sim.cores), default=0)
        if instrs is None:
            instrs = sum(c.instrs for c in sim.cores)
        now = time.monotonic()
        self._samples.append((now, interval, instrs))
        self.status = self._snapshot(sim, interval, limit, cycle,
                                     instrs, now)
        self._write()

    def finish(self, sim, state):
        """Publish the terminal state (``done``/``stopped``/``failed``)
        and stop the exposition server."""
        self.state = state
        status = dict(self.status) if self.status else self._snapshot(
            sim, 0, 0, 0, 0, time.monotonic())
        status["state"] = state
        status["updated_monotonic"] = time.monotonic()
        if state == "done":
            status["progress"] = 1.0
            status["eta_s"] = 0.0
        self.status = status
        self._write()
        self.close()

    def close(self):
        server, self._server = self._server, None
        if server is not None:
            server.stop()

    # -- snapshot assembly ---------------------------------------------

    def _rates(self, now):
        if len(self._samples) < 2:
            return None, None
        t0, i0, n0 = self._samples[0]
        t1, i1, n1 = self._samples[-1]
        dt = t1 - t0
        if dt <= 0:
            return None, None
        return (i1 - i0) / dt, (n1 - n0) / dt

    def _snapshot(self, sim, interval, limit, cycle, instrs, now):
        interval_rate, instr_rate = self._rates(now)
        target = self.target_instrs
        progress = None
        eta = None
        if target:
            progress = min(1.0, instrs / target)
            if instr_rate:
                eta = max(0.0, (target - instrs) / instr_rate)
        status = {
            "version": STATUS_VERSION,
            "run_id": self.run_id,
            "pid": os.getpid(),
            "state": self.state,
            "backend": getattr(sim.backend, "name", None),
            "contention": getattr(sim, "contention_model", None),
            "interval": interval,
            "limit_cycle": limit,
            "cycle": cycle,
            "instrs": instrs,
            "target_instrs": target,
            "progress": progress,
            "intervals_per_s": interval_rate,
            "instrs_per_s": instr_rate,
            "eta_s": eta,
            "elapsed_s": now - self._start,
            "updated_monotonic": now,
            "spec_hit_rate": _spec_hit_rate(sim),
            "recoveries": 0,
            "demotions": 0,
            "demotion_path": "",
            "workers": _worker_liveness(sim, now),
        }
        supervisor = getattr(sim, "supervisor", None)
        if supervisor is not None:
            summary = supervisor.summary()
            status["recoveries"] = summary["recoveries"]
            status["demotions"] = summary["demotions"]
            status["demotion_path"] = summary["demotion_path"]
            status["integrity_rollbacks"] = summary.get(
                "integrity_rollbacks", 0)
        sentinel = getattr(sim, "integrity", None)
        if sentinel is not None:
            integrity = sentinel.summary()
            status["integrity_fingerprints"] = integrity["fingerprints"]
            status["integrity_audits"] = integrity["audits"]
            status["integrity_violations"] = integrity["violations"]
        return status

    def _write(self):
        if self.path is None:
            return
        write_status_json(self.path, self.status)


def _spec_hit_rate(sim):
    """Process-backend speculation hit rate, or None for other
    backends (no speculation to rate)."""
    try:
        stats = sim.backend.host_stats()
    except Exception:
        return None
    if "spec_commits" not in stats:
        return None
    tried = (stats.get("spec_commits", 0) + stats.get("spec_rejects", 0)
             + stats.get("inline_runs", 0))
    if not tried:
        return None
    return stats["spec_commits"] / tried


def _worker_liveness(sim, now):
    """Per-worker last-seen state, from the flight recorder's ring."""
    flight = getattr(sim, "flight", None)
    if flight is None:
        return {}
    return {str(w): {"last_event": kind, "age_s": round(now - t, 6)}
            for w, (t, kind) in sorted(flight.worker_state.items())}


# ---------------------------------------------------------------------
# Prometheus-style text exposition
# ---------------------------------------------------------------------

_STATE_CODES = {"running": 0, "done": 1, "stopped": 2, "failed": 3}

#: (status key, metric name, help text)
_GAUGES = (
    ("interval", "repro_interval", "Completed simulation intervals"),
    ("cycle", "repro_cycle", "Max simulated core cycle"),
    ("instrs", "repro_instrs", "Total simulated instructions"),
    ("target_instrs", "repro_target_instrs",
     "Instruction target for this run"),
    ("progress", "repro_progress", "Run progress in [0, 1]"),
    ("intervals_per_s", "repro_intervals_per_second",
     "Interval completion rate"),
    ("instrs_per_s", "repro_instrs_per_second",
     "Simulated instruction rate"),
    ("eta_s", "repro_eta_seconds", "Estimated seconds to completion"),
    ("elapsed_s", "repro_elapsed_seconds", "Wall seconds since start"),
    ("spec_hit_rate", "repro_spec_hit_rate",
     "Process-backend speculation hit rate"),
    ("recoveries", "repro_recoveries", "Supervisor fault recoveries"),
    ("demotions", "repro_demotions", "Degradation-ladder demotions"),
    ("integrity_fingerprints", "repro_integrity_fingerprints",
     "Interval barriers fingerprinted by the integrity sentinel"),
    ("integrity_audits", "repro_integrity_audits",
     "Online invariant audits run by the integrity sentinel"),
    ("integrity_violations", "repro_integrity_violations",
     "Integrity violations detected (silent corruption caught)"),
    ("integrity_rollbacks", "repro_integrity_rollbacks",
     "Supervisor rollbacks to a fingerprint-verified checkpoint"),
)


#: (fleet-status key, metric name, help text)
_FLEET_GAUGES = (
    ("jobs_total", "repro_fleet_jobs_total", "Jobs in the sweep spec"),
    ("progress", "repro_fleet_progress",
     "Completed-job fraction in [0, 1]"),
    ("attempts", "repro_fleet_attempts", "Job attempts launched"),
    ("retries", "repro_fleet_retries", "Job attempts beyond the first"),
    ("jobs_per_s", "repro_fleet_jobs_per_second",
     "Job completion rate"),
    ("eta_s", "repro_fleet_eta_seconds",
     "Estimated seconds to campaign completion"),
    ("elapsed_s", "repro_fleet_elapsed_seconds",
     "Wall seconds since campaign start"),
)


def _fleet_prometheus_text(status):
    """Prometheus text exposition for a fleet (campaign) status
    snapshot — same endpoint, ``repro_fleet_*`` namespace."""
    lines = []
    state = status.get("state", "running")
    lines.append("# HELP repro_fleet_info Campaign identity "
                 "(value is always 1)")
    lines.append("# TYPE repro_fleet_info gauge")
    lines.append('repro_fleet_info{run_id="%s",campaign="%s",'
                 'state="%s"} 1'
                 % (status.get("run_id", ""),
                    status.get("campaign", ""), state))
    lines.append("# HELP repro_fleet_state Campaign state "
                 "(0=running 1=done 2=stopped 3=failed)")
    lines.append("# TYPE repro_fleet_state gauge")
    lines.append("repro_fleet_state %d" % _STATE_CODES.get(state, 3))
    for key, metric, help_text in _FLEET_GAUGES:
        value = status.get(key)
        if value is None:
            continue
        lines.append("# HELP %s %s" % (metric, help_text))
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %.10g" % (metric, float(value)))
    counts = status.get("counts") or {}
    if counts:
        lines.append("# HELP repro_fleet_jobs Jobs per state")
        lines.append("# TYPE repro_fleet_jobs gauge")
        for key in sorted(counts):
            lines.append('repro_fleet_jobs{state="%s"} %d'
                         % (key, counts[key]))
    return "\n".join(lines) + "\n"


def prometheus_text(status):
    """Render a status snapshot as Prometheus text exposition.  Fleet
    (campaign) snapshots get the ``repro_fleet_*`` namespace; single
    runs the ``repro_*`` one."""
    if status.get("kind") == "fleet":
        return _fleet_prometheus_text(status)
    lines = []
    state = status.get("state", "running")
    lines.append("# HELP repro_run_info Run identity (value is always 1)")
    lines.append("# TYPE repro_run_info gauge")
    lines.append('repro_run_info{run_id="%s",backend="%s",state="%s"} 1'
                 % (status.get("run_id", ""),
                    status.get("backend", ""), state))
    lines.append("# HELP repro_state Run state "
                 "(0=running 1=done 2=stopped 3=failed)")
    lines.append("# TYPE repro_state gauge")
    lines.append("repro_state %d" % _STATE_CODES.get(state, 3))
    for key, metric, help_text in _GAUGES:
        value = status.get(key)
        if value is None:
            continue
        lines.append("# HELP %s %s" % (metric, help_text))
        lines.append("# TYPE %s gauge" % metric)
        lines.append("%s %.10g" % (metric, float(value)))
    workers = status.get("workers") or {}
    if workers:
        lines.append("# HELP repro_worker_age_seconds Seconds since a "
                     "worker's last recorded event")
        lines.append("# TYPE repro_worker_age_seconds gauge")
        for wid in sorted(workers):
            lines.append('repro_worker_age_seconds{worker="%s"} %.10g'
                         % (wid, float(workers[wid].get("age_s", 0.0))))
    return "\n".join(lines) + "\n"


class StatusServer:
    """Minimal HTTP exposition: ``/metrics`` (Prometheus text) and
    ``/`` (the raw status JSON), served from a daemon thread."""

    def __init__(self, monitor, port):
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self, _monitor=monitor):
                status = _monitor.status or {}
                if self.path.startswith("/metrics"):
                    body = prometheus_text(status).encode()
                    ctype = "text/plain; version=0.0.4"
                else:
                    body = json.dumps(status, sort_keys=True,
                                      indent=1).encode()
                    ctype = "application/json"
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass  # no per-request stderr noise

        self._httpd = ThreadingHTTPServer(("127.0.0.1", int(port)),
                                          Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-status-server", daemon=True)
        self._thread.start()
        _log.info("status exposition on http://127.0.0.1:%d/metrics",
                  self.port)

    def stop(self):
        try:
            self._httpd.shutdown()
            self._httpd.server_close()
        except Exception:
            pass
        self._thread.join(timeout=2.0)


# ---------------------------------------------------------------------
# Terminal view (``repro top``)
# ---------------------------------------------------------------------


def _fmt_count(value):
    if value is None:
        return "?"
    if value >= 10_000_000:
        return "%.1fM" % (value / 1e6)
    if value >= 10_000:
        return "%.1fk" % (value / 1e3)
    return "%d" % value


def _fmt_seconds(value):
    if value is None:
        return "?"
    if value >= 3600:
        return "%dh%02dm" % (value // 3600, (value % 3600) // 60)
    if value >= 60:
        return "%dm%02ds" % (value // 60, value % 60)
    return "%.1fs" % value


def _progress_bar(progress, width=30):
    if progress is None:
        return "[%s]" % ("?" * width)
    filled = int(round(progress * width))
    return "[%s%s]" % ("#" * filled, "-" * (width - filled))


def _render_fleet_top(status, now):
    """One frame of the fleet (campaign) terminal view."""
    state = status.get("state", "?")
    counts = status.get("counts") or {}
    total = status.get("jobs_total")
    lines = []
    lines.append("repro fleet — campaign %s (run %s, pid %s)   "
                 "state: %-8s workers: %s"
                 % (status.get("campaign", "?"),
                    status.get("run_id", "?"), status.get("pid", "?"),
                    state, status.get("workers", "?")))
    progress = status.get("progress")
    lines.append("%s %s   jobs %s/%s done   running %s   backoff %s   "
                 "failed %s   quarantined %s"
                 % (_progress_bar(progress),
                    "%3d%%" % round(100 * progress)
                    if progress is not None else "  ?%",
                    counts.get("done", 0), total if total is not None
                    else "?", counts.get("running", 0),
                    counts.get("backoff", 0), counts.get("failed", 0),
                    counts.get("quarantined", 0)))
    rate = status.get("jobs_per_s")
    lines.append("rate %s jobs/s   eta %s   elapsed %s   attempts %s "
                 "(%s retries)"
                 % ("%.3f" % rate if rate is not None else "?",
                    _fmt_seconds(status.get("eta_s")),
                    _fmt_seconds(status.get("elapsed_s")),
                    status.get("attempts", 0),
                    status.get("retries", 0)))
    running = status.get("running") or {}
    if running:
        cells = []
        for job in sorted(running):
            info = running[job]
            cells.append("%s:a%s %s" % (job, info.get("attempt", "?"),
                                        _fmt_seconds(info.get("age_s"))))
        lines.append("running: " + " | ".join(cells))
    quarantined = status.get("quarantined") or []
    if quarantined:
        lines.append("quarantined: " + " ".join(quarantined))
    if status.get("updated_monotonic") is not None:
        age = max(0.0, now - status["updated_monotonic"])
        stale = "  (STALE?)" if state == "running" and age > 30 else ""
        lines.append("status written %.1fs ago%s" % (age, stale))
    return "\n".join(lines)


def render_top(status, now=None):
    """One frame of the ``repro top`` terminal view.  Renders both
    single-run and fleet (campaign) status files."""
    if now is None:
        now = time.monotonic()
    if status.get("kind") == "fleet":
        return _render_fleet_top(status, now)
    state = status.get("state", "?")
    age = None
    if status.get("updated_monotonic") is not None:
        age = max(0.0, now - status["updated_monotonic"])
    lines = []
    lines.append("repro top — run %s (pid %s)   state: %-8s backend: %s"
                 % (status.get("run_id", "?"), status.get("pid", "?"),
                    state, status.get("backend", "?")))
    progress = status.get("progress")
    lines.append("%s %s   interval %s (cycle %s)"
                 % (_progress_bar(progress),
                    "%3d%%" % round(100 * progress)
                    if progress is not None else "  ?%",
                    status.get("interval", "?"),
                    _fmt_count(status.get("cycle"))))
    rate = status.get("intervals_per_s")
    lines.append("instrs %s / %s   rate %s intervals/s   eta %s   "
                 "elapsed %s"
                 % (_fmt_count(status.get("instrs")),
                    _fmt_count(status.get("target_instrs")),
                    "%.2f" % rate if rate is not None else "?",
                    _fmt_seconds(status.get("eta_s")),
                    _fmt_seconds(status.get("elapsed_s"))))
    spec = status.get("spec_hit_rate")
    resil = "recoveries %s   demotions %s%s" % (
        status.get("recoveries", 0), status.get("demotions", 0),
        "  (%s)" % status["demotion_path"]
        if status.get("demotion_path") else "")
    lines.append(("speculation hit rate %d%%   " % round(100 * spec)
                  if spec is not None else "") + resil)
    workers = status.get("workers") or {}
    if workers:
        cells = []
        for wid in sorted(workers, key=lambda x: (len(x), x)):
            info = workers[wid]
            cells.append("%s:%s %.1fs" % (wid,
                                          info.get("last_event", "?"),
                                          info.get("age_s", 0.0)))
        lines.append("workers: " + " | ".join(cells))
    if age is not None:
        stale = "  (STALE?)" if state == "running" and age > 30 else ""
        lines.append("status written %.1fs ago%s" % (age, stale))
    return "\n".join(lines)
