"""Observability: tracing, metrics, and profiling hooks.

The telemetry layer mirrors what the paper's evaluation needed to be
written at all: per-phase (bound vs. weave) wall-clock costs, periodic
stats dumps, and event/crossing accounting.  Three pillars:

* :mod:`repro.obs.tracer` — span/instant tracing, exportable as Chrome
  trace-event JSON (load it in ``chrome://tracing`` / Perfetto) or as a
  compact text timeline.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and log-2
  bucketed histograms, sampled once per simulated interval (zsim's
  periodic HDF5 dumps), serializable to JSON/CSV.
* :mod:`repro.obs.context` — the :class:`Telemetry` object threaded
  through the simulator.  Every hot-path call site guards on
  ``telem is not None`` so a run without telemetry pays nothing.

:mod:`repro.obs.log` configures structured per-subsystem loggers.

The run-introspection layer rides alongside:

* :mod:`repro.obs.flight` — the always-on :class:`FlightRecorder` ring
  buffer and its post-mortem capsules (``repro report``).
* :mod:`repro.obs.monitor` — the :class:`RunMonitor` live status file
  and Prometheus-style exposition (``repro top``).
"""

from repro.obs.context import Telemetry
from repro.obs.flight import FlightRecorder, load_capsule, render_report
from repro.obs.histogram import Log2Histogram
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import RunMonitor, prometheus_text, render_top
from repro.obs.tracer import Tracer

__all__ = [
    "FlightRecorder",
    "Log2Histogram",
    "MetricsRegistry",
    "RunMonitor",
    "Telemetry",
    "Tracer",
    "configure_logging",
    "get_logger",
    "load_capsule",
    "prometheus_text",
    "render_report",
    "render_top",
]
