"""Log-2 bucketed histograms for latency-like quantities.

Values land in power-of-two buckets: bucket 0 holds exact zeros, bucket
``i`` (``i >= 1``) holds values in ``[2**(i-1), 2**i - 1]`` — i.e. the
bucket index is the value's bit length.  This is the classic shape for
memory-latency distributions: cheap to record (one integer bit-length
and one list increment, safe for hot paths) and wide enough that any
value fits without configuration.
"""

from __future__ import annotations

_MAX_BUCKET = 63


def bucket_bounds(index):
    """Inclusive ``(lo, hi)`` value range of bucket ``index``."""
    if index <= 0:
        return (0, 0)
    return (1 << (index - 1), (1 << index) - 1)


def bucket_label(index):
    """Human-readable range label for bucket ``index``."""
    lo, hi = bucket_bounds(index)
    if index >= _MAX_BUCKET:
        return "%d+" % lo
    return "%d" % lo if lo == hi else "%d-%d" % (lo, hi)


class Log2Histogram:
    """A log-2 bucketed histogram of non-negative integers."""

    __slots__ = ("name", "count", "total", "min", "max", "_counts")

    def __init__(self, name=""):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._counts = [0] * (_MAX_BUCKET + 1)

    def record(self, value, n=1):
        """Record ``value`` ``n`` times.  Values are truncated to int;
        negatives are rejected (latencies cannot be negative)."""
        value = int(value)
        if value < 0:
            raise ValueError("Log2Histogram values must be >= 0, got %d"
                             % value)
        index = value.bit_length()
        if index > _MAX_BUCKET:
            index = _MAX_BUCKET
        self._counts[index] += n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, p):
        """Upper bound of the bucket containing the ``p``-th percentile
        (``0 < p <= 100``); None on an empty histogram."""
        if not self.count:
            return None
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100], got %r" % p)
        threshold = self.count * p / 100.0
        seen = 0
        for index, n in enumerate(self._counts):
            seen += n
            if seen >= threshold:
                return bucket_bounds(index)[1]
        return bucket_bounds(_MAX_BUCKET)[1]

    def buckets(self):
        """Yield ``(lo, hi, count)`` for every non-empty bucket."""
        for index, n in enumerate(self._counts):
            if n:
                lo, hi = bucket_bounds(index)
                yield lo, hi, n

    def merge(self, other):
        """Add ``other``'s samples into this histogram."""
        for index, n in enumerate(other._counts):
            self._counts[index] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def to_dict(self):
        """Serialize to a plain dict (JSON-safe)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {bucket_label(i): n
                        for i, n in enumerate(self._counts) if n},
        }

    def __len__(self):
        return self.count

    def __repr__(self):
        return ("Log2Histogram(%r, count=%d, mean=%.1f)"
                % (self.name, self.count, self.mean))
