"""Structured logging for the simulator.

One logger per subsystem under the ``repro`` root (``repro.core``,
``repro.memory``, ``repro.virt``, ``repro.obs``); :func:`get_logger`
hands them out and :func:`configure_logging` installs a stream handler
with a consistent format.  Per-run events log at INFO, per-interval
detail at DEBUG — hot paths never log unconditionally.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"

LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(subsystem):
    """Logger for a subsystem, namespaced under ``repro``."""
    name = subsystem if subsystem.startswith("repro") \
        else "repro." + subsystem
    return logging.getLogger(name)


def configure_logging(level="info", stream=None):
    """Install (or retune) the ``repro`` root handler.  ``level`` is a
    name from :data:`LEVELS` or a numeric level.  Idempotent: calling
    again only adjusts the level."""
    if isinstance(level, str):
        if level.lower() not in LEVELS:
            raise ValueError("Unknown log level %r (have: %s)"
                             % (level, ", ".join(LEVELS)))
        level = getattr(logging, level.upper())
    root = logging.getLogger("repro")
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, "_repro_handler", False):
            handler.setLevel(level)
            return root
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
    handler._repro_handler = True
    root.addHandler(handler)
    # Don't propagate to the (possibly pytest-captured) root logger.
    root.propagate = False
    return root
