"""Metrics registry: counters, gauges, log-2 histograms, interval samples.

A flat namespace of dotted metric names (``sched.context_switches``,
``mem.access_latency``).  The registry also collects *per-interval
samples* — one row per simulated interval with the bound/weave phase
timings and progress counters — mirroring zsim's periodic HDF5 stats
dumps.  Serializes to JSON (everything) and CSV (the sample table).
"""

from __future__ import annotations

import json

from repro.obs.histogram import Log2Histogram


class MetricsRegistry:
    """Named counters, gauges, and histograms plus an interval table."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        #: Per-interval sample rows (dicts with an ``interval`` key).
        self.samples = []

    # ------------------------------------------------------------------
    # Scalars
    # ------------------------------------------------------------------

    def inc(self, name, amount=1):
        self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name):
        return self._counters.get(name, 0)

    def gauge(self, name, value):
        self._gauges[name] = value

    def histogram(self, name):
        """Get-or-create the named :class:`Log2Histogram`."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Log2Histogram(name)
            self._histograms[name] = hist
        return hist

    # ------------------------------------------------------------------
    # Interval sampling
    # ------------------------------------------------------------------

    def sample_interval(self, interval, **fields):
        """Append one per-interval sample row (zsim's periodic dump)."""
        row = {"interval": interval}
        row.update(fields)
        self.samples.append(row)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self):
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: hist.to_dict()
                           for name, hist in self._histograms.items()},
            "samples": list(self.samples),
        }

    def to_json(self, **kwargs):
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    def write(self, path, indent=2):
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))

    def samples_csv(self):
        """The interval-sample table as CSV text (union of columns)."""
        if not self.samples:
            return ""
        columns = ["interval"]
        for row in self.samples:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines = [",".join(columns)]
        for row in self.samples:
            lines.append(",".join(_csv_cell(row.get(col))
                                  for col in columns))
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return ("MetricsRegistry(%d counters, %d gauges, %d histograms, "
                "%d samples)" % (len(self._counters), len(self._gauges),
                                 len(self._histograms),
                                 len(self.samples)))


def _csv_cell(value):
    if value is None:
        return ""
    if isinstance(value, float):
        return "%.9g" % value
    return str(value)
