"""The telemetry context threaded through the simulator.

One :class:`Telemetry` object bundles the tracer and the metrics
registry and is passed into :class:`~repro.core.simulator.ZSim` (which
forwards it to the bound phase, weave engine, memory hierarchy, and
scheduler).  The contract for instrumented code is:

* hold the context as ``self._telem`` (``None`` when telemetry is off);
* guard every hot-path call site with ``if self._telem is not None:``
  so a disabled run pays one attribute load and an identity check —
  nothing is allocated, formatted, or timed.

Either pillar can be switched off individually (``Telemetry(trace=False)``
still collects metrics), and :meth:`Telemetry.disable` turns an existing
context into a no-op without detaching it from the simulator.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class Telemetry:
    """Instrumentation context: a tracer plus a metrics registry."""

    def __init__(self, trace=True, metrics=True, max_trace_events=1_000_000):
        self.tracer = Tracer(max_events=max_trace_events) if trace else None
        self.metrics = MetricsRegistry() if metrics else None

    @property
    def enabled(self):
        return self.tracer is not None or self.metrics is not None

    def disable(self):
        """Turn this context into a no-op (keeps collected data)."""
        self.tracer = None
        self.metrics = None

    # Convenience writers used by the CLI -----------------------------

    def write_trace(self, path, indent=None):
        if self.tracer is None:
            raise RuntimeError("tracing is disabled on this Telemetry")
        self.tracer.write(path, indent=indent)

    def write_metrics(self, path, indent=2):
        if self.metrics is None:
            raise RuntimeError("metrics are disabled on this Telemetry")
        self.metrics.write(path, indent=indent)

    def __repr__(self):
        return ("Telemetry(trace=%s, metrics=%s)"
                % (self.tracer is not None, self.metrics is not None))
