"""Phase tracer: spans and instants, exportable to Chrome trace JSON.

Records what the bound-weave engine does with wall-clock timestamps:
bound-phase per-core spans, weave-phase per-domain spans, interval
barriers, and scheduler events.  Two export formats:

* :meth:`Tracer.to_chrome` — the Chrome trace-event format (JSON object
  with a ``traceEvents`` array), loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev.  Spans are complete ("X") events; markers are
  instant ("i") events; thread/process names ride along as metadata
  ("M") events.
* :meth:`Tracer.text_timeline` — a compact per-lane text summary for
  terminals without a trace viewer.

Timestamps are microseconds relative to tracer creation, the unit the
trace-event spec requires.  Track ids (``tid``) partition the timeline
into lanes: 0 is the simulator main loop, ``TID_CORE + n`` the bound
phase of core *n*, ``TID_DOMAIN + d`` weave domain *d*, ``TID_SCHED``
the scheduler, and ``TID_WORKER + w`` execution-backend worker *w*
(real per-worker spans, as opposed to the apportioned per-domain
shares the serial backend records).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

PID = 0
TID_MAIN = 0
TID_SCHED = 1
TID_CORE = 1000
TID_DOMAIN = 2000
TID_WORKER = 3000


class Tracer:
    """Collects trace events; bounded to ``max_events`` (excess spans are
    counted in :attr:`dropped` instead of growing without limit)."""

    def __init__(self, max_events=1_000_000):
        self._t0 = time.perf_counter()
        self.max_events = max_events
        self.events = []
        self.dropped = 0
        self._track_names = {TID_MAIN: "sim", TID_SCHED: "scheduler"}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def now(self):
        """Microseconds since tracer creation."""
        return (time.perf_counter() - self._t0) * 1e6

    def name_track(self, tid, name):
        self._track_names[tid] = name

    def complete(self, name, cat, start_us, dur_us, tid=TID_MAIN,
                 args=None):
        """Record a complete span ("X") from explicit microsecond times."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({"name": name, "cat": cat, "ph": "X",
                            "ts": start_us, "dur": dur_us,
                            "pid": PID, "tid": tid,
                            "args": args or {}})

    def complete_raw(self, name, cat, start_s, end_s, tid=TID_MAIN,
                     args=None):
        """Record a span from raw ``time.perf_counter()`` readings."""
        start_us = (start_s - self._t0) * 1e6
        self.complete(name, cat, start_us, (end_s - start_s) * 1e6,
                      tid, args)

    def instant(self, name, cat, tid=TID_MAIN, args=None):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append({"name": name, "cat": cat, "ph": "i",
                            "ts": self.now(), "s": "t",
                            "pid": PID, "tid": tid,
                            "args": args or {}})

    @contextmanager
    def span(self, name, cat, tid=TID_MAIN, args=None):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.complete_raw(name, cat, start, time.perf_counter(),
                              tid, args)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_chrome(self):
        """The trace as a Chrome trace-event JSON object (dict)."""
        meta = [{"name": "process_name", "ph": "M", "pid": PID, "tid": 0,
                 "args": {"name": "zsim-repro"}}]
        for tid, name in sorted(self._track_names.items()):
            meta.append({"name": "thread_name", "ph": "M", "pid": PID,
                         "tid": tid, "args": {"name": name}})
        return {"traceEvents": meta + self.events,
                "displayTimeUnit": "ms",
                "otherData": {"dropped_events": self.dropped}}

    def to_json(self, **kwargs):
        return json.dumps(self.to_chrome(), **kwargs)

    def write(self, path, indent=None):
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=indent)

    def text_timeline(self):
        """Compact per-lane summary: one line per track with span count,
        total busy time, and the heaviest span."""
        lanes = {}
        for event in self.events:
            if event["ph"] != "X":
                continue
            lane = lanes.setdefault(event["tid"],
                                    {"count": 0, "busy": 0.0,
                                     "worst": None})
            lane["count"] += 1
            lane["busy"] += event["dur"]
            if lane["worst"] is None or event["dur"] > lane["worst"][1]:
                lane["worst"] = (event["name"], event["dur"])
        lines = ["timeline (%d events, %d dropped)"
                 % (len(self.events), self.dropped)]
        for tid in sorted(lanes):
            lane = lanes[tid]
            name = self._track_names.get(tid, "tid%d" % tid)
            worst = lane["worst"]
            lines.append(
                "  %-16s %6d spans %10.3f ms busy  worst %s (%.3f ms)"
                % (name, lane["count"], lane["busy"] / 1e3,
                   worst[0], worst[1] / 1e3))
        return "\n".join(lines)

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "Tracer(%d events, %d dropped)" % (len(self.events),
                                                  self.dropped)
