"""The flight recorder: an always-on ring buffer of run events.

Post-hoc telemetry (:mod:`repro.obs.tracer` / :mod:`repro.obs.metrics`)
answers *where did the time go* after a run finishes; it is useless for
the failures the resilience layer exists for — a SIGKILLed worker, a
wedged pool, a deadlock three hours into a checkpointed run — because
the evidence dies with the process or is buried under a million healthy
events.  The flight recorder is the black box for exactly those cases:

* **Always on, strictly bounded.**  A :class:`FlightRecorder` holds a
  ``collections.deque(maxlen=capacity)`` of small event tuples.  One
  event costs a clock read, a tuple build, and a deque append — cheap
  enough to leave enabled by default (``ZSim`` creates one unless told
  not to), and the ring can never grow: old events fall off the far
  end.  Event *sources* still follow the telemetry guard discipline —
  every call site checks ``flight is not None`` so a disabled run pays
  one attribute load.
* **Sources.**  The simulator records interval barriers; every
  execution backend records its dispatch seams (bound passes, weave
  intervals, process-pool forks, speculation commits/mismatches,
  heartbeat slack, worker deaths); the resilience supervisor records
  recoveries and ladder demotions; the fault-injection harness records
  each fault it fires; the checkpointer records saves.
* **Post-mortem capsules.**  On any typed fault, deadlock, signal stop,
  or unhandled crash, :meth:`FlightRecorder.capture` freezes the ring
  plus a stats snapshot, the supervisor's demotion path, and per-worker
  last-seen state into a JSON capsule written next to the checkpoints
  (``capsule_dir``; in-memory only when unset, so library use never
  sprays files).  ``repro report <capsule>`` renders the final seconds
  as a human-readable timeline.

Events are ``(t_monotonic, kind, fields)`` tuples.  ``time.monotonic``
on purpose: capsule timelines are *deltas* to the capture instant, and
an NTP step must never reorder the final seconds of a crash report.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque

from repro.obs.log import get_logger

_log = get_logger("obs.flight")

#: Capsule schema version (bump on incompatible changes).
CAPSULE_VERSION = 1

#: Default ring capacity (events).  At the recorder's per-interval event
#: rate this is minutes of history; the capsule carries the whole ring.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of structured run events plus capsule dumping."""

    def __init__(self, capacity=DEFAULT_CAPACITY, capsule_dir=None,
                 max_capsules=16):
        self.capacity = max(16, int(capacity))
        self._events = deque(maxlen=self.capacity)
        #: Directory for post-mortem capsules; None keeps captures
        #: in-memory only (``last_capsule``).
        self.capsule_dir = capsule_dir
        #: Hard cap on capsules written per recorder, so a fault storm
        #: cannot fill a disk with near-identical dumps.
        self.max_capsules = max(1, int(max_capsules))
        self.run_id = os.urandom(4).hex()
        #: Paths of capsules written, in order.
        self.capsules = []
        #: The most recent capsule dict (kept even when nothing is
        #: written to disk).
        self.last_capsule = None
        self.captures_skipped = 0
        #: Per-worker last-seen state: ``{worker: (t, kind)}`` — updated
        #: on every recorded event carrying a ``worker`` field, read by
        #: capsules and the live monitor.
        self.worker_state = {}

    # -- recording -----------------------------------------------------

    def record(self, kind, **fields):
        """Append one event to the ring.  This is the hot-path entry:
        one clock read, one dict, one (thread-safe) deque append."""
        t = time.monotonic()
        self._events.append((t, kind, fields))
        worker = fields.get("worker")
        if worker is not None:
            self.worker_state[worker] = (t, kind)

    def events(self):
        """The ring contents, oldest first, as plain dicts."""
        return [dict(fields, t=t, kind=kind)
                for t, kind, fields in list(self._events)]

    def __len__(self):
        return len(self._events)

    # -- capsules ------------------------------------------------------

    def capture(self, sim=None, kind="crash", message="", recovery=None,
                worker=None, interval=None, phase=None):
        """Freeze the ring into a post-mortem capsule.

        Returns the path written, or None when ``capsule_dir`` is unset
        (the capsule is still available as ``last_capsule``) or the
        per-run capsule cap was reached.  Never raises: a black box
        that crashes the crash path is worse than no black box.
        """
        now = time.monotonic()
        capsule = {
            "version": CAPSULE_VERSION,
            "run_id": self.run_id,
            "captured_monotonic": now,
            "reason": {
                "kind": kind,
                "message": str(message),
                "recovery": recovery,
                "worker": worker,
                "interval": interval,
                "phase": phase,
            },
            "events": self.events(),
            "workers": {
                str(w): {"t": t, "last_event": k,
                         "age_s": round(now - t, 6)}
                for w, (t, k) in sorted(self.worker_state.items())},
        }
        if sim is not None:
            capsule["snapshot"] = self._snapshot(sim)
        self.last_capsule = capsule
        self.record("capsule", reason=kind, interval=interval)
        return self._write(capsule)

    def _snapshot(self, sim):
        """Best-effort stats snapshot at capture time.  The simulator
        may be mid-fault, so every probe is fenced."""
        snap = {}
        try:
            snap["backend"] = sim.backend.name
        except Exception:
            pass
        try:
            snap["intervals"] = sim.bound.intervals
            snap["cycle"] = max((c.cycle for c in sim.cores), default=0)
            snap["instrs"] = sum(c.instrs for c in sim.cores)
        except Exception:
            pass
        try:
            host = sim.backend.host_stats()
            if host:
                snap["exec"] = dict(host)
        except Exception:
            pass
        try:
            if sim.supervisor is not None:
                summary = sim.supervisor.summary()
                snap["resilience"] = summary
                snap["demotion_path"] = summary.get("demotion_path", "")
        except Exception:
            pass
        try:
            sentinel = sim.integrity
            if sentinel is not None:
                snap["integrity"] = sentinel.summary()
        except Exception:
            pass
        return snap

    def _write(self, capsule):
        directory = self.capsule_dir
        if directory is None:
            return None
        if len(self.capsules) >= self.max_capsules:
            self.captures_skipped += 1
            return None
        path = os.path.join(
            str(directory),
            "postmortem-%s-%03d.json" % (self.run_id,
                                         len(self.capsules)))
        try:
            os.makedirs(str(directory), exist_ok=True)
            tmp = "%s.%d.tmp" % (path, os.getpid())
            with open(tmp, "w") as fh:
                json.dump(capsule, fh, indent=2, sort_keys=True,
                          default=str)
            os.replace(tmp, path)
        except OSError as exc:
            _log.warning("could not write post-mortem capsule %s: %s",
                         path, exc)
            return None
        self.capsules.append(path)
        _log.warning("post-mortem capsule written: %s (%s)", path,
                     capsule["reason"]["kind"])
        return path

    def __repr__(self):
        return ("FlightRecorder(%d/%d events, %d capsules)"
                % (len(self._events), self.capacity, len(self.capsules)))


# ---------------------------------------------------------------------
# Capsule rendering (``repro report``)
# ---------------------------------------------------------------------


def load_capsule(path):
    """Read a capsule JSON file (raises ValueError on schema skew)."""
    with open(path) as fh:
        capsule = json.load(fh)
    version = capsule.get("version")
    if version != CAPSULE_VERSION:
        raise ValueError("%s is capsule schema v%s; this build reads v%d"
                         % (path, version, CAPSULE_VERSION))
    return capsule


def _fields_text(event):
    skip = ("t", "kind")
    parts = []
    for key in sorted(event):
        if key in skip:
            continue
        value = event[key]
        if isinstance(value, float):
            value = "%.6g" % value
        parts.append("%s=%s" % (key, value))
    return " ".join(parts)


def render_report(capsule, last_seconds=None, max_events=None):
    """Human-readable post-mortem: the reason, the snapshot, and a
    timeline of the final seconds (offsets relative to capture)."""
    reason = capsule.get("reason", {})
    t_cap = capsule.get("captured_monotonic", 0.0)
    lines = ["post-mortem capsule (run %s)"
             % capsule.get("run_id", "?")]
    head = reason.get("kind", "?")
    where = []
    if reason.get("worker") is not None:
        where.append("worker %s" % reason["worker"])
    if reason.get("interval") is not None:
        where.append("interval %s" % reason["interval"])
    if reason.get("phase"):
        where.append("%s phase" % reason["phase"])
    lines.append("  reason   : %s%s"
                 % (head, " (%s)" % ", ".join(where) if where else ""))
    if reason.get("message"):
        lines.append("  message  : %s" % reason["message"])
    if reason.get("recovery"):
        lines.append("  recovery : %s" % reason["recovery"])
    snap = capsule.get("snapshot") or {}
    if snap:
        lines.append(
            "  state    : backend=%s interval=%s cycle=%s instrs=%s"
            % (snap.get("backend", "?"), snap.get("intervals", "?"),
               snap.get("cycle", "?"), snap.get("instrs", "?")))
        resilience = snap.get("resilience") or {}
        if resilience.get("recoveries"):
            lines.append("  recovered: %s fault(s), %s demotion(s)%s"
                         % (resilience.get("recoveries"),
                            resilience.get("demotions", 0),
                            " — ladder %s" % snap["demotion_path"]
                            if snap.get("demotion_path") else ""))
        integrity = snap.get("integrity") or {}
        if integrity:
            lines.append("  integrity: chain %08x, %s fingerprint(s), "
                         "%s audit(s), %s violation(s)"
                         % (int(integrity.get("chain", 0)),
                            integrity.get("fingerprints", 0),
                            integrity.get("audits", 0),
                            integrity.get("violations", 0)))
        exec_stats = snap.get("exec") or {}
        if exec_stats:
            interesting = {k: v for k, v in sorted(exec_stats.items())
                           if v}
            lines.append("  exec     : %s"
                         % " ".join("%s=%s" % kv
                                    for kv in interesting.items()))
    events = capsule.get("events", [])
    if last_seconds is not None:
        events = [e for e in events
                  if t_cap - e.get("t", t_cap) <= last_seconds]
    if max_events is not None:
        events = events[-max_events:]
    if events:
        span = t_cap - events[0]["t"]
        lines.append("timeline (last %.3f s, %d events):"
                     % (max(span, 0.0), len(events)))
        for event in events:
            lines.append("  %+9.3fs %-16s %s"
                         % (event["t"] - t_cap, event.get("kind", "?"),
                            _fields_text(event)))
    else:
        lines.append("timeline: (no events recorded)")
    workers = capsule.get("workers") or {}
    if workers:
        lines.append("workers:")
        for wid in sorted(workers, key=lambda x: (len(x), x)):
            state = workers[wid]
            lines.append("  worker %-4s last event %-16s %.3fs before "
                         "capture" % (wid, state.get("last_event", "?"),
                                      state.get("age_s", 0.0)))
    return "\n".join(lines)
