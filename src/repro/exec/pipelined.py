"""The pipelined backend: bound and weave as two pipeline stages.

The paper's stated future work is to pipeline the bound and weave
phases: interval *k*'s weave overlaps interval *k+1*'s bound, so
steady-state wall time per interval is ``max(bound, weave)`` instead of
their sum (``HostModel.pipelined_*`` models exactly that).

This backend builds the pipeline's machinery — the bound phase runs on
the driver thread while a dedicated weave-stage thread consumes interval
jobs from a bounded queue — but keeps a **feedback barrier**: interval
*k*'s weave delays feed interval *k+1*'s core clocks (and the next
interval limit), so the driver waits for the stage before starting the
next bound phase.  That barrier is what preserves the engine's
serial-equivalence guarantee; relaxing it (applying weave feedback one
interval late) is the lever a real pipelined build would pull, and it
would change simulated results — which is why it is not the default and
why the equivalence suite would catch anyone flipping it silently.

The practical consequence on stock CPython: the measured speedup stays
~1x while ``HostModel.pipelined_speedup`` reports what the overlap
would buy.  ``benchmarks/bench_backend_scaling.py`` records exactly that
measured-vs-modeled gap.

Failure containment mirrors the parallel backend: stage errors are
re-raised on the driver as a typed :class:`~repro.errors.WorkerFailure`
chained to the original (typed :class:`~repro.errors.ExecutionFault`
instances pass through untouched), the feedback wait honors
``watchdog_budget`` so a stalled or killed stage thread raises
:class:`~repro.errors.WatchdogTimeout` instead of wedging the driver,
and ``recover()`` abandons the stage via the pool epoch — a stale job
finishing late is dropped rather than applied to rewound state.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.errors import (ExecutionFault, WatchdogTimeout, WorkerFailure,
                          format_cause)
from repro.exec.backend import ExecutionBackend, WorkerKilled
from repro.obs.tracer import TID_WORKER

#: Track index (within the worker lane block) of the weave stage thread.
WEAVE_STAGE_TRACK = 99


class PipelinedBackend(ExecutionBackend):
    """Two-stage bound/weave pipeline with a bounded handoff queue."""

    name = "pipelined"

    #: Depth of the stage queue: how many weave intervals may be queued
    #: behind the one executing.  Depth 1 is the paper's two-stage
    #: pipeline.
    QUEUE_DEPTH = 1

    #: Bounded join for the stage thread on shutdown; a stalled stage
    #: is abandoned (daemon) past this rather than hanging the driver.
    SHUTDOWN_JOIN_S = 5.0

    def __init__(self, host_threads=None):
        self.host_threads = host_threads
        self._sim = None
        self._jobs = None
        self._thread = None
        self._epoch = 0
        #: Microseconds the weave stage spent waiting for work.
        self._stage_idle_us = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self, sim):
        self._sim = sim

    def shutdown(self):
        thread, self._thread = self._thread, None
        self._epoch += 1
        if thread is not None:
            try:
                self._jobs.put(None, timeout=0.5)
            except queue.Full:
                pass  # stage dead or wedged with a full queue
            thread.join(timeout=self.SHUTDOWN_JOIN_S)
            self._jobs = None

    def recover(self):
        """Abandon the stage thread after an execution fault.  It may be
        stalled or dead mid-job, so no join: the epoch bump makes any
        late completion stale, and the next interval builds a fresh
        stage lazily."""
        self._epoch += 1
        thread, self._thread = self._thread, None
        if thread is not None and self._jobs is not None:
            try:
                self._jobs.put_nowait(None)
            except queue.Full:
                pass
        self._jobs = None

    def _ensure_stage(self):
        if self._thread is None:
            self._jobs = queue.Queue(maxsize=self.QUEUE_DEPTH)
            self._thread = threading.Thread(
                target=self._stage_loop, args=(self._jobs,),
                name="pipelined-weave-stage", daemon=True)
            telem = getattr(self._sim, "_telem", None)
            if telem is not None and telem.tracer is not None:
                telem.tracer.name_track(TID_WORKER + WEAVE_STAGE_TRACK,
                                        "weave stage")
            self._thread.start()

    def _stage_loop(self, jobs):
        # ``jobs`` is bound at thread creation: after recover() abandons
        # this thread and nulls self._jobs, a stale loop iteration must
        # still have a queue to block on (it drains the None sentinel
        # recover() left there and exits).
        while True:
            t0 = time.perf_counter()
            job = jobs.get()
            self._stage_idle_us += (time.perf_counter() - t0) * 1e6
            if job is None:
                return
            fn, slot, epoch = job
            start = time.perf_counter()
            killed = False
            try:
                if epoch == self._epoch:
                    slot["delays"] = fn(0)
                else:
                    slot["stale"] = True  # dropped: dispatched pre-recover
            except WorkerKilled:
                killed = True
            except BaseException as exc:
                slot["error"] = exc
            if killed:
                return  # simulated crash: exit without signaling done
            slot["end"] = time.perf_counter()
            slot["start"] = start
            slot["done"].set()

    # -- phases --------------------------------------------------------

    def run_weave(self, weave, traces):
        self._ensure_stage()
        plan = self.fault_plan
        # run_interval increments the counter, so this interval is +1.
        interval = weave.stats.intervals + 1

        def work(worker_index):
            if plan is None:
                return weave.run_interval(traces)
            return weave.run_interval(
                traces,
                executor=lambda events: self._corrupt_execute(weave,
                                                              events))

        fn = work
        if plan is not None:
            fn = plan.wrap(fn, {"phase": "weave-stage",
                                "interval": interval, "worker": 0},
                           self, self._epoch)
        flight = self._flight()
        if flight is not None:
            flight.record("dispatch", backend=self.name,
                          phase="weave-stage", interval=interval,
                          traces=len(traces), epoch=self._epoch)
        slot = {"done": threading.Event()}
        self._jobs.put((fn, slot, self._epoch))
        # Feedback barrier (see module docs): interval k's delays feed
        # interval k+1's bound phase, so the driver must wait here.
        # The watchdog budget bounds that wait — a stalled or killed
        # stage surfaces as a typed fault instead of wedging the run.
        if not slot["done"].wait(timeout=self.watchdog_budget):
            if flight is not None:
                flight.record("watchdog_timeout", backend=self.name,
                              phase="weave-stage", interval=interval,
                              worker=0, budget_s=self.watchdog_budget)
            raise WatchdogTimeout(
                "weave stage made no progress for %.2fs (interval %d)"
                % (self.watchdog_budget, interval),
                budget_s=self.watchdog_budget, completed=0, pending=1,
                phase="weave-stage", interval=interval)
        telem = weave._telem
        if telem is not None and telem.tracer is not None:
            telem.tracer.complete_raw(
                "weave interval", "exec", slot["start"], slot["end"],
                TID_WORKER + WEAVE_STAGE_TRACK)
        error = slot.get("error")
        if error is not None:
            if flight is not None:
                flight.record("worker_failure", backend=self.name,
                              phase="weave-stage", interval=interval,
                              worker=0, error=type(error).__name__)
            if isinstance(error, ExecutionFault):
                raise error  # already typed (e.g. HorizonViolation)
            raise WorkerFailure(
                "weave stage failed (interval %d): %s" % (interval,
                                                          error),
                traceback_text=format_cause(error), phase="weave-stage",
                interval=interval, worker=0) from error
        return slot["delays"]

    def _corrupt_execute(self, weave, events):
        """Reference executor with the fault plan's corruption hook
        applied between seeding and draining (mirrors the parallel
        backend's injection point)."""
        weave.seed_queues(events)
        self.fault_plan.corrupt(weave, weave.stats.intervals)
        weave._drain_earliest_first()

    # -- observability -------------------------------------------------

    def sample_idle(self, metrics):
        if self._thread is not None:
            idle, self._stage_idle_us = self._stage_idle_us, 0.0
            metrics.histogram("exec.worker_idle_us").record(int(idle))
