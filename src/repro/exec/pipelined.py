"""The pipelined backend: bound and weave as two pipeline stages.

The paper's stated future work is to pipeline the bound and weave
phases: interval *k*'s weave overlaps interval *k+1*'s bound, so
steady-state wall time per interval is ``max(bound, weave)`` instead of
their sum (``HostModel.pipelined_*`` models exactly that).

This backend builds the pipeline's machinery — the bound phase runs on
the driver thread while a dedicated weave-stage thread consumes interval
jobs from a bounded queue — but keeps a **feedback barrier**: interval
*k*'s weave delays feed interval *k+1*'s core clocks (and the next
interval limit), so the driver waits for the stage before starting the
next bound phase.  That barrier is what preserves the engine's
serial-equivalence guarantee; relaxing it (applying weave feedback one
interval late) is the lever a real pipelined build would pull, and it
would change simulated results — which is why it is not the default and
why the equivalence suite would catch anyone flipping it silently.

The practical consequence on stock CPython: the measured speedup stays
~1x while ``HostModel.pipelined_speedup`` reports what the overlap
would buy.  ``benchmarks/bench_backend_scaling.py`` records exactly that
measured-vs-modeled gap.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.exec.backend import ExecutionBackend
from repro.obs.tracer import TID_WORKER

#: Track index (within the worker lane block) of the weave stage thread.
WEAVE_STAGE_TRACK = 99


class PipelinedBackend(ExecutionBackend):
    """Two-stage bound/weave pipeline with a bounded handoff queue."""

    name = "pipelined"

    #: Depth of the stage queue: how many weave intervals may be queued
    #: behind the one executing.  Depth 1 is the paper's two-stage
    #: pipeline.
    QUEUE_DEPTH = 1

    def __init__(self, host_threads=None):
        self.host_threads = host_threads
        self._sim = None
        self._jobs = None
        self._thread = None
        #: Microseconds the weave stage spent waiting for work.
        self._stage_idle_us = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self, sim):
        self._sim = sim

    def shutdown(self):
        thread, self._thread = self._thread, None
        if thread is not None:
            self._jobs.put(None)
            thread.join()
            self._jobs = None

    def _ensure_stage(self):
        if self._thread is None:
            self._jobs = queue.Queue(maxsize=self.QUEUE_DEPTH)
            self._thread = threading.Thread(
                target=self._stage_loop, name="pipelined-weave-stage",
                daemon=True)
            telem = getattr(self._sim, "_telem", None)
            if telem is not None and telem.tracer is not None:
                telem.tracer.name_track(TID_WORKER + WEAVE_STAGE_TRACK,
                                        "weave stage")
            self._thread.start()

    def _stage_loop(self):
        while True:
            t0 = time.perf_counter()
            job = self._jobs.get()
            self._stage_idle_us += (time.perf_counter() - t0) * 1e6
            if job is None:
                return
            weave, traces, slot = job
            start = time.perf_counter()
            try:
                slot["delays"] = weave.run_interval(traces)
            except BaseException as exc:
                slot["error"] = exc
            finally:
                slot["end"] = time.perf_counter()
                slot["start"] = start
                slot["done"].set()

    # -- phases --------------------------------------------------------

    def run_weave(self, weave, traces):
        self._ensure_stage()
        slot = {"done": threading.Event()}
        self._jobs.put((weave, traces, slot))
        # Feedback barrier (see module docs): interval k's delays feed
        # interval k+1's bound phase, so the driver must wait here.
        slot["done"].wait()
        telem = weave._telem
        if telem is not None and telem.tracer is not None:
            telem.tracer.complete_raw(
                "weave interval", "exec", slot["start"], slot["end"],
                TID_WORKER + WEAVE_STAGE_TRACK)
        error = slot.get("error")
        if error is not None:
            raise error
        return slot["delays"]

    # -- observability -------------------------------------------------

    def sample_idle(self, metrics):
        if self._thread is not None:
            idle, self._stage_idle_us = self._stage_idle_us, 0.0
            metrics.histogram("exec.worker_idle_us").record(int(idle))
