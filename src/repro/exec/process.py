"""The process backend: crash-tolerant speculation on OS worker processes.

The thread backends are GIL-bound and share one address space: a worker
that segfaults, gets OOM-killed, or is SIGKILLed by the host takes the
whole run with it.  This backend puts bound-phase work in *real
processes*, forked at the interval barrier, so a dying worker can cost
at most wasted speculation — never corrupted simulator state.

How it stays exact (the backend contract: wall time may change,
simulated results may not):

* **Fork is the snapshot.**  At each bound pass the driver forks the
  worker pool; copy-on-write gives every worker a bit-exact replica of
  the full simulator — including the unpicklable instruction-stream
  generators — with no serialization step.  Forking at the barrier is
  also the respawn mechanism: a worker that died simply is not forked
  *from*; the next pass starts from the authoritative driver state.
* **Workers speculate, the driver commits.**  A core's interval run is
  a deterministic function of (core-private state, stream records,
  access results).  Each worker runs its shard's cores against the
  forked replica, recording every ``mem.access`` call — arguments plus
  a fingerprint of the result — and ships back the end-of-run core
  state over a picklable pipe protocol.  The driver then *validates* in
  strict wake order: it replays the recorded accesses against the
  authoritative hierarchy (producing the exact serial side effects) and
  compares fingerprints.  A full match proves the speculated inputs
  were what a serial run would have seen, so the shipped core state is
  committed and the stream advanced.  Any mismatch (cross-core sharing
  changed an access result) falls back to an inline re-run that serves
  the already-applied replay prefix, so no access touches the hierarchy
  twice.  Cores whose speculation died with their worker — or never ran
  (syscalls need the shared scheduler) — run inline, which *is* the
  serial semantics.  Every path lands on the same stats tree.
* **Supervision.**  A heartbeat/progress loop bounds how long the
  driver waits on the pipes: a SIGKILLed worker surfaces as EOF, a
  SIGSTOPped one exhausts the heartbeat budget and is killed by the
  driver.  Either way its cores run inline and the pool is respawned —
  epoch-fenced, so a stale message from a previous generation is
  dropped — at the next pass.  Systemic failure (fork errors or the
  whole pool dying repeatedly) raises a typed
  :class:`~repro.errors.ProcessPoolError`, which the resilience
  supervisor's degradation ladder turns into a demotion:
  process -> parallel (threads) -> serial.

The weave phase runs inline on the driver: weave events hold live
component references (not picklable without an event IR) and the
crossing sync points would force a driver round-trip per horizon batch,
which measures slower than just draining the queues in-process.  The
bound phase is where the core-model time is, and it dominates.

Counters land in ``stats()["host"]["exec"]`` (forks, deaths, heartbeat
kills, respawns, commits vs rejected speculations, inline fallbacks)
and per-worker tracer lanes show each worker process's busy span.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
from multiprocessing.connection import wait as _conn_wait

from repro.cpu.base import RunOutcome
from repro.errors import ProcessPoolError
from repro.exec.backend import ExecutionBackend
from repro.obs.log import get_logger
from repro.obs.tracer import TID_WORKER

_log = get_logger("exec.process")

#: Fewer runnable cores than this is not worth a fork.
MIN_SPECULATE_CORES = 2

#: Consecutive systemic pool failures (fork errors or the whole pool
#: dying) tolerated before a pass raises ProcessPoolError so the
#: supervisor's degradation ladder can demote the backend.
MAX_POOL_FAILURES = 2

#: Bounded-grace shutdown: seconds to wait for a worker to exit before
#: it is killed outright.
SHUTDOWN_GRACE_S = 2.0

#: Tracer-lane stride between respawn generations of the same worker
#: slot.  A respawned worker is a different OS process; giving it a
#: fresh lane (``TID_WORKER + gen * stride + slot``) keeps its spans
#: from interleaving into its dead predecessor's lane in Chrome traces.
LANE_STRIDE = 128

#: Recovery action recorded in worker-death capsules (what the driver
#: does, so ``repro report`` can say it).
_DEATH_RECOVERY = ("victim cores re-run inline on the driver; "
                   "pool respawned at the next barrier")


def _fingerprint(result):
    """Order-sensitive digest of everything a core (or the weave trace)
    reads from an :class:`~repro.memory.access.AccessResult`.  Computed
    identically in the forked worker and the driver (same interpreter
    image, same hash seed), so equal fingerprints mean the speculated
    access saw exactly the result the authoritative replay produced."""
    return hash((
        result.latency,
        result.line,
        result.hit_level,
        result.missed_levels,
        result.invalidations,
        result.shared_evictions,
        tuple((comp.name, off, kind) for comp, off, kind in result.steps),
        tuple((comp.name, off, kind) for comp, off, kind in result.wbacks),
    ))


class _RecordingMem:
    """Worker-side wrapper over the (forked) memory system: passes every
    access through and records (args, result, fingerprint)."""

    def __init__(self, mem):
        self._mem = mem
        self.addrs = []
        self.writes = []
        self.cycles = []
        self.ifetches = []
        self.fps = []
        self.results = []

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        result = self._mem.access(core_id, addr, write, cycle, ifetch)
        self.addrs.append(addr)
        self.writes.append(bool(write))
        self.cycles.append(cycle)
        self.ifetches.append(bool(ifetch))
        self.fps.append(_fingerprint(result))
        self.results.append(result)
        return result

    def __getattr__(self, name):
        if name.startswith("__") or "_mem" not in self.__dict__:
            raise AttributeError(
                "%s has no attribute %r" % (type(self).__name__, name))
        return getattr(self._mem, name)


class _PrefixReplayMem:
    """Driver-side wrapper serving the validated replay prefix to an
    inline re-run after a speculation mismatch.  The first ``len(results)``
    accesses were already applied to the authoritative hierarchy during
    validation; serving them from the list keeps the re-run's inputs
    exact without mutating the hierarchy twice.  Past the prefix the
    wrapper goes live."""

    def __init__(self, mem, args, results):
        self._mem = mem
        self._args = args          # [(addr, write, cycle, ifetch)]
        self._results = results
        self._next = 0

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        i = self._next
        if i < len(self._results):
            if self._args[i] != (addr, bool(write), cycle, bool(ifetch)):
                # The determinism claim broke: the re-run diverged from
                # the recorded prefix while its inputs matched.  The
                # hierarchy already absorbed the prefix, so this pass
                # cannot be patched up — surface a typed fault and let
                # the supervisor rewind the interval.
                raise ProcessPoolError(
                    "speculation replay diverged at access %d of core %d"
                    % (i, core_id), phase="bound", core=core_id)
            self._next = i + 1
            return self._results[i]
        return self._mem.access(core_id, addr, write, cycle, ifetch)

    def __getattr__(self, name):
        if name.startswith("__") or "_mem" not in self.__dict__:
            raise AttributeError(
                "%s has no attribute %r" % (type(self).__name__, name))
        return getattr(self._mem, name)


#: Core attributes that stay the driver's own on commit: the memory
#: system and stream are live driver objects, and the trace is rebuilt
#: from driver-replayed results (worker results reference forked weave
#: components and must never cross the pipe).
_CORE_DETACHED = ("mem", "stream", "trace")


class ProcessBackend(ExecutionBackend):
    """Bound-phase speculation on forked OS worker processes (see
    module docs)."""

    name = "process"

    def __init__(self, host_threads=None, workers=None,
                 heartbeat_budget_s=None):
        # ``host_threads`` accepted for make_backend() symmetry; it acts
        # as the pool-size default just like the parallel backend.
        self.pool_size = workers if workers is not None else host_threads
        self.heartbeat_budget_s = heartbeat_budget_s
        self._sim = None
        self._epoch = 0
        self._procs = []
        self._fork_ok = hasattr(os, "fork")
        self._warned_no_fork = False
        self._pool_failures_in_a_row = 0
        self._pending_respawn = 0
        #: Per-slot respawn generation (bumped when the slot's worker
        #: dies) and the set of already-named tracer lanes.
        self._lane_gen = {}
        self._named_lanes = set()
        self._idle_us = 0.0
        self.counters = {
            "workers_forked": 0,
            "worker_deaths": 0,
            "heartbeat_kills": 0,
            "respawns": 0,
            "pool_failures": 0,
            "spec_commits": 0,
            "spec_rejects": 0,
            "spec_skips": 0,
            "inline_runs": 0,
        }

    # -- lifecycle -----------------------------------------------------

    def start(self, sim):
        self._sim = sim
        bw = sim.config.boundweave
        if self.pool_size is None:
            self.pool_size = getattr(bw, "process_workers", 0) or 0
        if self.heartbeat_budget_s is None:
            self.heartbeat_budget_s = getattr(bw, "heartbeat_budget_s",
                                              10.0)

    def shutdown(self):
        """Bounded-grace shutdown of any live workers.  Workers are
        per-pass, so between passes this is a no-op; mid-fault it kills
        the stragglers instead of waiting on them."""
        self._epoch += 1
        procs, self._procs = self._procs, []
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=SHUTDOWN_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    def recover(self):
        self.shutdown()

    def host_stats(self):
        stats = dict(self.counters)
        stats["pool_size"] = self._resolved_pool_size()
        return stats

    def _resolved_pool_size(self):
        if self.pool_size:
            return int(self.pool_size)
        return max(1, (os.cpu_count() or 2) - 1)

    # -- bound phase ---------------------------------------------------

    def run_bound_pass(self, bound, cores, limit_cycle, timings):
        eligible = [core for core in cores if core.has_thread]
        workers = min(self._resolved_pool_size(), len(eligible))
        if (not self._fork_ok or workers < 1
                or len(eligible) < MIN_SPECULATE_CORES):
            if not self._fork_ok and not self._warned_no_fork:
                self._warned_no_fork = True
                _log.warning("os.fork is unavailable on this host: the "
                             "process backend runs inline (serial "
                             "semantics)")
            self.counters["inline_runs"] += len(cores)
            return bound.run_pass(cores, limit_cycle, timings)
        spec = self._speculate(bound, eligible, limit_cycle, workers)
        return self._commit(bound, cores, limit_cycle, timings, spec)

    # -- speculation (fork + collect) ----------------------------------

    def _speculate(self, bound, eligible, limit_cycle, workers):
        """Fork ``workers`` processes over ``eligible`` (round-robin by
        wake position), collect speculation payloads under the
        heartbeat budget, and reap the pool.  Returns
        ``{core_id: payload}`` — possibly empty; every missing core
        simply runs inline."""
        interval = bound.intervals
        epoch = self._epoch
        flight = self._flight()
        shards = [eligible[w::workers] for w in range(workers)]
        ctx = multiprocessing.get_context("fork")
        if self._pending_respawn:
            self.counters["respawns"] += self._pending_respawn
            if flight is not None:
                flight.record("respawn", backend=self.name,
                              interval=interval,
                              workers=self._pending_respawn)
            self._pending_respawn = 0
        procs, conns = [], {}
        hold = bool(self.fault_plan
                    and self.fault_plan.process_faults(interval))
        try:
            for w, shard in enumerate(shards):
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=self._worker_main,
                    args=(child_conn, epoch, w,
                          [core.core_id for core in shard], limit_cycle,
                          hold),
                    name="repro-exec-worker%d" % w, daemon=True)
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns[w] = parent_conn
                self.counters["workers_forked"] += 1
        except OSError as exc:
            for proc in procs:
                if proc.is_alive():
                    proc.kill()
            for proc in procs:
                proc.join(timeout=1.0)
            self._note_pool_failure("fork failed: %s" % exc, interval)
            return {}
        self._procs = procs
        if flight is not None:
            flight.record("fork", backend=self.name, interval=interval,
                          workers=workers, epoch=epoch,
                          cores=len(eligible))
        self._name_worker_tracks(workers)
        self._apply_process_faults(interval, procs)
        spec, dead = self._collect(conns, procs, epoch, interval)
        self._reap(procs)
        self._procs = []
        deaths = len(dead)
        self.counters["worker_deaths"] += deaths
        self._pending_respawn += deaths
        if deaths and flight is not None:
            # A worker death is exactly the event the flight recorder
            # exists for: freeze the ring into a capsule naming the
            # victim(s), the interval, and the recovery action.
            flight.capture(
                self._sim, kind="worker_death",
                message="worker%s %s died during interval %d"
                % ("s" if deaths > 1 else "",
                   ",".join(str(w) for w in sorted(dead)), interval),
                recovery=_DEATH_RECOVERY, worker=sorted(dead)[0],
                interval=interval, phase="bound")
        if deaths >= len(procs) and not spec:
            self._note_pool_failure(
                "every worker died during interval %d" % interval,
                interval)
        else:
            self._pool_failures_in_a_row = 0
        return spec

    def _collect(self, conns, procs, epoch, interval):
        """Drain worker pipes under the heartbeat budget.  Any message
        is progress; a silent stretch longer than the budget means the
        stragglers are stopped or wedged — they are killed and their
        cores fall back to inline execution."""
        budget = max(0.05, float(self.heartbeat_budget_s or 10.0))
        pending = dict(conns)
        spec = {}
        dead = []
        spans = {}
        flight = self._flight()
        deadline = time.monotonic() + budget
        pass_start = time.monotonic()
        while pending:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                for w in list(pending):
                    proc = procs[w]
                    if proc.is_alive():
                        proc.kill()
                        self.counters["heartbeat_kills"] += 1
                        if flight is not None:
                            flight.record("heartbeat_kill",
                                          backend=self.name, worker=w,
                                          interval=interval,
                                          budget_s=budget)
                        _log.warning(
                            "worker %d made no progress for %.2fs "
                            "(interval %d): killed; its cores run "
                            "inline", w, budget, interval)
                    pending.pop(w).close()
                    dead.append(w)
                break
            ready = _conn_wait(list(pending.values()), timeout)
            progressed = False
            for conn in ready:
                w = next(k for k, v in pending.items() if v is conn)
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # SIGKILL / crash: the pipe closed mid-shard.
                    pending.pop(w).close()
                    dead.append(w)
                    if flight is not None:
                        flight.record("worker_death",
                                      backend=self.name, worker=w,
                                      interval=interval)
                    _log.warning("worker %d died during interval %d; "
                                 "its cores run inline", w, interval)
                    continue
                progressed = True
                if msg[1] != epoch:
                    continue  # stale generation (epoch fence)
                tag = msg[0]
                if tag == "core":
                    spec[msg[3]] = msg[4]
                elif tag == "skip":
                    self.counters["spec_skips"] += 1
                elif tag == "err":
                    self.counters["spec_skips"] += 1
                    _log.warning("worker %d speculation error on core "
                                 "%s: %s", w, msg[3], msg[4])
                elif tag == "done":
                    busy_s, t0, t1 = msg[3], msg[4], msg[5]
                    spans[w] = (t0, t1, busy_s)
                    if flight is not None:
                        # Heartbeat slack: how close this worker came to
                        # being declared dead (low slack = load-tune the
                        # budget before it kills healthy workers).
                        flight.record(
                            "hb_slack", backend=self.name, worker=w,
                            interval=interval, budget_s=budget,
                            slack_s=round(deadline - time.monotonic(),
                                          6))
                    pending.pop(w).close()
            if progressed:
                deadline = time.monotonic() + budget
        window = time.monotonic() - pass_start
        self._note_spans(spans, interval, window)
        # Bump the dead slots' lane generation *after* their final spans
        # landed: the respawned workers forked at the next barrier get
        # fresh tracer lanes instead of interleaving into these.
        for w in dead:
            self._lane_gen[w] = self._lane_gen.get(w, 0) + 1
        return spec, dead

    def _reap(self, procs):
        for proc in procs:
            proc.join(timeout=SHUTDOWN_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)

    def _note_pool_failure(self, reason, interval):
        self.counters["pool_failures"] += 1
        self._pool_failures_in_a_row += 1
        flight = self._flight()
        if flight is not None:
            flight.record("pool_failure", backend=self.name,
                          interval=interval, reason=reason,
                          consecutive=self._pool_failures_in_a_row)
        _log.warning("process pool failure (%d consecutive): %s",
                     self._pool_failures_in_a_row, reason)
        if self._pool_failures_in_a_row >= MAX_POOL_FAILURES:
            # The driver state is untouched (speculation never mutates
            # it), but the pool is systemically broken: surface a typed
            # fault so the supervisor's ladder can demote the backend.
            raise ProcessPoolError(
                "process pool failed %d times in a row: %s"
                % (self._pool_failures_in_a_row, reason),
                phase="bound", interval=interval)

    def _apply_process_faults(self, interval, procs):
        """Real-process fault injection: SIGKILL/SIGSTOP a live worker
        (see repro.resilience.faults).

        The delivery race matters on a loaded (or single-CPU) host: a
        fast worker can finish its whole shard before the parent gets
        to run again, and a signal to an exited worker tests nothing.
        So on fault-injection passes the workers freeze *themselves*
        (self-SIGSTOP before any work; see ``_worker_main``'s ``hold``);
        here the driver waits for the pool to be stopped — a stopped
        process is guaranteed alive — delivers the fault signals, and
        resumes every worker that is not itself a SIGSTOP victim with
        SIGCONT."""
        plan = self.fault_plan
        if plan is None:
            return
        faults = plan.process_faults(interval)
        if not faults:
            return
        self._await_stopped(procs)
        keep_stopped = set()
        for fault in faults:
            victim = fault.worker
            if victim is None or victim >= len(procs):
                victim = fault.pick_worker(len(procs), plan.rng)
            proc = procs[victim]
            if proc.pid is None or not proc.is_alive():
                continue
            os.kill(proc.pid, fault.signum)
            fault.fired = True
            flight = self._flight()
            if flight is not None:
                flight.record("fault_injected", backend=self.name,
                              fault=fault.kind, worker=victim,
                              interval=interval, pid=proc.pid)
            if fault.signum == signal.SIGSTOP:
                keep_stopped.add(victim)
            _log.warning("injected %s: worker %d (pid %d) at interval "
                         "%d", fault.kind, victim, proc.pid, interval)
        for w, proc in enumerate(procs):
            if w not in keep_stopped:
                self._signal_quietly(proc, signal.SIGCONT)

    @staticmethod
    def _signal_quietly(proc, signum):
        if proc.pid is None:
            return
        try:
            os.kill(proc.pid, signum)
        except (ProcessLookupError, OSError):
            pass

    @staticmethod
    def _is_stopped(pid):
        """Whether ``pid`` is in the stopped (T) state, via /proc.  On
        hosts without /proc the wait below just times out — degraded
        fault *injection*, never a wrong result."""
        try:
            with open("/proc/%d/stat" % pid, "rb") as fh:
                data = fh.read()
            return data.rsplit(b")", 1)[1].split()[0] in (b"T", b"t")
        except (OSError, IndexError):
            return False

    def _await_stopped(self, procs, timeout=5.0):
        """Wait for every live worker to reach its self-SIGSTOP.  A
        worker that times out is simply resumed late by the SIGCONT
        sweep (or heartbeat-killed); correctness never depends on the
        freeze."""
        deadline = time.monotonic() + timeout
        for proc in procs:
            while time.monotonic() < deadline:
                if (proc.pid is None or not proc.is_alive()
                        or self._is_stopped(proc.pid)):
                    break
                time.sleep(0.001)

    # -- worker side ---------------------------------------------------

    def _worker_main(self, conn, epoch, worker_index, core_ids, limit,
                     hold=False):
        """Runs in the forked child.  Speculates each shard core against
        the forked replica and streams payloads back; exits via
        ``os._exit`` so no driver-side atexit/flush machinery runs in
        the child."""
        status = 0
        try:
            if hold:
                # Fault-injection passes: stop before doing any work so
                # the driver's signal is guaranteed to land on a live
                # worker (the driver SIGCONTs non-victims).  Self-stop
                # is race-free where a parent-sent SIGSTOP is not: a
                # fast worker could otherwise finish and exit first.
                os.kill(os.getpid(), signal.SIGSTOP)
            sim = self._sim
            sim.hierarchy.profiler = None
            if sim._telem is not None:
                sim.attach_telemetry(None)
            t0 = time.perf_counter()
            busy = 0.0
            for core_id in core_ids:
                conn.send(("hb", epoch, worker_index, core_id))
                core = sim.cores[core_id]
                start = time.perf_counter()
                try:
                    payload = self._speculate_core(core, limit)
                except Exception as exc:  # keep the shard going
                    conn.send(("err", epoch, worker_index, core_id,
                               "%s: %s" % (type(exc).__name__, exc)))
                    continue
                spent = time.perf_counter() - start
                busy += spent
                if payload is None:
                    conn.send(("skip", epoch, worker_index, core_id))
                else:
                    conn.send(("core", epoch, worker_index, core_id,
                               payload + (spent,)))
            conn.send(("done", epoch, worker_index, busy, t0,
                       time.perf_counter()))
        except Exception:
            status = 1
        finally:
            try:
                conn.close()
            except OSError:
                pass
            os._exit(status)

    @staticmethod
    def _speculate_core(core, limit):
        """One core's speculative interval run against the forked
        replica.  Eligible only when the run reaches the interval limit
        without scheduler interaction (no syscall/done/blocked): such a
        run is a pure function of core state, stream records, and
        access results — exactly what the driver can validate."""
        recorder = _RecordingMem(core.mem)
        stream = core.stream
        bbls_before = stream.bbls_executed
        core.mem = recorder
        try:
            outcome = core.run_until(limit)
        finally:
            core.mem = recorder._mem
        if outcome != RunOutcome.LIMIT:
            return None
        state = {key: value for key, value in core.__dict__.items()
                 if key not in _CORE_DETACHED}
        try:
            state = pickle.loads(pickle.dumps(
                state, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return None  # unpicklable core state: run inline
        index_of = {id(result): i
                    for i, result in enumerate(recorder.results)}
        trace_cycles = []
        trace_idx = []
        for cycle, result in core.trace:
            idx = index_of.get(id(result))
            if idx is None:
                return None  # trace entry not from this run: bail out
            trace_cycles.append(cycle)
            trace_idx.append(idx)
        return (state, stream.bbls_executed - bbls_before,
                recorder.addrs, recorder.writes, recorder.cycles,
                recorder.ifetches, recorder.fps, trace_cycles, trace_idx)

    # -- commit (driver side) ------------------------------------------

    def _commit(self, bound, cores, limit_cycle, timings, spec):
        """Validate-and-commit in strict wake order.  Every core takes
        exactly one of three paths — commit, prefix re-run, or inline —
        and all three produce the serial side effects."""
        telem = bound._telem
        flight = self._flight()
        before = (self.counters["spec_commits"],
                  self.counters["spec_rejects"],
                  self.counters["inline_runs"])
        outcomes = []
        for core in cores:
            payload = spec.get(core.core_id)
            start = time.perf_counter()
            if payload is not None and core.has_thread:
                ran, charge = self._commit_core(bound, core, limit_cycle,
                                                payload)
                if (charge is None and flight is not None):
                    # charge=None on a present payload means the
                    # fingerprint validation rejected the speculation.
                    flight.record("spec_mismatch", backend=self.name,
                                  core=core.core_id,
                                  interval=bound.intervals)
            else:
                self.counters["inline_runs"] += 1
                ran = bound._run_core(core, limit_cycle)
                charge = None
            end = time.perf_counter()
            # ``charge`` is the serial-equivalent cost of this core's
            # run: the worker's speculation wall time on a commit (the
            # driver only paid the serial-mandatory hierarchy replay,
            # which measured_wall captures), the driver window
            # otherwise.
            timings.append((core.core_id,
                            charge if charge is not None else end - start))
            if telem is not None:
                bound._trace_core_run(core.core_id, start, end)
            outcomes.append((core, ran))
        if flight is not None:
            flight.record(
                "commit", backend=self.name, interval=bound.intervals,
                commits=self.counters["spec_commits"] - before[0],
                rejects=self.counters["spec_rejects"] - before[1],
                inline=self.counters["inline_runs"] - before[2])
        return outcomes

    def _commit_core(self, bound, core, limit_cycle, payload):
        (state, n_bbls, addrs, writes, cycles, ifetches, fps,
         trace_cycles, trace_idx, spec_seconds) = payload
        mem = core.mem
        core_id = core.core_id
        replayed = []
        mismatch = -1
        for i in range(len(addrs)):
            result = mem.access(core_id, addrs[i], writes[i], cycles[i],
                                ifetches[i])
            replayed.append(result)
            if _fingerprint(result) != fps[i]:
                mismatch = i
                break
        if mismatch < 0:
            stream = core.stream
            for _ in range(n_bbls):
                try:
                    next(stream)
                except StopIteration:
                    raise ProcessPoolError(
                        "stream of core %d ended during commit replay "
                        "(speculated %d blocks)" % (core_id, n_bbls),
                        phase="bound", core=core_id) from None
            core.__dict__.update(state)
            core.trace = [(trace_cycles[j], replayed[trace_idx[j]])
                          for j in range(len(trace_idx))]
            self.counters["spec_commits"] += 1
            return True, spec_seconds
        # Mismatch: cross-core sharing changed an input.  Re-run inline
        # from the pristine core state, serving the applied prefix.
        self.counters["spec_rejects"] += 1
        args = list(zip(addrs[:mismatch + 1], writes[:mismatch + 1],
                        cycles[:mismatch + 1], ifetches[:mismatch + 1]))
        core.mem = _PrefixReplayMem(mem, args, replayed)
        try:
            ran = bound._run_core(core, limit_cycle)
        finally:
            core.mem = mem
        return ran, None

    # -- weave phase ---------------------------------------------------

    def run_weave(self, weave, traces):
        """Weave runs inline on the driver (see module docs); the fault
        plan's queue-corruption seam is honored like the other
        backends'."""
        plan = self.fault_plan
        if plan is None:
            return weave.run_interval(traces)
        return weave.run_interval(
            traces,
            executor=lambda events: self._corrupt_execute(weave, events))

    def _corrupt_execute(self, weave, events):
        weave.seed_queues(events)
        self.fault_plan.corrupt(weave, weave.stats.intervals)
        weave._drain_earliest_first()

    # -- observability -------------------------------------------------

    def _worker_lane(self, w):
        """Tracer lane for worker slot ``w``'s *current* generation.
        Dead slots bump the generation, so a respawned worker never
        shares a lane with its dead predecessor."""
        return TID_WORKER + LANE_STRIDE * self._lane_gen.get(w, 0) + w

    def _name_worker_tracks(self, workers):
        telem = getattr(self._sim, "_telem", None)
        if telem is None or telem.tracer is None:
            return
        for w in range(workers):
            lane = self._worker_lane(w)
            if lane in self._named_lanes:
                continue
            gen = self._lane_gen.get(w, 0)
            telem.tracer.name_track(
                lane, "process worker%d" % w if not gen
                else "process worker%d (respawn %d)" % (w, gen))
            self._named_lanes.add(lane)

    def _note_spans(self, spans, interval, window_s):
        telem = getattr(self._sim, "_telem", None)
        tracer = telem.tracer if telem is not None else None
        for w, (t0, t1, busy_s) in spans.items():
            self._idle_us += max(0.0, window_s - busy_s) * 1e6
            if tracer is not None:
                # perf_counter is CLOCK_MONOTONIC on Linux: one system-
                # wide clock, so child timestamps land on the driver's
                # timeline directly.
                tracer.complete_raw("speculate (interval %d)" % interval,
                                    "exec", t0, t1, self._worker_lane(w))

    def sample_idle(self, metrics):
        idle, self._idle_us = self._idle_us, 0.0
        if idle:
            metrics.histogram("exec.worker_idle_us").record(int(idle))
