"""The parallel backend: a worker pool over bound cores and weave domains.

Determinism contract
--------------------

Backends must never change simulated results, only wall time.  Two
mechanisms enforce that here:

* **Bound phase — ordered handoff.**  Cores share the scheduler and the
  memory hierarchy, so the *effect order* of core runs is simulated
  semantics (cache replacement state, futex handoffs).  Work items are
  dispatched to workers through bounded per-worker queues, but a ticket
  turnstile makes core *i*'s simulation start only after core *i-1*'s
  finished — the barrier's wake order, exactly as the serial backend
  runs it.  On CPython the GIL would serialize the cores anyway; the
  turnstile turns that accident into a guarantee, and on free-threaded
  builds it is what keeps results bit-identical.

* **Weave phase — independent batches.**  Per round, each domain may
  execute the prefix of its queue that is provably independent: events
  whose children all stay inside the domain, strictly below the
  *horizon* (the earliest head cycle of any other crossing-emitting
  domain).  In the serial order every event strictly below the horizon
  executes before any emitter can run, so no delivery — even one whose
  enqueue cycle lands in the past — can be interleaved ahead of the
  batch; equal-cycle ties involve the serial tie-break (lowest domain
  index first) and go through the sequential sync step instead.
  Batches touch disjoint state (components and
  event fields are domain-private by construction), so the per-domain
  workers run them genuinely concurrently.  Events that *do* emit
  domain crossings are the synchronization points: they execute one at
  a time, globally earliest-first, the serial rule.  The per-component
  ``occupy`` order — the only order simulated timing depends on — is
  identical to the serial executor's.

Failure containment (see :mod:`repro.resilience`): job errors are
captured with their dispatch context and re-raised as a typed
:class:`~repro.errors.WorkerFailure` chained to the original exception;
a configurable watchdog bounds how long a pass waits for worker progress
(a stalled or killed worker surfaces as
:class:`~repro.errors.WatchdogTimeout` instead of hanging the turnstile
forever); and a pool epoch lets ``recover()`` abandon a poisoned pool —
in-flight jobs from the old epoch are dropped on arrival, so an
interval re-run never races against stale work.

Wall-clock scaling on stock CPython is still bounded by the GIL (see
docs/bound_weave.md); the worker/locking infrastructure is exercised
continuously by the equivalence suite so free-threaded builds inherit a
correct parallel engine.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.errors import (ExecutionFault, WatchdogTimeout, WorkerFailure,
                          format_cause)
from repro.exec.backend import ExecutionBackend, PassAborted, WorkerKilled
from repro.obs.tracer import TID_WORKER


class _Turnstile:
    """Ordered handoff: ticket *i* may proceed only after tickets
    ``0..i-1`` advanced (the bound phase's wake-order discipline).
    ``abort()`` wakes every parked waiter with :class:`PassAborted` so
    a watchdogged pass can unwind instead of waiting forever."""

    def __init__(self):
        self._turn = 0
        self._aborted = False
        self._cond = threading.Condition()

    def wait_for(self, ticket):
        with self._cond:
            while self._turn != ticket and not self._aborted:
                self._cond.wait()
            if self._aborted:
                raise PassAborted("bound pass aborted at ticket %d"
                                  % ticket)

    def advance(self):
        with self._cond:
            self._turn += 1
            self._cond.notify_all()

    def abort(self):
        with self._cond:
            self._aborted = True
            self._cond.notify_all()


class _Worker(threading.Thread):
    """One pool worker: a bounded inbox of jobs plus idle accounting."""

    QUEUE_DEPTH = 2

    def __init__(self, index, backend):
        super().__init__(name="%s-worker%d" % (backend.name, index),
                         daemon=True)
        self.index = index
        self._backend = backend
        self.inbox = queue.Queue(maxsize=self.QUEUE_DEPTH)
        #: Microseconds spent waiting for work (and, for bound items,
        #: waiting for the turnstile) since the last ``take_idle_us``.
        self.idle_us = 0.0
        self.jobs_run = 0

    def run(self):
        while True:
            t0 = time.perf_counter()
            job = self.inbox.get()
            self.idle_us += (time.perf_counter() - t0) * 1e6
            if job is None:
                return
            fn, done, errors, ctx, epoch = job
            killed = False
            try:
                # Stale jobs (dispatched before a recover()) are dropped:
                # running them would mutate state an interval re-run has
                # already rewound.  Their completion is still signaled.
                if epoch == self._backend.pool_epoch():
                    fn(self.index)
            except WorkerKilled:
                killed = True
            except BaseException as exc:  # propagate to the coordinator
                errors.append((exc, ctx))
            self.jobs_run += 1
            if killed:
                return  # simulated crash: exit without signaling done
            done.release()

    def take_idle_us(self):
        idle, self.idle_us = self.idle_us, 0.0
        return idle


def _emits_crossing(event):
    """True when executing ``event`` would deliver to another domain —
    the weave phase's only synchronization points."""
    domain = event.domain
    for child, _gap in event.children:
        if child.domain != domain:
            return True
    return False


class ParallelBackend(ExecutionBackend):
    """Worker-pool execution of bound cores and weave domains."""

    name = "parallel"

    #: Grace period after a watchdog abort for unwinding workers to
    #: drain before the pass gives up on them.
    ABORT_GRACE_S = 1.0

    #: Bounded wait for a worker to take its shutdown sentinel; a dead
    #: or wedged worker with a full inbox is abandoned past this.
    SHUTDOWN_JOIN_S = 5.0

    def __init__(self, host_threads=None):
        self.host_threads = host_threads
        self._workers = []
        self._sim = None
        self._epoch = 0
        self._turnstile = None

    # -- lifecycle -----------------------------------------------------

    def start(self, sim):
        self._sim = sim
        if self.host_threads is None:
            self.host_threads = max(
                1, sim.config.boundweave.host_threads)

    def shutdown(self):
        """Drain and join the pool.  Safe after a poisoned pass: the
        epoch bump turns queued jobs into no-ops, sentinel delivery is
        bounded, and workers that never come back (killed or stalled
        mid-job) are abandoned as daemons instead of hanging the
        driver."""
        workers, self._workers = self._workers, []
        self._epoch += 1
        self._turnstile = None
        for worker in workers:
            try:
                worker.inbox.put(None, timeout=0.5)
            except queue.Full:
                pass  # dead worker, full inbox: it can never drain
        deadline = time.perf_counter() + self.SHUTDOWN_JOIN_S
        for worker in workers:
            worker.join(timeout=max(0.0, deadline - time.perf_counter()))

    def abort_pass(self):
        """Wake any workers parked on the current bound-pass turnstile
        (they unwind with :class:`PassAborted`)."""
        turnstile = self._turnstile
        if turnstile is not None:
            turnstile.abort()

    def pool_epoch(self):
        return self._epoch

    def recover(self):
        """Invalidate in-flight work and abandon the pool after an
        execution fault; the next pass builds a fresh pool lazily."""
        self.abort_pass()
        self.shutdown()

    def _ensure_pool(self, want):
        """Grow the pool (lazily) to min(want, host_threads) workers."""
        want = max(1, min(want, self.host_threads or 1))
        telem = getattr(self._sim, "_telem", None)
        tracer = telem.tracer if telem is not None else None
        while len(self._workers) < want:
            worker = _Worker(len(self._workers), self)
            if tracer is not None:
                tracer.name_track(TID_WORKER + worker.index,
                                  "%s worker%d" % (self.name,
                                                   worker.index))
            worker.start()
            self._workers.append(worker)
        return self._workers

    def _run_jobs(self, jobs, phase, interval):
        """Dispatch ``(worker_index, fn, ctx)`` jobs through the bounded
        inboxes and block until all complete.

        The first real job error is re-raised as a
        :class:`WorkerFailure` chained to the original exception (full
        traceback preserved) *after* the pass drains, so no completion
        is left dangling.  With a watchdog budget set, a stretch of
        ``budget`` seconds without a single completion aborts the pass
        and raises :class:`WatchdogTimeout`."""
        done = threading.Semaphore(0)
        errors = []
        epoch = self._epoch
        plan = self.fault_plan
        budget = self.watchdog_budget
        flight = self._flight()
        if flight is not None:
            flight.record("dispatch", backend=self.name, phase=phase,
                          interval=interval, jobs=len(jobs),
                          workers=len(self._workers), epoch=epoch)
        pending = 0
        timed_out = False
        for index, fn, ctx in jobs:
            ctx = dict(ctx, phase=phase, interval=interval, worker=index)
            if plan is not None:
                fn = plan.wrap(fn, ctx, self, epoch)
            try:
                # The bounded put is itself watchdogged: a dead worker
                # stops draining its inbox, and an unbounded put here
                # would hang the driver before the completion loop ever
                # noticed the missing progress.
                self._workers[index].inbox.put(
                    (fn, done, errors, ctx, epoch), timeout=budget)
            except queue.Full:
                timed_out = True
                break
            pending += 1
        while not timed_out and pending:
            # Progress-based: each completion restarts the budget clock.
            if done.acquire(timeout=budget):
                pending -= 1
            else:
                timed_out = True
                break
        if timed_out:
            # A worker is stalled or dead.  Abort the turnstile so
            # parked workers unwind, grace-drain them, then raise.
            self.abort_pass()
            deadline = time.perf_counter() + min(budget,
                                                 self.ABORT_GRACE_S)
            while pending:
                left = deadline - time.perf_counter()
                if left <= 0 or not done.acquire(timeout=left):
                    break
                pending -= 1
        failure = next(((exc, ctx) for exc, ctx in errors
                        if not isinstance(exc, PassAborted)), None)
        if failure is not None:
            exc, ctx = failure
            if flight is not None:
                flight.record("worker_failure", backend=self.name,
                              phase=phase, interval=interval,
                              worker=ctx.get("worker"),
                              error=type(exc).__name__)
            if isinstance(exc, ExecutionFault):
                raise exc  # already typed with context (HorizonViolation)
            raise WorkerFailure(
                "worker %s failed a %s job (interval %s, %s): %s"
                % (ctx.get("worker"), phase, interval,
                   self._ctx_target(ctx), exc),
                traceback_text=format_cause(exc), phase=phase,
                interval=interval, worker=ctx.get("worker"),
                core=ctx.get("core"),
                domain=ctx.get("domain")) from exc
        if timed_out:
            if flight is not None:
                flight.record("watchdog_timeout", backend=self.name,
                              phase=phase, interval=interval,
                              pending=pending, jobs=len(jobs),
                              budget_s=budget)
            raise WatchdogTimeout(
                "no worker progress for %.2fs in %s pass (interval %s): "
                "%d of %d jobs incomplete"
                % (budget, phase, interval, pending, len(jobs)),
                budget_s=budget, completed=len(jobs) - pending,
                pending=pending, phase=phase, interval=interval)

    @staticmethod
    def _ctx_target(ctx):
        if ctx.get("core") is not None:
            return "core %s" % ctx["core"]
        if ctx.get("domain") is not None:
            return "domain %s" % ctx["domain"]
        return "job"

    # -- bound phase ---------------------------------------------------

    def run_bound_pass(self, bound, cores, limit_cycle, timings):
        workers = self._ensure_pool(len(cores))
        num_workers = len(workers)
        if num_workers <= 1 or len(cores) <= 1:
            return bound.run_pass(cores, limit_cycle, timings)
        turnstile = _Turnstile()
        slots = [None] * len(cores)

        def make_job(ticket, core):
            def job(worker_index):
                wait0 = time.perf_counter()
                turnstile.wait_for(ticket)
                start = time.perf_counter()
                # Waiting for the handoff is idle time, not work.
                workers[worker_index].idle_us += (start - wait0) * 1e6
                try:
                    ran = bound._run_core(core, limit_cycle)
                    slots[ticket] = (ran, start, time.perf_counter(),
                                     worker_index)
                finally:
                    turnstile.advance()
            return job

        self._turnstile = turnstile
        try:
            self._run_jobs(
                [(ticket % num_workers, make_job(ticket, core),
                  {"core": core.core_id})
                 for ticket, core in enumerate(cores)],
                phase="bound", interval=bound.intervals)
        finally:
            self._turnstile = None
        telem = bound._telem
        tracer = telem.tracer if telem is not None else None
        outcomes = []
        for core, slot in zip(cores, slots):
            ran, start, end, worker_index = slot
            timings.append((core.core_id, end - start))
            if telem is not None:
                bound._trace_core_run(core.core_id, start, end)
            if tracer is not None:
                tracer.complete_raw(
                    "core%d" % core.core_id, "exec", start, end,
                    TID_WORKER + worker_index,
                    {"interval": bound.intervals})
            outcomes.append((core, ran))
        return outcomes

    # -- weave phase ---------------------------------------------------

    def run_weave(self, weave, traces):
        return weave.run_interval(
            traces, executor=lambda events: self._execute_weave(weave,
                                                                events))

    def _execute_weave(self, weave, events):
        domains = weave.domains
        plan = self.fault_plan
        interval = weave.stats.intervals
        # The journal needs the global execution order, and crossing
        # probes (the ablation) read other domains' clocks: both force
        # the reference executor.  One domain has nothing to overlap.
        if (weave.journal is not None or not weave.crossing_deps
                or len(domains) <= 1):
            weave.seed_queues(events)
            if plan is not None:
                plan.corrupt(weave, interval)
            weave._drain_earliest_first()
            return
        weave.seed_queues(events)
        if plan is not None:
            plan.corrupt(weave, interval)
        workers = self._ensure_pool(len(domains))
        num_workers = len(workers)
        telem = weave._telem
        tracer = telem.tracer if telem is not None else None
        # Only domains holding crossing-emitting events can ever deliver
        # into another domain this interval; only they constrain other
        # domains' batch horizons.  (A domain's own future emitters don't
        # need the horizon: its batch stops at the first one it meets.)
        emitter = [False] * len(domains)
        for event in events:
            if not emitter[event.domain] and _emits_crossing(event):
                emitter[event.domain] = True
        while True:
            jobs = []
            for domain in domains:
                head_cycle = domain.head_cycle()
                if head_cycle is None:
                    continue
                horizon = None
                for other in domains:
                    if other is domain or not emitter[other.domain_id]:
                        continue
                    other_head = other.head_cycle()
                    if other_head is not None and (horizon is None
                                                   or other_head < horizon):
                        horizon = other_head
                # Strictly below the horizon: at equal cycles the serial
                # tie-break (lowest domain index) may run the emitter
                # first, and its delivery can land at or below that
                # cycle — those ties go through the sync step.
                if horizon is not None and head_cycle >= horizon:
                    continue
                if _emits_crossing(domain.head_item()):
                    continue
                jobs.append((domain.domain_id % num_workers,
                             self._batch_job(weave, domain, horizon,
                                             tracer),
                             {"domain": domain.domain_id}))
            if jobs:
                self._run_jobs(jobs, phase="weave", interval=interval)
                continue
            # Synchronization point: the globally earliest event (it
            # emits domain crossings, or every queue is past another's
            # horizon) executes under the serial rule.
            best = None
            best_cycle = None
            for domain in domains:
                head = domain.head_cycle()
                if head is not None and (best_cycle is None
                                         or head < best_cycle):
                    best_cycle = head
                    best = domain
            if best is None:
                return
            cycle, event = best.pop()
            weave._run_event(best, cycle, event)

    @staticmethod
    def _batch_job(weave, domain, horizon, tracer):
        """One domain's independent batch: local events up to the
        horizon whose children stay inside the domain."""
        def job(worker_index):
            start = time.perf_counter()
            executed = 0
            while True:
                head_cycle = domain.head_cycle()
                if head_cycle is None or (horizon is not None
                                          and head_cycle >= horizon):
                    break
                head = domain.head_item()
                if _emits_crossing(head):
                    break
                cycle, event = domain.pop()
                weave._run_event(domain, cycle, event)
                executed += 1
            if tracer is not None and executed:
                tracer.complete_raw(
                    "domain%d batch" % domain.domain_id, "exec", start,
                    time.perf_counter(), TID_WORKER + worker_index,
                    {"events": executed})
        return job

    # -- observability -------------------------------------------------

    def sample_idle(self, metrics):
        for worker in self._workers:
            metrics.histogram("exec.worker_idle_us").record(
                int(worker.take_idle_us()))
