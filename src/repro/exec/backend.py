"""The ExecutionBackend protocol.

A backend executes the work the engine layers describe:

* ``run_bound_pass`` — one bound-phase pass over a list of cores, in
  barrier wake order.  The pass must *behave as if* the cores ran one
  after another in that order: cores share the scheduler and the memory
  hierarchy, so the observable effect order is part of the simulated
  semantics (it determines cache replacement state, futex handoffs, and
  ultimately cycles).  Backends are free to use worker threads as long
  as they preserve that effect order.
* ``run_weave`` — one weave-phase interval.  The reference semantics is
  the engine's earliest-first cooperative executor; backends may run
  domains concurrently wherever the event graph proves independence.

Lifecycle: ``start(sim)`` is called once when a :class:`~repro.core.ZSim`
adopts the backend, ``shutdown()`` when a run finishes (worker threads
must not leak across runs; backends restart lazily if reused).

``sample_idle(metrics)`` is called once per interval when telemetry is
attached so backends with real workers can report measured idle time
(``exec.worker_idle_us``) instead of the serial backend's apportioned
spans.

Supervision hooks (see :mod:`repro.resilience`): ``watchdog_budget``
bounds how long a backend waits for worker progress before raising a
typed :class:`~repro.errors.WatchdogTimeout`; ``fault_plan`` lets the
deterministic fault-injection harness wrap dispatched jobs; ``recover()``
invalidates in-flight work (via the pool epoch) and abandons a poisoned
pool so a degraded re-run can proceed with fresh workers.
"""

from __future__ import annotations


class WorkerKilled(BaseException):
    """Injected crash (fault harness): the worker thread exits without
    completing its job — simulating a died-without-a-trace worker.
    Deliberately a BaseException so normal handlers cannot swallow it."""


class PassAborted(Exception):
    """Raised in jobs parked on an aborted turnstile after a watchdog
    timeout: the pass is being torn down, the job's work never ran."""


class ExecutionBackend:
    """Base class/protocol for execution backends (see module docs)."""

    #: Short name used by ``--backend`` and stats reporting.
    name = "abstract"

    #: Seconds of no worker progress before a pass raises
    #: :class:`~repro.errors.WatchdogTimeout`; None waits forever.
    watchdog_budget = None

    #: Optional :class:`repro.resilience.FaultPlan` consulted at job
    #: dispatch (test/CI harness only; None in production runs).
    fault_plan = None

    # -- lifecycle -----------------------------------------------------

    def start(self, sim):
        """Adopt a simulator.  Called from ``ZSim.__init__``; resource
        allocation (worker threads) should stay lazy so unused backends
        cost nothing.  Subclasses overriding this should call
        ``super().start(sim)`` (or set ``self._sim``) so observability
        hooks can reach the simulator's flight recorder."""
        self._sim = sim

    def _flight(self):
        """The adopted simulator's flight recorder, or None.  Call
        sites follow the telemetry guard discipline: bind this once per
        pass/interval and guard every record with ``is not None``."""
        return getattr(getattr(self, "_sim", None), "flight", None)

    def shutdown(self):
        """Release host resources (join worker threads).  Idempotent;
        a backend may be restarted lazily after shutdown."""

    def pool_epoch(self):
        """Monotonic pool generation.  Jobs dispatched under an older
        epoch are stale: workers drop them on arrival, and fault
        wrappers stop stalling when the epoch moves on."""
        return getattr(self, "_epoch", 0)

    def recover(self):
        """Invalidate in-flight work and abandon the worker pool after
        an execution fault (workers may be stalled or dead); the next
        pass lazily builds a fresh pool.  Default: plain shutdown."""
        self.shutdown()

    # -- bound phase ---------------------------------------------------

    def run_bound_pass(self, bound, cores, limit_cycle, timings):
        """Run one bound-phase pass over ``cores`` (wake order).

        Must append ``(core_id, host_seconds)`` to ``timings`` in wake
        order and return ``[(core, ran_to_limit)]``.  The default
        delegates to the bound phase's inline reference pass.
        """
        return bound.run_pass(cores, limit_cycle, timings)

    # -- weave phase ---------------------------------------------------

    def run_weave(self, weave, traces):
        """Execute one weave interval; returns ``{core_id: delay}``."""
        return weave.run_interval(traces)

    # -- observability -------------------------------------------------

    def sample_idle(self, metrics):
        """Record per-worker idle time into ``metrics`` (one histogram
        sample per worker per interval).  No-op for inline backends."""

    def host_stats(self):
        """Host-side backend counters for ``stats()["host"]["exec"]``
        (pool sizes, worker deaths, respawns, speculation outcomes).
        An empty dict (the default) omits the node entirely."""
        return {}

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.name)
