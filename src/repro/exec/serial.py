"""The serial backend: everything inline on the calling thread.

This is the default and the reference: for one seed it is bit-identical
to the engine before the backend layer existed, because both hooks are
straight delegations to the engine's own inline paths.  Telemetry keeps
the apportioned per-domain weave spans (the engine interleaves domains
on one host thread, so real per-worker spans do not exist here).
"""

from __future__ import annotations

from repro.exec.backend import ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Inline execution; the reference semantics for every other
    backend (see the equivalence suite in tests/test_exec_backends.py)."""

    name = "serial"

    def __init__(self, host_threads=None):
        # Accepted for interface symmetry; a serial backend has exactly
        # one (the calling) host thread.
        self.host_threads = 1

    def run_bound_pass(self, bound, cores, limit_cycle, timings):
        flight = self._flight()
        if flight is not None:
            flight.record("bound_pass", backend=self.name,
                          interval=bound.intervals, cores=len(cores),
                          limit=limit_cycle)
        return bound.run_pass(cores, limit_cycle, timings)

    def run_weave(self, weave, traces):
        flight = self._flight()
        if flight is not None:
            flight.record("weave_pass", backend=self.name,
                          interval=weave.stats.intervals,
                          traces=len(traces))
        return weave.run_interval(traces)
