"""Execution backends: how the bound-weave engine runs on the host.

The engine layers split "what to run" from "how to run it":

* :mod:`repro.core.bound` and :mod:`repro.core.weave` produce the work —
  bound-phase core runs in barrier wake order, and the weave-phase event
  graph partitioned into domains.
* An :class:`ExecutionBackend` owns the host resources (worker threads,
  queues, handoff discipline) that execute that work.

Three backends ship:

* :class:`SerialBackend` — the default; runs everything inline on the
  calling thread, bit-identical to the engine before backends existed.
* :class:`ParallelBackend` — a worker pool of up to
  ``boundweave.host_threads`` threads.  Bound-phase cores are dispatched
  to workers through bounded per-worker queues with an ordered ticket
  handoff; weave domains execute concurrently on per-domain workers for
  provably independent event batches, synchronizing only at
  domain-crossing events.
* :class:`PipelinedBackend` — a two-stage pipeline: the bound phase runs
  on the driver thread while a dedicated weave-stage thread consumes
  intervals from a bounded queue (the paper's stated future work, modeled
  by ``HostModel.pipelined_*``).
* :class:`ProcessBackend` — crash-tolerant speculation on real OS worker
  processes forked at the interval barrier: workers speculate bound-phase
  core runs against a copy-on-write replica, the driver validates the
  recorded accesses against the authoritative hierarchy and commits (or
  re-runs inline); a worker dying mid-interval can only cost wasted
  speculation, never corrupted state.

The cardinal invariant (the ZSim property the equivalence suite pins):
backends may change *wall time*, never *simulated results*.  For one
seed, every backend produces the same instruction counts, cycles,
per-core stats, and weave delays as :class:`SerialBackend`.
"""

from repro.errors import ConfigError
from repro.exec.backend import ExecutionBackend
from repro.exec.parallel import ParallelBackend
from repro.exec.pipelined import PipelinedBackend
from repro.exec.process import ProcessBackend
from repro.exec.serial import SerialBackend

#: Valid names for ``--backend`` / ``config.boundweave.backend``.
BACKEND_NAMES = ("serial", "parallel", "pipelined", "process")

_BACKENDS = {
    "serial": SerialBackend,
    "parallel": ParallelBackend,
    "pipelined": PipelinedBackend,
    "process": ProcessBackend,
}


def make_backend(name, host_threads=None):
    """Instantiate a backend by name (``serial``/``parallel``/
    ``pipelined``/``process``); raises
    :class:`~repro.errors.ConfigError` (a ValueError subclass) for
    unknown names."""
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ConfigError("Unknown execution backend: %r (valid: %s)"
                          % (name, ", ".join(BACKEND_NAMES))) from None
    return cls(host_threads=host_threads)


__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ParallelBackend",
    "PipelinedBackend",
    "ProcessBackend",
    "SerialBackend",
    "make_backend",
]
