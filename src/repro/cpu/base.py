"""Common core-model machinery: stats, instruction fetch, tracing.

Both timing models (IPC1 and OOO) share the same contract with the
bound-weave engine:

* :meth:`Core.run_until` simulates the attached thread until the core's
  cycle passes the interval limit, the stream ends, or a syscall is hit.
* Memory accesses that escape the private levels are appended to
  ``self.trace`` as ``(issue_cycle, AccessResult)`` for the weave phase.
* :meth:`Core.apply_delay` applies the weave phase's contention feedback
  by shifting the core's clocks forward (the delay is always >= 0).
"""

from __future__ import annotations

from repro.isa.uops import UopType


class RunOutcome:
    """Why :meth:`Core.run_until` returned."""

    LIMIT = "limit"      # reached the interval boundary
    DONE = "done"        # functional stream exhausted
    SYSCALL = "syscall"  # hit a syscall; descriptor in Core.pending_syscall
    BLOCKED = "blocked"  # descheduled (no thread attached)


class Core:
    """Base class for core timing models."""

    def __init__(self, core_id, mem, config):
        self.core_id = core_id
        self.mem = mem
        self.config = config
        self.stream = None
        self.pending_syscall = None
        #: Weave-phase trace: list of (issue_cycle, AccessResult).
        self.trace = []
        self.record_all_levels = False
        # Retired-work counters.
        self.instrs = 0
        self.uops = 0
        self.bbls = 0
        # Per-core cache miss attribution (MPKI numerators).
        self.l1i_misses = 0
        self.l1d_misses = 0
        self.l2_misses = 0
        self.l3_misses = 0
        self.loads = 0
        self.stores = 0
        self._line_mask = ~(config_line_bytes(mem) - 1)

    # ------------------------------------------------------------------
    # Thread attach/detach (driven by the scheduler / engine)
    # ------------------------------------------------------------------

    def attach(self, stream):
        """Attach an instrumented BBLExec stream to this core."""
        self.stream = stream

    def detach(self):
        stream, self.stream = self.stream, None
        return stream

    @property
    def has_thread(self):
        return self.stream is not None

    # ------------------------------------------------------------------
    # Interface implemented by subclasses
    # ------------------------------------------------------------------

    @property
    def cycle(self):
        """The core's current completed-work cycle."""
        raise NotImplementedError

    def run_until(self, limit_cycle):
        """Simulate until ``self.cycle >= limit_cycle``; returns a
        :class:`RunOutcome` value."""
        raise NotImplementedError

    def apply_delay(self, delay):
        """Weave feedback: shift all clocks forward by ``delay``."""
        raise NotImplementedError

    def skip_to(self, cycle):
        """Advance an idle core's clock to ``cycle`` (descheduled time)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _account_access(self, result, ifetch=False):
        """Update per-core MPKI counters from one access result."""
        if ifetch:
            if "l1i" in result.missed_levels:
                self.l1i_misses += 1
        elif "l1d" in result.missed_levels:
            self.l1d_misses += 1
        if "l2" in result.missed_levels:
            self.l2_misses += 1
        if "l3" in result.missed_levels:
            self.l3_misses += 1

    def _record_trace(self, issue_cycle, result):
        if result.steps or result.wbacks:
            self.trace.append((issue_cycle, result))

    def take_trace(self, fresh=None):
        """Detach and return this interval's trace.  ``fresh`` installs a
        recycled (already-cleared) list instead of allocating one — the
        simulator feeds traces back through a freelist once the weave
        phase has consumed them."""
        trace = self.trace
        self.trace = [] if fresh is None else fresh
        return trace

    def fill_stats(self, node):
        node.set("instrs", self.instrs)
        node.set("uops", self.uops)
        node.set("bbls", self.bbls)
        node.set("cycles", self.cycle)
        node.set("l1i_misses", self.l1i_misses)
        node.set("l1d_misses", self.l1d_misses)
        node.set("l2_misses", self.l2_misses)
        node.set("l3_misses", self.l3_misses)
        node.set("loads", self.loads)
        node.set("stores", self.stores)

    def integrity_items(self):
        """State items folded into the integrity sentinel's per-core
        digest (see :mod:`repro.resilience.integrity`): the retired-work
        counters and miss attribution every model shares.  Timing models
        extend this with their clocks and scoreboards.  Yield only
        plain data (ints, strings, tuples) — object reprs would leak
        host addresses into the digest."""
        yield (self.core_id, self.instrs, self.uops, self.bbls,
               self.l1i_misses, self.l1d_misses, self.l2_misses,
               self.l3_misses, self.loads, self.stores)

    def mpki(self, level):
        misses = {"l1i": self.l1i_misses, "l1d": self.l1d_misses,
                  "l2": self.l2_misses, "l3": self.l3_misses}[level]
        if self.instrs == 0:
            return 0.0
        return 1000.0 * misses / self.instrs

    @property
    def ipc(self):
        cycle = self.cycle
        return self.instrs / cycle if cycle > 0 else 0.0


def config_line_bytes(mem):
    """Line size of the attached memory system (64 when unspecified)."""
    config = getattr(mem, "config", None)
    if config is not None and hasattr(config, "l1d"):
        return config.l1d.line_bytes
    return 64


def iter_fetch_lines(address, num_bytes, line_bytes):
    """Yield the line addresses an instruction fetch touches."""
    line = address & ~(line_bytes - 1)
    end = address + num_bytes
    while line < end:
        yield line
        line += line_bytes


_SYSCALL_TYPES = (UopType.SYSCALL,)


def is_syscall_uop(uop):
    return uop.type in _SYSCALL_TYPES
