"""Instruction-driven out-of-order core model (the paper's Figure 1).

The model closely follows the Westmere microarchitecture the paper
validates against: branch prediction with fixed-penalty recovery,
instruction fetch with L1I misses, length-predecoder and 4-1-1-1 decoder
stalls (precomputed per block by the decoder), macro-op fusion, limited
issue width, dataflow execution with a register scoreboard, exact µop
port masks and latencies with functional-unit (port) contention, a
load-store unit with store-to-load forwarding, TSO store ordering and
fences, and a reorder buffer of limited size and width.

It is *instruction-driven*: the core model is called once per µop and
simulates all stages for that µop by advancing per-stage clocks
(fetch / decode / issue / retire), rather than maintaining per-cycle
pipeline state.  Interdependencies between stage clocks (ROB fill, issue
stalls, mispredictions, I-cache misses) keep the timing honest.

Deliberate simplifications, matching the paper: wrong-path instructions
are not executed (only their fetch penalty is modeled, since Westmere
recovers in a fixed number of cycles); there is no BTB model
(unconditional branches never mispredict); stores access the memory
system at their store-address execution cycle.
"""

from __future__ import annotations

from repro.cpu.base import Core, RunOutcome
from repro.cpu.bpred import BranchPredictor
from repro.isa.registers import NUM_REGS
from repro.isa.uops import UopType

# Flat dispatch constants: locals in the inner loop resolve faster than
# class-attribute lookups per µop.
_EXEC = UopType.EXEC
_LOAD = UopType.LOAD
_STORE_ADDR = UopType.STORE_ADDR
_BRANCH = UopType.BRANCH
_FENCE = UopType.FENCE
_SYSCALL = UopType.SYSCALL


class PortWindow:
    """Tracks execution-port occupancy over future cycles.

    A µop scheduled with mask M lands at the first cycle >= its dispatch
    cycle that has a free port in M ("schedule in first cycle >
    dispatchCycle that has a free port compatible with uop ports").
    """

    PRUNE_PERIOD = 4096

    def __init__(self):
        self._used = {}
        self._ops = 0
        self._prune_before = 0

    def schedule(self, min_cycle, portmask):
        used = self._used
        cycle = min_cycle
        while True:
            occupancy = used.get(cycle, 0)
            free = portmask & ~occupancy
            if free:
                used[cycle] = occupancy | (free & -free)
                self._ops += 1
                if self._ops >= self.PRUNE_PERIOD:
                    self._prune(min_cycle)
                return cycle
            cycle += 1

    def _prune(self, horizon):
        self._ops = 0
        if horizon <= self._prune_before:
            return
        self._used = {c: m for c, m in self._used.items() if c >= horizon}
        self._prune_before = horizon


class OOOCore(Core):
    """Westmere-class OOO core with instruction-driven timing."""

    def __init__(self, core_id, mem, config):
        super().__init__(core_id, mem, config)
        self.bpred = BranchPredictor(config.bpred)
        self._fetch_clock = 0
        self._decode_clock = 0
        self._issue_clock = 0
        self._issue_slots = 0       # µops issued at _issue_clock
        self._retire_clock = 0
        self._retire_slots = 0
        self._scoreboard = [0] * NUM_REGS
        self._ports = PortWindow()
        self._rob = []              # ring of retire cycles
        self._rob_head = 0
        self._window = []           # ring of exec cycles (issue window)
        self._window_head = 0
        self._store_buffer = {}     # word addr -> data ready cycle
        self._store_order = []      # FIFO of (word, done) for SQ capacity
        self._load_releases = []    # FIFO of load done cycles (LQ capacity)
        self._last_store_cycle = 0  # TSO: stores execute in order
        self._last_mem_done = 0     # completion of latest memory op
        self._fence_cycle = 0
        self._line_bytes = 64
        self._last_fetch_line = -1
        self._mispredict_resume = 0
        self._lsd_recent = []       # (bbl_id, uops) of recent blocks
        self.lsd_streams = 0
        self.cond_branches = 0
        self.mispredicts = 0
        self.forwarded_loads = 0
        self.wrong_path_fetches = 0
        #: When set to a list, every µop appends a
        #: (dispatch, exec, done, retire) tuple — used by pipeline
        #: invariant tests; None (default) costs nothing.
        self.debug_trace = None

    # ------------------------------------------------------------------

    @property
    def cycle(self):
        return self._retire_clock

    def apply_delay(self, delay):
        if delay < 0:
            raise ValueError("Weave delay must be >= 0, got %d" % delay)
        self._fetch_clock += delay
        self._decode_clock += delay
        self._issue_clock += delay
        self._retire_clock += delay

    def skip_to(self, cycle):
        for attr in ("_fetch_clock", "_decode_clock", "_issue_clock",
                     "_retire_clock"):
            if getattr(self, attr) < cycle:
                setattr(self, attr, cycle)

    def integrity_items(self):
        # Stage clocks, the register scoreboard, LSU ordering state, and
        # the speculation counters.  The port window and ROB/window
        # rings are derived timing caches — large and redundant with the
        # clocks — so they stay out of the digest.
        yield from super().integrity_items()
        yield (self._fetch_clock, self._decode_clock, self._issue_clock,
               self._issue_slots, self._retire_clock, self._retire_slots,
               self._last_store_cycle, self._last_mem_done,
               self._fence_cycle, self._mispredict_resume,
               self._last_fetch_line)
        yield tuple(self._scoreboard)
        yield (len(self._store_buffer), len(self._store_order),
               len(self._load_releases), self.cond_branches,
               self.mispredicts, self.forwarded_loads,
               self.wrong_path_fetches, self.lsd_streams)

    # ------------------------------------------------------------------

    def run_until(self, limit_cycle):
        stream = self.stream
        if stream is None:
            return RunOutcome.BLOCKED
        stream_next = stream.__next__
        simulate_bbl = self._simulate_bbl
        while self._retire_clock < limit_cycle:
            try:
                decoded, bbl_exec = stream_next()
            except StopIteration:
                return RunOutcome.DONE
            syscall = simulate_bbl(decoded, bbl_exec)
            if syscall is not None:
                self.pending_syscall = syscall
                return RunOutcome.SYSCALL
        return RunOutcome.LIMIT

    # ------------------------------------------------------------------

    def _simulate_bbl(self, decoded, bbl_exec):
        # The inner loop consumes the flat schedule-once descriptor
        # (decoded.flat + the static dependency schedule) with every hot
        # name bound to a local.  Stage clocks live in locals and are
        # written back at the end; a fault mid-block is recovered by the
        # supervisor's snapshot restore, never by reusing this core.
        block = decoded.block
        num_uops = decoded.num_uops
        config = self.config
        self.bbls += 1
        self.instrs += block.num_instrs
        self.uops += num_uops

        # Loop stream detector: a tight loop (the same small block
        # repeating) replays µops from the queue, skipping fetch and
        # decode entirely.
        lsd_hit = False
        if config.loop_stream_detector:
            recent = self._lsd_recent
            # The loop body is everything since the previous occurrence
            # of this block; it streams if it fits the µop queue.
            for idx in range(len(recent) - 1, -1, -1):
                if recent[idx][0] == block.bbl_id:
                    loop_uops = (sum(u for _b, u in recent[idx + 1:])
                                 + num_uops)
                    if loop_uops <= config.lsd_max_uops:
                        lsd_hit = True
                        self.lsd_streams += 1
                    break
            recent.append((block.bbl_id, num_uops))
            if len(recent) > 4:
                del recent[0]

        mem_access = self.mem.access
        core_id = self.core_id
        trace_append = self.trace.append

        # (1) IFetch + BPred: adjust fetchClock.
        fetch = self._fetch_clock
        if self._mispredict_resume > fetch:
            fetch = self._mispredict_resume
            lsd_hit = False  # mispredicts flush the µop queue
        self._mispredict_resume = 0
        if not lsd_hit:
            last_line = self._last_fetch_line
            for line_addr in decoded.fetch_lines:
                if line_addr != last_line:
                    last_line = line_addr
                    result = mem_access(core_id, line_addr, False, fetch,
                                        ifetch=True)
                    missed = result.missed_levels
                    if missed:
                        if "l1i" in missed:
                            self.l1i_misses += 1
                        if "l2" in missed:
                            self.l2_misses += 1
                        if "l3" in missed:
                            self.l3_misses += 1
                        fetch += result.latency
                    if result.steps or result.wbacks:
                        trace_append((fetch, result))
            self._last_fetch_line = last_line
        self._fetch_clock = fetch

        # (2.1) Decoder stalls: adjust decodeClock (skipped when the
        # LSD streams the loop from the µop queue).
        decode = self._decode_clock + 1
        if decode < fetch + 1:
            decode = fetch + 1
        if not lsd_hit:
            decode += decoded.decode_cycles - 1
        self._decode_clock = decode

        syscall = None
        addrs = bbl_exec.addrs
        sb = self._scoreboard
        issue_width = config.issue_width
        retire_width = config.retire_width
        rob_size = config.rob_size
        window_size = config.issue_window_size
        load_queue_size = config.load_queue_size
        store_queue_size = config.store_queue_size
        # Port window, inlined: the occupancy dict, its getter, and the
        # prune countdown live in locals shared by every schedule site
        # below, so prune points land exactly where PortWindow.schedule
        # would put them.
        ports = self._ports
        ports_used = ports._used
        ports_used_get = ports_used.get
        ports_ops = ports._ops
        rob = self._rob
        rob_head = self._rob_head
        rob_append = rob.append
        window = self._window
        window_head = self._window_head
        window_append = window.append
        store_buffer = self._store_buffer
        store_order = self._store_order
        releases = self._load_releases
        last_store = self._last_store_cycle
        last_mem_done = self._last_mem_done
        fence_cycle = self._fence_cycle
        issue_clock = self._issue_clock
        issue_slots = self._issue_slots
        retire_clock = self._retire_clock
        retire_slots = self._retire_slots
        debug_trace = self.debug_trace
        conditional = decoded.conditional
        done_cycles = []
        done_append = done_cycles.append

        if issue_clock < decode:
            issue_clock = decode
            issue_slots = 0

        for utype, lat, portmask, mem_slot, dep1, gsrc1, dep2, gsrc2 \
                in decoded.flat:
            # (2.3) Issue width: adjust issueClock.
            if issue_slots >= issue_width:
                issue_clock += 1
                issue_slots = 0
            issue_slots += 1
            dispatch = issue_clock
            if dispatch < decode:
                dispatch = decode

            # ROB capacity: stall issue until the head-of-line µop
            # retires when the ROB is full.
            if len(rob) - rob_head >= rob_size:
                head_retire = rob[rob_head]
                rob_head += 1
                if rob_head > 8192:
                    del rob[:rob_head]
                    rob_head = 0
                if head_retire > dispatch:
                    dispatch = head_retire
                    issue_clock = head_retire
                    issue_slots = 1

            # Issue-window capacity: oldest unexecuted µop must leave.
            if len(window) - window_head >= window_size:
                head_exec = window[window_head]
                window_head += 1
                if window_head > 8192:
                    del window[:window_head]
                    window_head = 0
                if head_exec > dispatch:
                    dispatch = head_exec

            # (2.2) Minimum execution cycle from the static dependency
            # schedule: in-block producers by index, pre-block values
            # from the global scoreboard.
            exec_min = dispatch
            if dep1 >= 0:
                ready = done_cycles[dep1]
                if ready > exec_min:
                    exec_min = ready
            elif gsrc1 >= 0:
                ready = sb[gsrc1]
                if ready > exec_min:
                    exec_min = ready
            if dep2 >= 0:
                ready = done_cycles[dep2]
                if ready > exec_min:
                    exec_min = ready
            elif gsrc2 >= 0:
                ready = sb[gsrc2]
                if ready > exec_min:
                    exec_min = ready

            # (2.4) Execute: schedule on a compatible free port; EXEC
            # (the most common µop) is tested first, and the load/store
            # unit is inlined (it is ~a third of all µops).
            if utype == _EXEC:
                exec_cycle = exec_min
                occ = ports_used_get(exec_cycle, 0)
                free = portmask & ~occ
                while not free:
                    exec_cycle += 1
                    occ = ports_used_get(exec_cycle, 0)
                    free = portmask & ~occ
                ports_used[exec_cycle] = occ | (free & -free)
                ports_ops += 1
                if ports_ops >= 4096:
                    ports._prune(exec_min)
                    ports_used = ports._used
                    ports_used_get = ports_used.get
                    ports_ops = 0
                done = exec_cycle + lat
            elif utype == _LOAD:
                self.loads += 1
                addr = addrs[mem_slot]
                if fence_cycle > exec_min:
                    exec_min = fence_cycle
                # Load-queue capacity.
                if len(releases) >= load_queue_size:
                    head = releases.pop(0)
                    if head > exec_min:
                        exec_min = head
                exec_cycle = exec_min
                occ = ports_used_get(exec_cycle, 0)
                free = portmask & ~occ
                while not free:
                    exec_cycle += 1
                    occ = ports_used_get(exec_cycle, 0)
                    free = portmask & ~occ
                ports_used[exec_cycle] = occ | (free & -free)
                ports_ops += 1
                if ports_ops >= 4096:
                    ports._prune(exec_min)
                    ports_used = ports._used
                    ports_used_get = ports_used.get
                    ports_ops = 0
                ready = store_buffer.get(addr >> 3)
                if ready is not None:
                    # Store-to-load forwarding: bypass the memory system.
                    self.forwarded_loads += 1
                    done = (exec_cycle if exec_cycle >= ready
                            else ready) + 1
                else:
                    result = mem_access(core_id, addr, False, exec_cycle)
                    missed = result.missed_levels
                    if missed:
                        if "l1d" in missed:
                            self.l1d_misses += 1
                        if "l2" in missed:
                            self.l2_misses += 1
                        if "l3" in missed:
                            self.l3_misses += 1
                    if result.steps or result.wbacks:
                        trace_append((exec_cycle, result))
                    done = exec_cycle + result.latency
                releases.append(done)
                if done > last_mem_done:
                    last_mem_done = done
            elif utype == _STORE_ADDR:
                self.stores += 1
                addr = addrs[mem_slot]
                if fence_cycle > exec_min:
                    exec_min = fence_cycle
                # TSO: stores execute in program order.
                if last_store > exec_min:
                    exec_min = last_store
                # Store-queue capacity.
                if len(store_order) >= store_queue_size:
                    word_old, done_old = store_order.pop(0)
                    if store_buffer.get(word_old) == done_old:
                        del store_buffer[word_old]
                    if done_old > exec_min:
                        exec_min = done_old
                exec_cycle = exec_min
                occ = ports_used_get(exec_cycle, 0)
                free = portmask & ~occ
                while not free:
                    exec_cycle += 1
                    occ = ports_used_get(exec_cycle, 0)
                    free = portmask & ~occ
                ports_used[exec_cycle] = occ | (free & -free)
                ports_ops += 1
                if ports_ops >= 4096:
                    ports._prune(exec_min)
                    ports_used = ports._used
                    ports_used_get = ports_used.get
                    ports_ops = 0
                last_store = exec_cycle
                result = mem_access(core_id, addr, True, exec_cycle)
                missed = result.missed_levels
                if missed:
                    if "l1d" in missed:
                        self.l1d_misses += 1
                    if "l2" in missed:
                        self.l2_misses += 1
                    if "l3" in missed:
                        self.l3_misses += 1
                if result.steps or result.wbacks:
                    trace_append((exec_cycle, result))
                done = exec_cycle + (lat if lat > 1 else 1)
                avail = done + result.latency
                if avail > last_mem_done:
                    last_mem_done = avail
                word = addr >> 3
                store_buffer[word] = avail
                store_order.append((word, avail))
            elif utype == _FENCE:
                # A full fence orders *all* prior memory operations.
                if last_store > exec_min:
                    exec_min = last_store
                if last_mem_done > exec_min:
                    exec_min = last_mem_done
                exec_cycle = exec_min
                occ = ports_used_get(exec_cycle, 0)
                free = portmask & ~occ
                while not free:
                    exec_cycle += 1
                    occ = ports_used_get(exec_cycle, 0)
                    free = portmask & ~occ
                ports_used[exec_cycle] = occ | (free & -free)
                ports_ops += 1
                if ports_ops >= 4096:
                    ports._prune(exec_min)
                    ports_used = ports._used
                    ports_used_get = ports_used.get
                    ports_ops = 0
                done = exec_cycle + lat
                fence_cycle = done
            else:
                exec_cycle = exec_min
                occ = ports_used_get(exec_cycle, 0)
                free = portmask & ~occ
                while not free:
                    exec_cycle += 1
                    occ = ports_used_get(exec_cycle, 0)
                    free = portmask & ~occ
                ports_used[exec_cycle] = occ | (free & -free)
                ports_ops += 1
                if ports_ops >= 4096:
                    ports._prune(exec_min)
                    ports_used = ports._used
                    ports_used_get = ports_used.get
                    ports_ops = 0
                done = exec_cycle + lat
                if utype == _SYSCALL:
                    syscall = bbl_exec.syscall or True
                elif utype == _BRANCH and conditional:
                    self.cond_branches += 1
                    correct = self.bpred.predict_and_update(
                        block.address, bbl_exec.taken)
                    if not correct:
                        self.mispredicts += 1
                        self._mispredict_resume = (
                            exec_cycle + self.bpred.mispredict_penalty)
                        if config.wrong_path_fetch:
                            self._fetch_wrong_path(block, bbl_exec,
                                                   exec_cycle)

            # (2.6) Completion cycle, read back by in-block dependents.
            done_append(done)
            window_append(exec_cycle)

            # (2.7) Retire: account ROB width, adjust retireClock.
            retire = done + 1
            if retire <= retire_clock:
                retire = retire_clock
                retire_slots += 1
                if retire_slots >= retire_width:
                    retire_clock += 1
                    retire_slots = 0
            else:
                retire_clock = retire
                retire_slots = 1
            rob_append(retire)
            if debug_trace is not None:
                debug_trace.append((dispatch, exec_cycle, done, retire))

        # Scoreboard writeback from the static schedule: only each
        # register's final in-block writer is visible to later blocks.
        for reg, idx in decoded.final_writes:
            sb[reg] = done_cycles[idx]

        ports._ops = ports_ops
        self._rob_head = rob_head
        self._window_head = window_head
        self._last_store_cycle = last_store
        self._last_mem_done = last_mem_done
        self._fence_cycle = fence_cycle
        self._issue_clock = issue_clock
        self._issue_slots = issue_slots
        self._retire_clock = retire_clock
        self._retire_slots = retire_slots
        return syscall

    def _fetch_wrong_path(self, block, bbl_exec, branch_cycle):
        """A misprediction fetched down the wrong path until the branch
        resolved: touch the first line of the *not-followed* target,
        polluting the I-cache (wrong-path instructions never execute,
        matching the paper)."""
        # The path actually followed is bbl_exec.next_address; the wrong
        # path is the other side of the branch.
        if bbl_exec.taken:
            wrong = block.end_address       # fall-through not taken
        else:
            wrong = bbl_exec.next_address + block.num_bytes
        line_addr = wrong & ~(self._line_bytes - 1)
        self.wrong_path_fetches += 1
        result = self.mem.access(self.core_id, line_addr, False,
                                 branch_cycle, ifetch=True)
        # Wrong-path fetch latency is hidden by the recovery penalty;
        # only the cache-state side effects persist.
        self._record_trace(branch_cycle, result)

    # ------------------------------------------------------------------

    def fill_stats(self, node):
        super().fill_stats(node)
        node.set("cond_branches", self.cond_branches)
        node.set("mispredicts", self.mispredicts)
        node.set("forwarded_loads", self.forwarded_loads)
        node.set("wrong_path_fetches", self.wrong_path_fetches)
        node.set("lsd_streams", self.lsd_streams)

    @property
    def branch_mpki(self):
        if self.instrs == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.instrs
