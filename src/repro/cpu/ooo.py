"""Instruction-driven out-of-order core model (the paper's Figure 1).

The model closely follows the Westmere microarchitecture the paper
validates against: branch prediction with fixed-penalty recovery,
instruction fetch with L1I misses, length-predecoder and 4-1-1-1 decoder
stalls (precomputed per block by the decoder), macro-op fusion, limited
issue width, dataflow execution with a register scoreboard, exact µop
port masks and latencies with functional-unit (port) contention, a
load-store unit with store-to-load forwarding, TSO store ordering and
fences, and a reorder buffer of limited size and width.

It is *instruction-driven*: the core model is called once per µop and
simulates all stages for that µop by advancing per-stage clocks
(fetch / decode / issue / retire), rather than maintaining per-cycle
pipeline state.  Interdependencies between stage clocks (ROB fill, issue
stalls, mispredictions, I-cache misses) keep the timing honest.

Deliberate simplifications, matching the paper: wrong-path instructions
are not executed (only their fetch penalty is modeled, since Westmere
recovers in a fixed number of cycles); there is no BTB model
(unconditional branches never mispredict); stores access the memory
system at their store-address execution cycle.
"""

from __future__ import annotations

from repro.cpu.base import Core, RunOutcome, iter_fetch_lines
from repro.cpu.bpred import BranchPredictor
from repro.isa.registers import NUM_REGS
from repro.isa.uops import UopType


class PortWindow:
    """Tracks execution-port occupancy over future cycles.

    A µop scheduled with mask M lands at the first cycle >= its dispatch
    cycle that has a free port in M ("schedule in first cycle >
    dispatchCycle that has a free port compatible with uop ports").
    """

    PRUNE_PERIOD = 4096

    def __init__(self):
        self._used = {}
        self._ops = 0
        self._prune_before = 0

    def schedule(self, min_cycle, portmask):
        used = self._used
        cycle = min_cycle
        while True:
            occupancy = used.get(cycle, 0)
            free = portmask & ~occupancy
            if free:
                used[cycle] = occupancy | (free & -free)
                self._ops += 1
                if self._ops >= self.PRUNE_PERIOD:
                    self._prune(min_cycle)
                return cycle
            cycle += 1

    def _prune(self, horizon):
        self._ops = 0
        if horizon <= self._prune_before:
            return
        self._used = {c: m for c, m in self._used.items() if c >= horizon}
        self._prune_before = horizon


class OOOCore(Core):
    """Westmere-class OOO core with instruction-driven timing."""

    def __init__(self, core_id, mem, config):
        super().__init__(core_id, mem, config)
        self.bpred = BranchPredictor(config.bpred)
        self._fetch_clock = 0
        self._decode_clock = 0
        self._issue_clock = 0
        self._issue_slots = 0       # µops issued at _issue_clock
        self._retire_clock = 0
        self._retire_slots = 0
        self._scoreboard = [0] * NUM_REGS
        self._ports = PortWindow()
        self._rob = []              # ring of retire cycles
        self._rob_head = 0
        self._window = []           # ring of exec cycles (issue window)
        self._window_head = 0
        self._store_buffer = {}     # word addr -> data ready cycle
        self._store_order = []      # FIFO of (word, done) for SQ capacity
        self._load_releases = []    # FIFO of load done cycles (LQ capacity)
        self._last_store_cycle = 0  # TSO: stores execute in order
        self._last_mem_done = 0     # completion of latest memory op
        self._fence_cycle = 0
        self._line_bytes = 64
        self._last_fetch_line = -1
        self._mispredict_resume = 0
        self._lsd_recent = []       # (bbl_id, uops) of recent blocks
        self.lsd_streams = 0
        self.cond_branches = 0
        self.mispredicts = 0
        self.forwarded_loads = 0
        self.wrong_path_fetches = 0
        #: When set to a list, every µop appends a
        #: (dispatch, exec, done, retire) tuple — used by pipeline
        #: invariant tests; None (default) costs nothing.
        self.debug_trace = None

    # ------------------------------------------------------------------

    @property
    def cycle(self):
        return self._retire_clock

    def apply_delay(self, delay):
        if delay < 0:
            raise ValueError("Weave delay must be >= 0, got %d" % delay)
        self._fetch_clock += delay
        self._decode_clock += delay
        self._issue_clock += delay
        self._retire_clock += delay

    def skip_to(self, cycle):
        for attr in ("_fetch_clock", "_decode_clock", "_issue_clock",
                     "_retire_clock"):
            if getattr(self, attr) < cycle:
                setattr(self, attr, cycle)

    # ------------------------------------------------------------------

    def run_until(self, limit_cycle):
        if self.stream is None:
            return RunOutcome.BLOCKED
        while self._retire_clock < limit_cycle:
            try:
                decoded, bbl_exec = next(self.stream)
            except StopIteration:
                return RunOutcome.DONE
            syscall = self._simulate_bbl(decoded, bbl_exec)
            if syscall is not None:
                self.pending_syscall = syscall
                return RunOutcome.SYSCALL
        return RunOutcome.LIMIT

    # ------------------------------------------------------------------

    def _simulate_bbl(self, decoded, bbl_exec):
        block = decoded.block
        self.bbls += 1
        self.instrs += block.num_instrs
        self.uops += decoded.num_uops

        # Loop stream detector: a tight loop (the same small block
        # repeating) replays µops from the queue, skipping fetch and
        # decode entirely.
        lsd_hit = False
        if self.config.loop_stream_detector:
            recent = self._lsd_recent
            # The loop body is everything since the previous occurrence
            # of this block; it streams if it fits the µop queue.
            for idx in range(len(recent) - 1, -1, -1):
                if recent[idx][0] == block.bbl_id:
                    loop_uops = (sum(u for _b, u in recent[idx + 1:])
                                 + decoded.num_uops)
                    if loop_uops <= self.config.lsd_max_uops:
                        lsd_hit = True
                        self.lsd_streams += 1
                    break
            recent.append((block.bbl_id, decoded.num_uops))
            if len(recent) > 4:
                del recent[0]

        # (1) IFetch + BPred: adjust fetchClock.
        fetch = self._fetch_clock
        if self._mispredict_resume > fetch:
            fetch = self._mispredict_resume
            lsd_hit = False  # mispredicts flush the µop queue
        self._mispredict_resume = 0
        if not lsd_hit:
            for line_addr in iter_fetch_lines(block.address,
                                              block.num_bytes,
                                              self._line_bytes):
                if line_addr != self._last_fetch_line:
                    self._last_fetch_line = line_addr
                    result = self.mem.access(self.core_id, line_addr,
                                             False, fetch, ifetch=True)
                    self._account_access(result, ifetch=True)
                    if result.missed_levels:
                        fetch += result.latency
                    self._record_trace(fetch, result)
        self._fetch_clock = fetch

        # (2.1) Decoder stalls: adjust decodeClock (skipped when the
        # LSD streams the loop from the µop queue).
        decode = max(self._decode_clock + 1, fetch + 1)
        if not lsd_hit:
            decode += decoded.decode_cycles - 1
        self._decode_clock = decode

        syscall = None
        addrs = bbl_exec.addrs
        sb = self._scoreboard
        issue_width = self.config.issue_width
        retire_width = self.config.retire_width
        rob_size = self.config.rob_size
        window_size = self.config.issue_window_size

        if self._issue_clock < decode:
            self._issue_clock = decode
            self._issue_slots = 0

        for uop in decoded.uops:
            # (2.3) Issue width: adjust issueClock.
            if self._issue_slots >= issue_width:
                self._issue_clock += 1
                self._issue_slots = 0
            self._issue_slots += 1
            dispatch = self._issue_clock
            if dispatch < decode:
                dispatch = decode

            # ROB capacity: stall issue until the head-of-line µop
            # retires when the ROB is full.
            rob = self._rob
            if len(rob) - self._rob_head >= rob_size:
                head_retire = rob[self._rob_head]
                self._rob_head += 1
                if self._rob_head > 8192:
                    del rob[:self._rob_head]
                    self._rob_head = 0
                if head_retire > dispatch:
                    dispatch = head_retire
                    self._issue_clock = head_retire
                    self._issue_slots = 1

            # Issue-window capacity: oldest unexecuted µop must leave.
            window = self._window
            if len(window) - self._window_head >= window_size:
                head_exec = window[self._window_head]
                self._window_head += 1
                if self._window_head > 8192:
                    del window[:self._window_head]
                    self._window_head = 0
                if head_exec > dispatch:
                    dispatch = head_exec

            # (2.2) Minimum execution cycle from the scoreboard.
            exec_min = dispatch
            src = uop.src1
            if src >= 0 and sb[src] > exec_min:
                exec_min = sb[src]
            src = uop.src2
            if src >= 0 and sb[src] > exec_min:
                exec_min = sb[src]

            utype = uop.type
            done = None
            if utype == UopType.LOAD:
                exec_min, done, exec_cycle = self._exec_load(
                    uop, addrs, exec_min)
            elif utype == UopType.STORE_ADDR:
                exec_min, done, exec_cycle = self._exec_store(
                    uop, addrs, exec_min)
            elif utype == UopType.FENCE:
                # A full fence orders *all* prior memory operations.
                fence_min = max(exec_min, self._last_store_cycle,
                                self._last_mem_done)
                exec_cycle = self._ports.schedule(fence_min, uop.ports)
                done = exec_cycle + uop.lat
                self._fence_cycle = done
            else:
                # (2.4) Schedule on a compatible free port.
                exec_cycle = self._ports.schedule(exec_min, uop.ports)
                done = exec_cycle + uop.lat
                if utype == UopType.SYSCALL:
                    syscall = bbl_exec.syscall or True
                elif utype == UopType.BRANCH and decoded.conditional:
                    self.cond_branches += 1
                    correct = self.bpred.predict_and_update(
                        block.address, bbl_exec.taken)
                    if not correct:
                        self.mispredicts += 1
                        self._mispredict_resume = (
                            exec_cycle + self.bpred.mispredict_penalty)
                        if self.config.wrong_path_fetch:
                            self._fetch_wrong_path(block, bbl_exec,
                                                   exec_cycle)

            # (2.6) Write back destinations to the scoreboard.
            dst = uop.dst1
            if dst >= 0:
                sb[dst] = done
            dst = uop.dst2
            if dst >= 0:
                sb[dst] = done
            window.append(exec_cycle)

            # (2.7) Retire: account ROB width, adjust retireClock.
            retire = done + 1
            if retire <= self._retire_clock:
                retire = self._retire_clock
                self._retire_slots += 1
                if self._retire_slots >= retire_width:
                    self._retire_clock += 1
                    self._retire_slots = 0
            else:
                self._retire_clock = retire
                self._retire_slots = 1
            rob.append(retire)
            if self.debug_trace is not None:
                self.debug_trace.append((dispatch, exec_cycle, done,
                                         retire))

        return syscall

    def _fetch_wrong_path(self, block, bbl_exec, branch_cycle):
        """A misprediction fetched down the wrong path until the branch
        resolved: touch the first line of the *not-followed* target,
        polluting the I-cache (wrong-path instructions never execute,
        matching the paper)."""
        # The path actually followed is bbl_exec.next_address; the wrong
        # path is the other side of the branch.
        if bbl_exec.taken:
            wrong = block.end_address       # fall-through not taken
        else:
            wrong = bbl_exec.next_address + block.num_bytes
        line_addr = wrong & ~(self._line_bytes - 1)
        self.wrong_path_fetches += 1
        result = self.mem.access(self.core_id, line_addr, False,
                                 branch_cycle, ifetch=True)
        # Wrong-path fetch latency is hidden by the recovery penalty;
        # only the cache-state side effects persist.
        self._record_trace(branch_cycle, result)

    # ------------------------------------------------------------------

    def _exec_load(self, uop, addrs, exec_min):
        self.loads += 1
        addr = addrs[uop.mem_slot]
        if self._fence_cycle > exec_min:
            exec_min = self._fence_cycle
        # Load-queue capacity.
        releases = self._load_releases
        if len(releases) >= self.config.load_queue_size:
            head = releases.pop(0)
            if head > exec_min:
                exec_min = head
        exec_cycle = self._ports.schedule(exec_min, uop.ports)
        word = addr >> 3
        ready = self._store_buffer.get(word)
        if ready is not None:
            # Store-to-load forwarding: bypass the memory system.
            self.forwarded_loads += 1
            done = max(exec_cycle, ready) + 1
        else:
            result = self.mem.access(self.core_id, addr, False, exec_cycle)
            self._account_access(result)
            self._record_trace(exec_cycle, result)
            done = exec_cycle + result.latency
        releases.append(done)
        if done > self._last_mem_done:
            self._last_mem_done = done
        return exec_min, done, exec_cycle

    def _exec_store(self, uop, addrs, exec_min):
        self.stores += 1
        addr = addrs[uop.mem_slot]
        if self._fence_cycle > exec_min:
            exec_min = self._fence_cycle
        # TSO: stores execute in program order.
        if self._last_store_cycle > exec_min:
            exec_min = self._last_store_cycle
        # Store-queue capacity.
        order = self._store_order
        if len(order) >= self.config.store_queue_size:
            word_old, done_old = order.pop(0)
            if self._store_buffer.get(word_old) == done_old:
                del self._store_buffer[word_old]
            if done_old > exec_min:
                exec_min = done_old
        exec_cycle = self._ports.schedule(exec_min, uop.ports)
        self._last_store_cycle = exec_cycle
        result = self.mem.access(self.core_id, addr, True, exec_cycle)
        self._account_access(result)
        self._record_trace(exec_cycle, result)
        done = exec_cycle + max(1, uop.lat)
        if done + result.latency > self._last_mem_done:
            self._last_mem_done = done + result.latency
        word = addr >> 3
        self._store_buffer[word] = done + result.latency
        order.append((word, done + result.latency))
        return exec_min, done, exec_cycle

    # ------------------------------------------------------------------

    def fill_stats(self, node):
        super().fill_stats(node)
        node.set("cond_branches", self.cond_branches)
        node.set("mispredicts", self.mispredicts)
        node.set("forwarded_loads", self.forwarded_loads)
        node.set("wrong_path_fetches", self.wrong_path_fetches)
        node.set("lsd_streams", self.lsd_streams)

    @property
    def branch_mpki(self):
        if self.instrs == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.instrs
