"""Two-level branch predictor with an idealized BTB.

The paper's OOO frontend models "a 2-level branch predictor with an
idealized BTB": targets are always known (unconditional branches never
mispredict), and conditional direction is predicted from a global history
register XOR-folded with the branch PC into a pattern history table of
2-bit saturating counters (gshare).  Westmere recovers from a
misprediction in a fixed number of cycles, so the penalty is a constant.
"""

from __future__ import annotations


class BranchPredictor:
    """gshare: global history XOR PC -> 2-bit counter table."""

    def __init__(self, config):
        self.history_bits = config.history_bits
        self.table_size = config.table_size
        if self.table_size & (self.table_size - 1):
            raise ValueError("PHT size must be a power of two")
        self.mispredict_penalty = config.mispredict_penalty
        self._mask = self.table_size - 1
        self._history = 0
        self._history_mask = (1 << self.history_bits) - 1
        # 2-bit counters, initialized weakly taken.
        self._pht = [2] * self.table_size
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc):
        return ((pc >> 2) ^ self._history) & self._mask

    def predict_and_update(self, pc, taken):
        """Predict the branch at ``pc``, update state with the actual
        outcome ``taken``, and return True iff the prediction was
        correct."""
        idx = self._index(pc)
        counter = self._pht[idx]
        prediction = counter >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if counter < 3:
                self._pht[idx] = counter + 1
        elif counter > 0:
            self._pht[idx] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask
        return correct

    @property
    def mpki_numerator(self):
        return self.mispredictions

    def reset(self):
        self._history = 0
        self._pht = [2] * self.table_size
        self.predictions = 0
        self.mispredictions = 0
