"""Core timing models: IPC1 and instruction-driven OOO."""

from repro.cpu.base import Core, RunOutcome
from repro.cpu.bpred import BranchPredictor
from repro.cpu.ooo import OOOCore, PortWindow
from repro.cpu.simple import SimpleCore


def make_core(core_id, mem, config):
    """Instantiate the configured core model."""
    if config.model == "simple":
        return SimpleCore(core_id, mem, config)
    if config.model == "ooo":
        return OOOCore(core_id, mem, config)
    raise ValueError("Unknown core model: %r" % (config.model,))


__all__ = [
    "BranchPredictor",
    "Core",
    "OOOCore",
    "PortWindow",
    "RunOutcome",
    "SimpleCore",
    "make_core",
]
