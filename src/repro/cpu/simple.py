"""Simple core model: IPC = 1 for everything but memory accesses.

The paper's fast model: "the timing model simply keeps a cycle count,
instruction count, and drives the memory hierarchy.  Instruction fetches,
loads, and stores are simulated at their appropriate cycles by calling
into the cache models, and their delays are accounted in the core's cycle
count."
"""

from __future__ import annotations

from repro.cpu.base import Core, RunOutcome, iter_fetch_lines
from repro.isa.uops import UopType


class SimpleCore(Core):
    """IPC1 core: one cycle per instruction plus memory latencies."""

    def __init__(self, core_id, mem, config):
        super().__init__(core_id, mem, config)
        self._cycle = 0
        self._line_bytes = 64
        self._last_fetch_line = -1

    @property
    def cycle(self):
        return self._cycle

    def run_until(self, limit_cycle):
        if self.stream is None:
            return RunOutcome.BLOCKED
        mem = self.mem
        core_id = self.core_id
        while self._cycle < limit_cycle:
            try:
                decoded, bbl_exec = next(self.stream)
            except StopIteration:
                return RunOutcome.DONE
            block = decoded.block
            self.bbls += 1
            self.instrs += block.num_instrs
            self.uops += decoded.num_uops
            # Instruction fetch: one L1I access per new line touched.
            for line_addr in iter_fetch_lines(block.address,
                                              block.num_bytes,
                                              self._line_bytes):
                if line_addr != self._last_fetch_line:
                    self._last_fetch_line = line_addr
                    result = mem.access(core_id, line_addr, False,
                                        self._cycle, ifetch=True)
                    self._account_access(result, ifetch=True)
                    if result.missed_levels:
                        self._cycle += result.latency
                    self._record_trace(self._cycle, result)
            # One cycle per instruction; memory µops add their latency.
            addrs = bbl_exec.addrs
            syscall = None
            for uop in decoded.uops:
                utype = uop.type
                if utype == UopType.LOAD or utype == UopType.STORE_ADDR:
                    write = utype == UopType.STORE_ADDR
                    if write:
                        self.stores += 1
                    else:
                        self.loads += 1
                    result = mem.access(core_id, addrs[uop.mem_slot],
                                        write, self._cycle)
                    self._account_access(result)
                    self._record_trace(self._cycle, result)
                    if result.missed_levels:
                        # L1 hits are covered by the instruction's own
                        # cycle; misses add their full latency.
                        self._cycle += result.latency
                elif utype == UopType.SYSCALL:
                    syscall = bbl_exec.syscall
            self._cycle += block.num_instrs
            if syscall is not None:
                self.pending_syscall = syscall
                return RunOutcome.SYSCALL
        return RunOutcome.LIMIT

    def apply_delay(self, delay):
        if delay < 0:
            raise ValueError("Weave delay must be >= 0, got %d" % delay)
        self._cycle += delay

    def skip_to(self, cycle):
        if cycle > self._cycle:
            self._cycle = cycle
