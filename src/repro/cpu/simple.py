"""Simple core model: IPC = 1 for everything but memory accesses.

The paper's fast model: "the timing model simply keeps a cycle count,
instruction count, and drives the memory hierarchy.  Instruction fetches,
loads, and stores are simulated at their appropriate cycles by calling
into the cache models, and their delays are accounted in the core's cycle
count."
"""

from __future__ import annotations

from repro.cpu.base import Core, RunOutcome


class SimpleCore(Core):
    """IPC1 core: one cycle per instruction plus memory latencies."""

    def __init__(self, core_id, mem, config):
        super().__init__(core_id, mem, config)
        self._cycle = 0
        self._line_bytes = 64
        self._last_fetch_line = -1

    @property
    def cycle(self):
        return self._cycle

    def run_until(self, limit_cycle):
        # Consumes only the flat schedule-once descriptor fields
        # (fetch_lines, mem_ops, has_syscall): no per-µop object walks.
        # Clocks live in locals and are written back on every exit; a
        # fault mid-run is recovered by the supervisor's snapshot
        # restore, never by reusing this core.
        stream = self.stream
        if stream is None:
            return RunOutcome.BLOCKED
        stream_next = stream.__next__
        mem_access = self.mem.access
        core_id = self.core_id
        trace_append = self.trace.append
        cycle = self._cycle
        last_line = self._last_fetch_line
        while cycle < limit_cycle:
            try:
                decoded, bbl_exec = stream_next()
            except StopIteration:
                self._cycle = cycle
                self._last_fetch_line = last_line
                return RunOutcome.DONE
            block = decoded.block
            self.bbls += 1
            self.instrs += block.num_instrs
            self.uops += decoded.num_uops
            # Instruction fetch: one L1I access per new line touched.
            for line_addr in decoded.fetch_lines:
                if line_addr != last_line:
                    last_line = line_addr
                    result = mem_access(core_id, line_addr, False,
                                        cycle, ifetch=True)
                    missed = result.missed_levels
                    if missed:
                        if "l1i" in missed:
                            self.l1i_misses += 1
                        if "l2" in missed:
                            self.l2_misses += 1
                        if "l3" in missed:
                            self.l3_misses += 1
                        cycle += result.latency
                    if result.steps or result.wbacks:
                        trace_append((cycle, result))
            # One cycle per instruction; memory µops add their latency.
            addrs = bbl_exec.addrs
            for mem_slot, write in decoded.mem_ops:
                if write:
                    self.stores += 1
                else:
                    self.loads += 1
                result = mem_access(core_id, addrs[mem_slot], write,
                                    cycle)
                missed = result.missed_levels
                # Data traces are stamped at the issue cycle, before
                # the miss latency lands (ifetch stamps after).
                if result.steps or result.wbacks:
                    trace_append((cycle, result))
                if missed:
                    if "l1d" in missed:
                        self.l1d_misses += 1
                    if "l2" in missed:
                        self.l2_misses += 1
                    if "l3" in missed:
                        self.l3_misses += 1
                    # L1 hits are covered by the instruction's own
                    # cycle; misses add their full latency.
                    cycle += result.latency
            cycle += block.num_instrs
            if decoded.has_syscall:
                syscall = bbl_exec.syscall
                if syscall is not None:
                    self.pending_syscall = syscall
                    self._cycle = cycle
                    self._last_fetch_line = last_line
                    return RunOutcome.SYSCALL
        self._cycle = cycle
        self._last_fetch_line = last_line
        return RunOutcome.LIMIT

    def integrity_items(self):
        yield from super().integrity_items()
        yield (self._cycle, self._last_fetch_line)

    def apply_delay(self, delay):
        if delay < 0:
            raise ValueError("Weave delay must be >= 0, got %d" % delay)
        self._cycle += delay

    def skip_to(self, cycle):
        if cycle > self._cycle:
            self._cycle = cycle
