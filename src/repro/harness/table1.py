"""Table 1: the simulator comparison matrix.

A static feature matrix — engine, parallelization, core/uncore detail,
and supported workload classes for each simulator the paper compares —
rendered by the Table 1 benchmark.  Kept as data (not prose) so tests
can assert the claims the rest of the reproduction depends on.
"""

from __future__ import annotations

from repro.stats.reporting import format_table

COLUMNS = ("Simulator", "Engine", "Parallelization", "Detailed core",
           "Detailed uncore", "Full system", "Multiprocess apps",
           "Managed apps")

ROWS = (
    ("gem5/MARSS", "Emulation", "Sequential", "OOO", "Yes", "Yes", "Yes",
     "Yes"),
    ("CMPSim", "DBT", "Limited skew", "No", "MPKI only", "No", "Yes",
     "No"),
    ("Graphite", "DBT", "Limited skew", "No", "Approx contention", "No",
     "No", "No"),
    ("Sniper", "DBT", "Limited skew", "Approx OOO", "Approx contention",
     "No", "Trace-driven only", "No"),
    ("HORNET", "Emulation", "PDES (p)", "No", "Yes", "No",
     "Trace-driven only", "No"),
    ("SlackSim", "Emulation", "PDES (o+p)", "OOO", "Yes", "No", "No",
     "No"),
    ("ZSim", "DBT", "Bound-weave", "DBT-based OOO", "Yes", "No", "Yes",
     "Yes"),
)


def feature_matrix():
    """The matrix as a list of dicts."""
    return [dict(zip(COLUMNS, row)) for row in ROWS]


def zsim_row():
    return dict(zip(COLUMNS, ROWS[-1]))


def render():
    """Render Table 1 as aligned text."""
    return format_table(COLUMNS, ROWS,
                        title="Table 1: Comparison of microarchitectural "
                              "simulators")
