"""Experiment harness: drivers regenerating the paper's tables/figures."""

from repro.harness import table1
from repro.harness.autointerval import (
    configured_with_interval,
    select_interval,
)
from repro.harness.roi import RoiTracker, roi_stream
from repro.harness.sampling import sampled_ipc
from repro.harness.sweeps import (
    SWEEP_NAMES,
    build_sweep,
    fig5_sweep,
    fig6_stream_sweep,
    mt_validation_sweep,
)
from repro.harness.performance import (
    MODEL_SETS,
    host_scalability,
    interval_sensitivity,
    model_grid,
    native_mips,
    simulate_mips,
    table4,
    target_scalability,
    with_core_model,
)
from repro.harness.validation import (
    mt_validation,
    run_real,
    run_zsim,
    spec_validation,
    speedup_curve,
    stream_scalability,
    validate_workload,
)

__all__ = [
    "MODEL_SETS",
    "RoiTracker",
    "SWEEP_NAMES",
    "build_sweep",
    "fig5_sweep",
    "fig6_stream_sweep",
    "mt_validation_sweep",
    "configured_with_interval",
    "roi_stream",
    "sampled_ipc",
    "select_interval",
    "host_scalability",
    "interval_sensitivity",
    "model_grid",
    "mt_validation",
    "native_mips",
    "run_real",
    "run_zsim",
    "simulate_mips",
    "spec_validation",
    "speedup_curve",
    "stream_scalability",
    "table1",
    "table4",
    "target_scalability",
    "validate_workload",
    "with_core_model",
]
