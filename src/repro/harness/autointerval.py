"""Automatic interval-length selection (Section 3.2's manual loop).

The paper: "We also profile accesses with path-altering interference
that are incorrectly reordered.  If this count is not negligible, we
(for now, manually) select a shorter interval."  This module automates
that loop: probe-run the workload with the interference profiler over
candidate interval lengths and pick the longest one whose *reordered*
fraction stays below the threshold.
"""

from __future__ import annotations

import dataclasses

from repro.core.interference import InterferenceProfiler
from repro.core.simulator import ZSim

DEFAULT_CANDIDATES = (1_000, 2_000, 5_000, 10_000, 50_000, 100_000)
#: "Not negligible" threshold on the reordered-access fraction.
DEFAULT_THRESHOLD = 1e-3


def select_interval(config, make_threads, candidates=DEFAULT_CANDIDATES,
                    threshold=DEFAULT_THRESHOLD, probe_instrs=30_000):
    """Pick the longest candidate interval whose reordered fraction is
    below ``threshold``.

    ``make_threads()`` must return a fresh thread list per call (the
    probe consumes one).  Returns ``(interval, fractions)`` where
    ``fractions`` maps each candidate to its reordered fraction.  The
    probe runs once, bound-phase only, at the *longest* candidate (the
    most permissive reordering), and the profiler classifies every
    shorter window from the same trace.
    """
    candidates = tuple(sorted(candidates))
    profiler = InterferenceProfiler(candidates)
    probe_config = dataclasses.replace(
        config, boundweave=dataclasses.replace(
            config.boundweave, interval_cycles=candidates[-1]))
    sim = ZSim(probe_config, threads=make_threads(),
               contention_model="none", profiler=profiler)
    sim.run(max_instrs=probe_instrs)
    fractions = {n: profiler.reordered_fraction(n) for n in candidates}
    chosen = candidates[0]
    for interval in candidates:
        if fractions[interval] <= threshold:
            chosen = interval
    return chosen, fractions


def configured_with_interval(config, interval):
    """Copy ``config`` with the chosen interval installed."""
    return dataclasses.replace(
        config, boundweave=dataclasses.replace(
            config.boundweave, interval_cycles=interval))
