"""Performance harness: simulator speed studies (Table 4, Figs 7-9).

Reports simulated MIPS (instructions simulated per wall-clock second) and
slowdown versus "native" execution — here, the speed of running the
functional stream alone with no timing models attached, the analogue of
the workload running natively under Pin with instrumentation stripped.

Absolute MIPS are Python-scale (3 orders of magnitude below the C++
original, see DESIGN.md); the reproduced claims are the *relative*
shapes: model-set ordering, memory-intensity effects, scaling curves.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.simulator import ZSim
from repro.stats.aggregate import hmean

#: The evaluation's four model sets (Figure 7, Table 4).
MODEL_SETS = (
    ("IPC1-NC", "simple", "none"),
    ("IPC1-C", "simple", "weave"),
    ("OOO-NC", "ooo", "none"),
    ("OOO-C", "ooo", "weave"),
)


def with_core_model(config, core_model):
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core, model=core_model))


def native_mips(workload, target_instrs, num_threads=None):
    """'Native' speed: consume the functional streams with no timing
    models (fast-forward path)."""
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=num_threads)
    start = time.perf_counter()
    total = 0
    for thread in threads:
        total += thread.stream.fast_forward(10 ** 12)
    elapsed = time.perf_counter() - start
    return total / elapsed / 1e6 if elapsed > 0 else 0.0


def simulate_mips(config, workload, target_instrs, core_model,
                  contention_model, num_threads=None):
    """Run one (workload, model set) combination; returns the result."""
    cfg = with_core_model(config, core_model)
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=num_threads)
    sim = ZSim(cfg, threads=threads, contention_model=contention_model)
    return sim.run()


def model_grid(config, workload, target_instrs, num_threads=None,
               model_sets=MODEL_SETS):
    """Table 4 / Figure 7 cell: MIPS and slowdown for each model set."""
    native = native_mips(workload, target_instrs, num_threads)
    rows = {}
    for label, core_model, contention in model_sets:
        res = simulate_mips(config, workload, target_instrs, core_model,
                            contention, num_threads)
        rows[label] = {
            "mips": res.mips,
            "slowdown": native / res.mips if res.mips > 0 else float("inf"),
            "cycles": res.cycles,
            "instrs": res.instrs,
        }
    rows["native_mips"] = native
    return rows


def table4(config, workloads, target_instrs, num_threads=None,
           model_sets=MODEL_SETS):
    """Table 4: per-workload MIPS/slowdown for every model set, plus the
    harmonic-mean summary column."""
    table = {}
    for workload in workloads:
        table[workload.name] = model_grid(config, workload, target_instrs,
                                          num_threads, model_sets)
    summary = {}
    for label, _cm, _ct in model_sets:
        mips_values = [table[w.name][label]["mips"] for w in workloads]
        natives = [table[w.name]["native_mips"] for w in workloads]
        summary[label] = {
            "hmean_mips": hmean(mips_values),
            "hmean_slowdown": hmean(natives) / hmean(mips_values),
        }
    return table, summary


def host_scalability(config, workload, target_instrs, num_threads=None,
                     host_threads=(1, 2, 4, 8, 16, 32),
                     core_model="simple", contention_model="weave"):
    """Figure 8: modeled speedup vs host threads (see HostModel)."""
    cfg = with_core_model(config, core_model)
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=num_threads)
    sim = ZSim(cfg, threads=threads, contention_model=contention_model,
               host_threads=host_threads)
    sim.run()
    return sim.host_model.speedup_curve()


def target_scalability(config_factory, sizes, workloads_factory,
                       target_instrs, model_sets=MODEL_SETS):
    """Figure 9: hmean MIPS vs simulated core count.

    ``config_factory(size)`` builds the chip; ``workloads_factory(size)``
    returns the workload list for that size.
    """
    curves = {label: [] for label, _c, _m in model_sets}
    for size in sizes:
        config = config_factory(size)
        workloads = workloads_factory(size)
        for label, core_model, contention in model_sets:
            mips_values = []
            for workload in workloads:
                res = simulate_mips(config, workload, target_instrs,
                                    core_model, contention,
                                    num_threads=config.num_cores)
                mips_values.append(max(res.mips, 1e-9))
            curves[label].append((size, hmean(mips_values)))
    return curves


def interval_sensitivity(config, workloads, target_instrs,
                         intervals=(1_000, 10_000, 100_000),
                         core_model="simple", num_threads=None):
    """Section 4.2: interval length vs accuracy and speed.

    Returns {interval: {"avg_abs_error", "max_abs_error", "speedup"}}
    with errors in simulated performance relative to the shortest
    interval, and speedup in wall-clock time relative to it too.
    """
    base_interval = intervals[0]
    runs = {}
    for interval in intervals:
        cfg = dataclasses.replace(
            with_core_model(config, core_model),
            boundweave=dataclasses.replace(config.boundweave,
                                           interval_cycles=interval))
        per_workload = {}
        for workload in workloads:
            res = simulate_mips(cfg, workload, target_instrs, core_model,
                                "weave", num_threads=num_threads)
            per_workload[workload.name] = res
        runs[interval] = per_workload
    out = {}
    base = runs[base_interval]
    for interval in intervals:
        errors = []
        wall_base = 0.0
        wall_this = 0.0
        for name, res in runs[interval].items():
            ref = base[name]
            errors.append(abs(res.cycles - ref.cycles) / ref.cycles)
            wall_base += ref.wall_seconds
            wall_this += res.wall_seconds
        out[interval] = {
            "avg_abs_error": sum(errors) / len(errors),
            "max_abs_error": max(errors),
            "speedup": wall_base / wall_this if wall_this > 0 else 1.0,
        }
    return out
