"""Canned sweep specs: the paper's figures as fleet campaigns.

Each builder returns the plain-dict sweep spec (see
:mod:`repro.fleet.spec`) for one of the validation figures, so the
crash-tolerant path to a figure is::

    repro fleet spec fig5 --out fig5.json
    repro fleet run fig5.json --dir campaigns/fig5
    # ... SIGKILL the box mid-campaign ...
    repro fleet resume campaigns/fig5

Every job lands its stats tree in the campaign directory; the figure is
then assembled from those trees offline — no state lives only in the
orchestrator process.  The ``seeds`` axis varies ``--seed-offset`` (the
workload RNG offset), turning any figure into a statistical sweep.
"""

from __future__ import annotations

from repro.workloads import MULTITHREADED, SPEC_CPU2006

#: Canned sweep names, in the order `repro fleet spec` advertises them.
SWEEP_NAMES = ("fig5", "fig6-stream", "mt-validation")


def _seed_axis(seeds):
    return list(range(max(1, int(seeds))))


def fig5_sweep(scale=1 / 32, instrs=25_000, limit=0, seeds=1):
    """Figure 5: every SPEC-like workload on the 1-core Westmere."""
    names = list(SPEC_CPU2006[:limit] if limit else SPEC_CPU2006)
    return {
        "name": "fig5",
        "defaults": {"config": "westmere", "cores": 1, "scale": scale,
                     "instrs": instrs, "contention": "weave"},
        "grid": {"workload": names, "seed": _seed_axis(seeds)},
    }


def fig6_stream_sweep(scale=1 / 32, instrs=25_000, limit=0, seeds=1):
    """Figure 6 (right): STREAM across thread counts and contention
    models on the OOO Westmere."""
    threads = (1, 2, 4, 6)
    if limit:
        threads = threads[:limit]
    return {
        "name": "fig6-stream",
        "defaults": {"config": "westmere", "core_model": "ooo",
                     "workload": "stream", "scale": scale,
                     "instrs": instrs},
        "grid": {"threads": list(threads),
                 "contention": ["none", "md1", "weave"],
                 "seed": _seed_axis(seeds)},
    }


def mt_validation_sweep(scale=1 / 32, instrs=25_000, limit=0, seeds=1):
    """Figure 6 (left): the multithreaded suites on the 6-core
    Westmere."""
    names = [n for n in MULTITHREADED if n != "stream"]
    if limit:
        names = names[:limit]
    return {
        "name": "mt-validation",
        "defaults": {"config": "westmere", "cores": 6, "scale": scale,
                     "instrs": instrs, "contention": "weave"},
        "grid": {"workload": names, "seed": _seed_axis(seeds)},
    }


_BUILDERS = {
    "fig5": fig5_sweep,
    "fig6-stream": fig6_stream_sweep,
    "mt-validation": mt_validation_sweep,
}


def build_sweep(name, scale=1 / 32, instrs=25_000, limit=0, seeds=1):
    """Build the named canned sweep spec dict."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError("unknown sweep %r (have: %s)"
                         % (name, ", ".join(SWEEP_NAMES)))
    return builder(scale=scale, instrs=instrs, limit=limit, seeds=seeds)
