"""SMARTS-style statistical sampling on top of fast-forwarding.

The paper (Section 2): "Robust statistical sampling and automated
techniques to simulate a small, representative portion of execution are
also widely used... These techniques are complementary and orthogonal to
the need for fast simulation."  This module provides that complement for
single-threaded workloads: alternate functional-only fast-forwarding
(the DBT substrate's close-to-native path) with short detailed measure
windows, then estimate whole-run IPC with a confidence interval.

Functional warming is approximated by a cache-warm window before each
measurement (accesses run through the timing hierarchy but are not
counted), the standard detailed-warmup variant of SMARTS.
"""

from __future__ import annotations

import dataclasses

from repro.core.simulator import ZSim
from repro.stats.aggregate import confidence_interval_95, mean


@dataclasses.dataclass
class SampleResult:
    """Outcome of one sampled simulation."""

    samples: list
    ff_instrs: int
    warm_instrs: int
    measure_instrs: int

    @property
    def ipc_estimate(self):
        return mean(self.samples)

    @property
    def ipc_ci95(self):
        return confidence_interval_95(self.samples)

    @property
    def relative_ci(self):
        est = self.ipc_estimate
        return self.ipc_ci95 / est if est else float("inf")


def sampled_ipc(config, make_thread, num_samples=10, ff_instrs=20_000,
                warm_instrs=2_000, measure_instrs=4_000):
    """Estimate a single-threaded workload's IPC by sampling.

    ``make_thread()`` must return a fresh, long-enough SimThread.  Each
    sample period is: fast-forward ``ff_instrs`` (no timing), run
    ``warm_instrs`` detailed-but-discarded, then measure
    ``measure_instrs``.  Returns a :class:`SampleResult`.
    """
    thread = make_thread()
    sim = ZSim(config, threads=[thread])
    core = sim.cores[0]
    samples = []
    for _ in range(num_samples):
        skipped = thread.stream.fast_forward(ff_instrs)
        if skipped < ff_instrs:
            break  # stream exhausted
        # Detached warmup: simulate, then discard the window.
        sim.run(max_instrs=core.instrs + warm_instrs)
        start_instrs, start_cycle = core.instrs, core.cycle
        sim.run(max_instrs=start_instrs + measure_instrs)
        d_instrs = core.instrs - start_instrs
        d_cycles = core.cycle - start_cycle
        if d_cycles > 0 and d_instrs > 0:
            samples.append(d_instrs / d_cycles)
        if sim.scheduler.all_done:
            break
    return SampleResult(samples, ff_instrs, warm_instrs, measure_instrs)
