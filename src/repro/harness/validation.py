"""Validation harness: zsim vs the reference machine (Figures 5 and 6).

Reproduces the paper's accuracy methodology: run each workload on the
detailed zsim models and on the golden reference machine (same models +
TLBs, finest interval), then compare IPC / perf and per-level MPKIs.
"""

from __future__ import annotations

from repro.baselines.reference import reference_simulator
from repro.core.simulator import ZSim
from repro.workloads.multithreaded import default_threads, mt_workload
from repro.workloads.spec_cpu import SPEC_CPU2006, spec_workload

CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")


def run_zsim(config, workload, target_instrs, contention_model="weave",
             num_threads=None, seed_offset=0):
    """One zsim run of a workload; returns the SimulationResult."""
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=num_threads,
                                    seed_offset=seed_offset)
    sim = ZSim(config, threads=threads, contention_model=contention_model)
    return sim.run()


def run_real(config, workload, target_instrs, num_threads=None,
             seed_offset=0):
    """One reference-machine ("real") run; returns (result, tlb_mem)."""
    threads = workload.make_threads(target_instrs=target_instrs,
                                    num_threads=num_threads,
                                    seed_offset=seed_offset)
    sim = reference_simulator(config, threads)
    return sim.run(), sim.tlb_memory


def validate_workload(config, workload, target_instrs=100_000,
                      num_threads=None):
    """Compare zsim vs real on one workload.

    Returns a dict with ipc/perf for both, the relative performance
    error, absolute MPKI errors per cache level, branch MPKI error, and
    the reference machine's TLB MPKI (the paper's error explainer).
    """
    zres = run_zsim(config, workload, target_instrs,
                    num_threads=num_threads)
    rres, tlb = run_real(config, workload, target_instrs,
                         num_threads=num_threads)
    row = {
        "name": workload.name,
        "ipc_zsim": zres.ipc,
        "ipc_real": rres.ipc,
        "perf_error": (zres.ipc - rres.ipc) / rres.ipc,
        "cycles_zsim": zres.cycles,
        "cycles_real": rres.cycles,
        "branch_mpki_real": rres.branch_mpki(),
        "branch_mpki_err": zres.branch_mpki() - rres.branch_mpki(),
        "tlb_mpki": 1000.0 * sum(t.misses for t in tlb.dtlbs)
        / max(1, rres.instrs),
    }
    for level in CACHE_LEVELS:
        row["%s_mpki_real" % level] = rres.core_mpki(level)
        row["%s_mpki_err" % level] = (zres.core_mpki(level)
                                      - rres.core_mpki(level))
    return row


def spec_validation(config, names=SPEC_CPU2006, scale=1.0 / 32,
                    target_instrs=60_000):
    """Figure 5: per-SPEC-workload validation rows, sorted by |error|."""
    rows = [validate_workload(config, spec_workload(name, scale),
                              target_instrs)
            for name in names]
    rows.sort(key=lambda r: abs(r["perf_error"]))
    return rows


def mt_validation(config, names, scale=1.0 / 32, target_instrs=120_000):
    """Figure 6 (left): multithreaded perf error rows.

    Performance is measured as 1/time (not IPC), per the paper.
    """
    rows = []
    for name in names:
        workload = mt_workload(name, scale)
        n = default_threads(name)
        zres = run_zsim(config, workload, target_instrs, num_threads=n)
        rres, _tlb = run_real(config, workload, target_instrs,
                              num_threads=n)
        rows.append({
            "name": "%s-%dt" % (name, n),
            "perf_zsim": 1.0 / zres.cycles,
            "perf_real": 1.0 / rres.cycles,
            "perf_error": (rres.cycles - zres.cycles) / zres.cycles,
            "l1d_mpki_err": (zres.core_mpki("l1d")
                             - rres.core_mpki("l1d")),
            "l3_mpki_err": zres.core_mpki("l3") - rres.core_mpki("l3"),
        })
    rows.sort(key=lambda r: r["perf_error"])
    return rows


def speedup_curve(config_factory, name, thread_counts, scale=1.0 / 32,
                  target_instrs=120_000, simulator="zsim",
                  warmup_instrs=15_000):
    """Figure 6 (middle): parallel speedup of one workload vs threads.

    ``config_factory(num_cores)`` builds the system; speedup is relative
    to the single-thread run, with total work held constant.  Following
    the paper's methodology ("we simulate parallel regions only"), each
    thread first executes ``warmup_instrs`` to warm its caches/TLBs; the
    measured region starts afterwards.
    """
    base_cycles = None
    points = []
    for n in thread_counts:
        workload = mt_workload(name, scale, num_threads=n)
        config = config_factory(max(n, 1))
        per_thread = warmup_instrs + max(1_000, target_instrs // n)
        threads = workload.make_threads(
            target_instrs=per_thread * n, num_threads=n)
        if simulator == "zsim":
            sim = ZSim(config, threads=threads)
        else:
            sim = reference_simulator(config, threads)
        # Warm up, then measure the region of interest.
        sim.run(max_instrs=warmup_instrs * n)
        start_cycle = max(core.cycle for core in sim.cores)
        res = sim.run()
        cycles = max(1, res.cycles - start_cycle)
        if base_cycles is None:
            base_cycles = cycles
        points.append((n, base_cycles / cycles))
    return points


def stream_scalability(config_factory, thread_counts, scale=1.0 / 32,
                       target_instrs=120_000,
                       models=("none", "md1", "weave", "dramsim")):
    """Figure 6 (right): STREAM scalability under contention models,
    plus the reference machine.  Returns {model: [(threads, speedup)]}.
    """
    curves = {}
    for model in models:
        base = None
        points = []
        for n in thread_counts:
            workload = mt_workload("stream", scale, num_threads=n)
            threads = workload.make_threads(target_instrs=target_instrs,
                                            num_threads=n)
            sim = ZSim(config_factory(max(n, 1)), threads=threads,
                       contention_model=model)
            res = sim.run()
            if base is None:
                base = res.cycles
            points.append((n, base / res.cycles))
        curves[model] = points
    base = None
    points = []
    for n in thread_counts:
        workload = mt_workload("stream", scale, num_threads=n)
        res, _ = run_real(config_factory(max(n, 1)), workload,
                          target_instrs, num_threads=n)
        if base is None:
            base = res.cycles
        points.append((n, base / res.cycles))
    curves["real"] = points
    return curves
