"""Region-of-interest control via magic ops (GEMS-style, Section 3.3).

"Simulated code can communicate with zsim via magic ops, special NOP
sequences never emitted by compilers that are identified at
instrumentation time."  The canonical use is marking the region of
interest: statistics outside ROI_BEGIN/ROI_END are discarded.

:class:`RoiTracker` watches the magic ops of every thread and snapshots
per-core counters at the boundaries; :func:`roi_stream` wraps a
functional stream with the marker blocks.
"""

from __future__ import annotations

from repro.dbt.instrumentation import MagicOp
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program


_MAGIC_PROGRAM = Program("roi-magic", code_base=0x3F_0000)
_MAGIC_BLOCK = _MAGIC_PROGRAM.add_block([Instruction(Opcode.MAGIC)])


def roi_begin_exec():
    return BBLExec(_MAGIC_BLOCK, (), syscall=MagicOp.ROI_BEGIN)


def roi_end_exec():
    return BBLExec(_MAGIC_BLOCK, (), syscall=MagicOp.ROI_END)


def roi_stream(stream, warmup_stream=None):
    """Wrap ``stream`` in ROI markers, optionally after a warmup."""
    if warmup_stream is not None:
        yield from warmup_stream
    yield roi_begin_exec()
    yield from stream
    yield roi_end_exec()


class RoiTracker:
    """Snapshots per-core work at ROI boundaries.

    Attach to a simulator with :meth:`attach`; it hooks every thread's
    instrumented stream's magic handler.  ROI is chip-wide: the first
    ROI_BEGIN opens it, the last ROI_END closes it (like zsim's
    process-wide ffwd toggling).
    """

    def __init__(self, sim):
        self.sim = sim
        self.begin = None      # (cycle, instrs) at ROI begin
        self.end = None
        self._open = 0

    def attach(self):
        for thread in self.sim.scheduler.threads:
            thread.stream.magic_handler = self._on_magic
        return self

    def _snapshot(self):
        cores = self.sim.cores
        return (max(c.cycle for c in cores),
                sum(c.instrs for c in cores))

    def _on_magic(self, bbl_exec):
        op = bbl_exec.syscall
        if op == MagicOp.ROI_BEGIN:
            if self._open == 0:
                self.begin = self._snapshot()
            self._open += 1
        elif op == MagicOp.ROI_END:
            self._open -= 1
            if self._open == 0:
                self.end = self._snapshot()

    @property
    def roi_cycles(self):
        if self.begin is None:
            return 0
        end = self.end or self._snapshot()
        return max(0, end[0] - self.begin[0])

    @property
    def roi_instrs(self):
        if self.begin is None:
            return 0
        end = self.end or self._snapshot()
        return max(0, end[1] - self.begin[1])

    @property
    def roi_ipc(self):
        cycles = self.roi_cycles
        return self.roi_instrs / cycles if cycles else 0.0
