"""Crash-tolerant experiment campaigns.

``repro.fleet`` turns a JSON sweep spec (config × workload × seed grid)
into a campaign of subprocess-isolated ``repro run`` jobs executed under
a durable write-ahead journal.  The package guarantee: with workers
*and* the orchestrator SIGKILLed at arbitrary points, ``repro fleet
resume`` completes every non-quarantined job exactly once, re-runs no
completed job, and every job's stats tree is byte-identical (modulo the
``host`` section) to a serial in-process run of the same spec.

Layering: :mod:`~repro.fleet.spec` expands the grid,
:mod:`~repro.fleet.journal` persists transitions,
:mod:`~repro.fleet.monitor` publishes campaign status through the
:mod:`repro.obs.monitor` machinery, and
:mod:`~repro.fleet.orchestrator` runs the show — leaning on
:mod:`repro.resilience` for backoff and per-job checkpoint resume.
"""

from repro.fleet.journal import (DEFAULT_ROTATE_BYTES, Journal,
                                 read_journal)
from repro.fleet.monitor import FleetMonitor
from repro.fleet.orchestrator import (EXIT_DRAINED, FleetOrchestrator,
                                      JobState)
from repro.fleet.spec import JobSpec, SweepSpec, load_spec

__all__ = [
    "DEFAULT_ROTATE_BYTES",
    "EXIT_DRAINED",
    "FleetMonitor",
    "FleetOrchestrator",
    "JobSpec",
    "JobState",
    "Journal",
    "SweepSpec",
    "load_spec",
    "read_journal",
]
