"""The fleet orchestrator: crash-tolerant execution of a sweep spec.

Runs every job of a :class:`~repro.fleet.spec.SweepSpec` as its own
``repro run`` subprocess — N at a time — and survives everything the
runs survive, including its own death:

* **Durability.**  Every job transition is written ahead to the
  :class:`~repro.fleet.journal.Journal`; ``repro fleet resume`` replays
  it, re-enqueues only incomplete jobs, and never re-runs a completed
  one (its stats tree sits untouched in the job directory).
* **Per-job robustness.**  A wall-clock timeout sends SIGTERM — the
  run's graceful-stop path writes a final checkpoint and exits 75 — and
  escalates to SIGKILL after a grace period.  Failed or killed attempts
  retry after a seeded decorrelated-jitter backoff
  (:class:`~repro.resilience.backoff.DecorrelatedJitter`), resuming
  from the job's own checkpoint directory so retries never restart
  from zero.
* **Quarantine circuit breaker.**  ``quarantine_after`` consecutive
  attempts *without checkpoint progress* park the job (recording its
  post-mortem capsules) instead of burning the fleet's retry budget; a
  job that keeps progressing between timeouts keeps its full budget.
* **Graceful drain.**  SIGTERM/SIGINT to the orchestrator SIGTERMs the
  in-flight jobs, journals their stopped attempts, publishes a final
  status snapshot, and exits 75 — resumable, like everything else.

Subprocess isolation is the point: a job that segfaults the
interpreter, leaks memory until the OOM killer arrives, or wedges a
worker pool costs exactly one attempt of one job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import zlib

from repro.errors import CheckpointError, FleetError, JobQuarantined
from repro.fleet.journal import Journal, read_journal
from repro.fleet.monitor import FleetMonitor
from repro.fleet.spec import SweepSpec
from repro.obs.log import get_logger
from repro.obs.monitor import write_status_json
from repro.resilience.backoff import DecorrelatedJitter
from repro.resilience.checkpoint import checkpoints, read_checkpoint

_log = get_logger("fleet.orchestrator")

#: Exit status for a drained (resumable) campaign — same convention as
#: ``repro run``'s wall-budget stop.
EXIT_DRAINED = 75

#: Job exit codes the orchestrator treats as a graceful, resumable stop
#: (the run's wall-budget/SIGTERM path).
_EXIT_STOPPED = 75


class JobState:
    """Mutable per-job bookkeeping (the journal is the durable copy)."""

    def __init__(self, spec, jitter):
        self.spec = spec
        self.state = "pending"   # pending|running|done|quarantined
        self.attempts = 0
        self.consecutive = 0     # attempts without checkpoint progress
        self.last_exit = None
        self.backoff_until = 0.0
        self.progress_interval = -1
        self.jitter = jitter
        # Live-attempt fields (None while not running).
        self.proc = None
        self.log_fh = None
        self.started_at = None
        self.deadline = None
        self.term_sent_at = None
        #: Pid recorded by a replayed ``start`` with no matching exit:
        #: a possibly-still-alive orphan from a killed orchestrator.
        self.orphan_pid = None

    @property
    def job_id(self):
        return self.spec.job_id


class FleetOrchestrator:
    """One campaign: a sweep spec executed under a durable journal."""

    def __init__(self, directory, spec_data=None, resume=False,
                 workers=2, quarantine_after=3, job_timeout_s=None,
                 term_grace_s=10.0, backoff_base_s=0.5,
                 checkpoint_every=2, status_port=None, seed=0,
                 retry_quarantined=False, rotate_bytes=None,
                 poll_s=0.05, python=None):
        self.directory = str(directory)
        self.workers = max(1, int(workers))
        self.quarantine_after = max(1, int(quarantine_after))
        self.job_timeout_s = job_timeout_s
        self.term_grace_s = max(0.5, float(term_grace_s))
        self.backoff_base_s = max(0.0, float(backoff_base_s))
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.seed = int(seed)
        self.retry_quarantined = bool(retry_quarantined)
        self.poll_s = max(0.01, float(poll_s))
        self.python = python or sys.executable
        self.resumed = bool(resume)
        self._stop_requested = None
        self._dirty = True
        self._last_publish = 0.0
        os.makedirs(os.path.join(self.directory, "jobs"), exist_ok=True)

        spec_path = os.path.join(self.directory, "spec.json")
        journal_path = os.path.join(self.directory, "journal.jsonl")
        if resume:
            if spec_data is not None:
                raise FleetError("resume re-reads the campaign's saved "
                                 "spec; do not pass a new one")
            try:
                with open(spec_path) as fh:
                    spec_data = json.load(fh)
            except (OSError, ValueError) as exc:
                raise FleetError(
                    "%s is not a resumable campaign directory (no "
                    "readable spec.json: %s)"
                    % (self.directory, exc)) from exc
        else:
            if spec_data is None:
                raise FleetError("a new campaign needs a sweep spec")
            if os.path.exists(journal_path):
                raise FleetError(
                    "%s already holds a campaign journal; use "
                    "`repro fleet resume %s` (or a fresh directory)"
                    % (self.directory, self.directory))
        self.spec = SweepSpec.from_dict(spec_data)
        if not resume:
            # The saved spec is what resume replays against: job ids
            # are derived from it, so it must be the exact dict.
            write_status_json(spec_path, spec_data)

        self.jobs = {}
        for job in self.spec.jobs:
            jitter = DecorrelatedJitter(
                self.backoff_base_s,
                seed=self.seed ^ zlib.crc32(job.job_id.encode()))
            self.jobs[job.job_id] = JobState(job, jitter)

        self.journal = Journal(
            journal_path,
            **({"rotate_bytes": rotate_bytes}
               if rotate_bytes is not None else {}))
        if resume:
            records, skipped = read_journal(journal_path)
            self._replay(records)
            if skipped:
                _log.warning("journal replay skipped %d unreadable "
                             "line(s)", skipped)
        self.monitor = FleetMonitor(
            os.path.join(self.directory, "status.json"),
            port=status_port, campaign=self.spec.name)

    # -- directories ---------------------------------------------------

    def _jobdir(self, st):
        return os.path.join(self.directory, "jobs", st.job_id)

    def _ckptdir(self, st):
        return os.path.join(self._jobdir(st), "ckpt")

    def _stats_path(self, st):
        return os.path.join(self._jobdir(st), "stats.json")

    def _capsules(self, st):
        jobdir = self._jobdir(st)
        try:
            names = sorted(os.listdir(jobdir))
        except OSError:
            return []
        return [os.path.join(jobdir, n) for n in names
                if n.startswith("postmortem-") and n.endswith(".json")]

    def _quarantine_reason(self, capsule_paths):
        """Classify a quarantine from the job's post-mortem capsules:
        ``"integrity"`` when any capsule names an IntegrityError (the
        sentinel escalated a reproducing divergence), else
        ``"failure"``."""
        for path in capsule_paths:
            try:
                with open(path) as fh:
                    capsule = json.load(fh)
            except (OSError, ValueError):
                continue
            kind = (capsule.get("reason") or {}).get("kind")
            if kind == "IntegrityError":
                return "integrity"
        return "failure"

    def _integrity_record(self, st):
        """The newest checkpoint's fingerprint-chain record for this
        job, journal-ready (light read: the capsule's simulator stays
        pickled).  None when the job ran without the sentinel."""
        found = checkpoints(self._ckptdir(st))
        if not found:
            return None
        try:
            capsule = read_checkpoint(found[0][1], load_sim=False)
        except (CheckpointError, OSError):
            return None
        record = (capsule.get("meta") or {}).get("integrity")
        if not record:
            return None
        return {"interval": record.get("interval"),
                "chain": "%08x" % (record.get("chain", 0),),
                "audit_every": record.get("audit_every")}

    # -- journal replay ------------------------------------------------

    def _replay(self, records):
        """Rebuild job states from the journal.  Replay is idempotent:
        a completed job stays completed no matter how many times the
        campaign was killed and resumed."""
        for record in records:
            job_id = record.get("job")
            event = record.get("event")
            if job_id is None:
                continue
            st = self.jobs.get(job_id)
            if st is None:
                _log.warning("journal names unknown job %s (spec "
                             "changed?); ignoring its records", job_id)
                continue
            if event == "start":
                st.attempts = max(st.attempts,
                                  int(record.get("attempt", 0)))
                st.state = "running"
                st.orphan_pid = None  # pid arrives in "spawned"
            elif event == "spawned":
                st.orphan_pid = record.get("pid")
            elif event == "exit":
                st.attempts = max(st.attempts,
                                  int(record.get("attempt", 0)))
                st.last_exit = record.get("exit")
                st.consecutive = int(record.get("consecutive", 0))
                st.orphan_pid = None
                st.state = ("done" if record.get("outcome") == "completed"
                            else "pending")
            elif event == "quarantined":
                st.state = "quarantined"
                st.orphan_pid = None
            elif event == "state":
                st.attempts = int(record.get("attempts", st.attempts))
                st.consecutive = int(record.get("consecutive",
                                                st.consecutive))
                st.last_exit = record.get("exit", st.last_exit)
                state = record.get("state", "pending")
                if state == "backoff":
                    state = "pending"
                if state == "running":
                    st.orphan_pid = record.get("pid")
                st.state = state
            # Unknown events (campaign/drain/timeout/end) carry no
            # per-job state; new event kinds stay replay-compatible.
        for st in self.jobs.values():
            if st.state == "running":
                # The orchestrator died mid-job.  The attempt may still
                # be running as an orphan — reap it before re-enqueuing,
                # or two attempts would race on one checkpoint dir.
                self._reap_orphan(st)
                st.state = "pending"
            if st.state == "done" and not os.path.exists(
                    self._stats_path(st)):
                _log.warning("job %s journaled as completed but its "
                             "stats tree is missing; re-running",
                             st.job_id)
                st.state = "pending"
            if st.state == "quarantined" and self.retry_quarantined:
                _log.warning("unparking quarantined job %s "
                             "(--retry-quarantined)", st.job_id)
                st.state = "pending"
                st.consecutive = 0
            # Checkpoint progress made before the crash counts: the
            # next attempt resumes from disk, so the breaker must
            # measure progress relative to what disk already holds.
            found = checkpoints(self._ckptdir(st))
            if found:
                st.progress_interval = max(st.progress_interval,
                                           found[0][0])

    def _reap_orphan(self, st):
        """Kill a still-running attempt left behind by a SIGKILLed
        orchestrator.  Only acts when ``/proc/<pid>/cmdline`` names this
        job's stats path — pid reuse must never kill a bystander."""
        pid = st.orphan_pid
        st.orphan_pid = None
        if not pid:
            return
        try:
            with open("/proc/%d/cmdline" % pid, "rb") as fh:
                cmdline = fh.read().decode(errors="replace")
        except OSError:
            return  # already gone (or no /proc): nothing to reap
        if self._stats_path(st) not in cmdline:
            return
        _log.warning("reaping orphaned attempt of %s (pid %d)",
                     st.job_id, pid)
        for signum in (signal.SIGTERM, signal.SIGKILL):
            try:
                os.kill(pid, signum)
            except OSError:
                return
            deadline = time.monotonic() + (self.term_grace_s
                                           if signum == signal.SIGTERM
                                           else 2.0)
            while time.monotonic() < deadline:
                if not os.path.exists("/proc/%d" % pid):
                    return
                time.sleep(0.05)

    # -- attempt lifecycle ---------------------------------------------

    def _launch(self, st, now):
        jobdir = self._jobdir(st)
        ckptdir = self._ckptdir(st)
        os.makedirs(ckptdir, exist_ok=True)
        resume_from = bool(checkpoints(ckptdir))
        argv = [self.python, "-m", "repro"] + st.spec.run_argv() + [
            "--stats-json", self._stats_path(st),
            "--checkpoint-dir", ckptdir,
            "--checkpoint-every", str(self.checkpoint_every),
            "--flight-dir", jobdir,
        ]
        if resume_from:
            argv += ["--resume", ckptdir]
        st.attempts += 1
        # Write-ahead: the start record lands before the process does.
        self.journal.append("start", job=st.job_id, attempt=st.attempts,
                            resume=resume_from, pid=None)
        st.log_fh = open(os.path.join(jobdir, "job.log"), "a")
        st.log_fh.write("--- attempt %d: %s\n"
                        % (st.attempts, " ".join(argv)))
        st.log_fh.flush()
        try:
            # start_new_session: a Ctrl-C to the orchestrator's group
            # must not bypass the drain and hit the jobs directly.
            st.proc = subprocess.Popen(argv, stdout=st.log_fh,
                                       stderr=subprocess.STDOUT,
                                       start_new_session=True)
        except OSError as exc:
            st.log_fh.close()
            st.log_fh = None
            _log.error("could not launch %s: %s", st.job_id, exc)
            self._finish_attempt(st, exit_code=127, now=now)
            return
        self.journal.append("spawned", job=st.job_id,
                            attempt=st.attempts, pid=st.proc.pid)
        st.state = "running"
        st.started_at = now
        st.deadline = (now + self.job_timeout_s
                       if self.job_timeout_s else None)
        st.term_sent_at = None
        self._dirty = True
        _log.info("launched %s attempt %d (pid %d)%s", st.job_id,
                  st.attempts, st.proc.pid,
                  " resuming from checkpoint" if resume_from else "")

    def _job_progressed(self, st):
        """Did this attempt push the job's newest checkpoint forward?
        Progress resets the quarantine breaker: a slow-but-advancing
        job is not a rotten one."""
        found = checkpoints(self._ckptdir(st))
        if found and found[0][0] > st.progress_interval:
            st.progress_interval = found[0][0]
            return True
        return False

    def _finish_attempt(self, st, exit_code, now, drained=False):
        if st.proc is not None:
            st.proc = None
        if st.log_fh is not None:
            try:
                st.log_fh.close()
            except OSError:
                pass
            st.log_fh = None
        duration = round(now - st.started_at, 3) if st.started_at else 0.0
        st.started_at = None
        st.deadline = None
        st.term_sent_at = None
        st.last_exit = exit_code
        self._dirty = True
        progressed = self._job_progressed(st)
        stats_path = self._stats_path(st)
        if exit_code == 0 and os.path.exists(stats_path):
            st.state = "done"
            st.consecutive = 0
            st.jitter.reset()
            self.journal.append("exit", job=st.job_id,
                                attempt=st.attempts, exit=0,
                                outcome="completed", consecutive=0,
                                duration_s=duration, stats=stats_path,
                                integrity=self._integrity_record(st))
            _log.info("job %s completed (attempt %d, %.1fs)",
                      st.job_id, st.attempts, duration)
            return
        if drained:
            # Stopped by our own drain: not a failure, no backoff; the
            # resumed campaign re-enqueues it immediately.
            st.state = "pending"
            st.backoff_until = now
            self.journal.append("exit", job=st.job_id,
                                attempt=st.attempts, exit=exit_code,
                                outcome="retry", drained=True,
                                consecutive=st.consecutive,
                                duration_s=duration)
            return
        if progressed:
            st.consecutive = 0
            st.jitter.reset()
        st.consecutive += 1
        stopped = (exit_code == _EXIT_STOPPED or exit_code < 0
                   or exit_code == 137)
        try:
            if st.consecutive >= self.quarantine_after:
                raise JobQuarantined(
                    "job %s failed %d consecutive attempt(s) without "
                    "checkpoint progress (last exit %s)"
                    % (st.job_id, st.consecutive, exit_code),
                    job=st.job_id, attempts=st.attempts,
                    exit_code=exit_code, capsules=self._capsules(st))
        except JobQuarantined as parked:
            st.state = "quarantined"
            reason = self._quarantine_reason(parked.capsules)
            self.journal.append("quarantined", job=st.job_id,
                                attempt=st.attempts, exit=exit_code,
                                consecutive=st.consecutive,
                                reason=reason,
                                capsules=parked.capsules,
                                integrity=self._integrity_record(st))
            _log.error("quarantined %s (%s): %s (capsules: %s)",
                       st.job_id, reason, parked,
                       ", ".join(parked.capsules) or "none")
            return
        backoff = st.jitter.next()
        st.state = "pending"
        st.backoff_until = now + backoff
        self.journal.append("exit", job=st.job_id, attempt=st.attempts,
                            exit=exit_code, outcome="retry",
                            stopped=stopped, progressed=progressed,
                            consecutive=st.consecutive,
                            backoff_s=round(backoff, 3),
                            duration_s=duration)
        _log.warning("job %s attempt %d exited %s (%s); retry in "
                     "%.2fs (consecutive=%d)", st.job_id, st.attempts,
                     exit_code,
                     "stopped" if stopped else "failed", backoff,
                     st.consecutive)

    # -- main loop -----------------------------------------------------

    def _running(self):
        return [st for st in self.jobs.values()
                if st.state == "running"]

    def _reap_finished(self, now):
        for st in self._running():
            if st.proc is None:
                continue
            rc = st.proc.poll()
            if rc is None:
                continue
            self._finish_attempt(st, exit_code=rc, now=now)

    def _check_timeouts(self, now):
        for st in self._running():
            if st.proc is None:
                continue
            if st.term_sent_at is not None:
                if now - st.term_sent_at > self.term_grace_s:
                    _log.warning("job %s ignored SIGTERM for %.1fs; "
                                 "SIGKILL", st.job_id, self.term_grace_s)
                    self._signal(st, signal.SIGKILL)
                continue
            if st.deadline is not None and now > st.deadline:
                self.journal.append("timeout", job=st.job_id,
                                    attempt=st.attempts,
                                    budget_s=self.job_timeout_s)
                _log.warning("job %s outlived its %.1fs budget; "
                             "SIGTERM (graceful checkpoint + exit %d)",
                             st.job_id, self.job_timeout_s,
                             _EXIT_STOPPED)
                self._signal(st, signal.SIGTERM)
                st.term_sent_at = now

    @staticmethod
    def _signal(st, signum):
        try:
            st.proc.send_signal(signum)
        except OSError:
            pass

    def _launch_ready(self, now):
        free = self.workers - len(self._running())
        if free <= 0:
            return
        ready = [st for st in self.jobs.values()
                 if st.state == "pending" and st.backoff_until <= now]
        ready.sort(key=lambda st: st.spec.index)
        for st in ready[:free]:
            self._launch(st, now)

    def _snapshot_records(self):
        """Compaction records that reconstruct current state (journal
        rotation)."""
        records = [{"event": "campaign", "t": round(time.time(), 3),
                    "name": self.spec.name, "jobs": len(self.jobs),
                    "compacted": True}]
        for job_id in sorted(self.jobs):
            st = self.jobs[job_id]
            record = {"event": "state", "t": round(time.time(), 3),
                      "job": job_id, "state": st.state,
                      "attempts": st.attempts,
                      "consecutive": st.consecutive,
                      "exit": st.last_exit}
            if st.state == "running" and st.proc is not None:
                record["pid"] = st.proc.pid
            records.append(record)
        return records

    def _publish(self, now, force=False):
        if not force and not self._dirty and \
                now - self._last_publish < 1.0:
            return
        self.monitor.update(self.jobs, self.workers, now=now)
        self._last_publish = now
        self._dirty = False

    def _install_signals(self):
        previous = {}
        def handler(signum, frame):
            name = getattr(signal.Signals(signum), "name", signum)
            self._stop_requested = "signal %s" % name
            # Second signal acts normally (force-quit a wedged drain).
            old = previous.pop(signum, signal.SIG_DFL)
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):
                pass  # not the main thread
        return previous

    def _restore_signals(self, previous):
        for signum, old in previous.items():
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass

    def _drain(self, now):
        """SIGTERM every in-flight job, journal their stopped attempts,
        and leave the campaign resumable."""
        running = self._running()
        self.journal.append("drain", reason=self._stop_requested,
                            in_flight=[st.job_id for st in running])
        _log.warning("draining %d in-flight job(s): %s",
                     len(running), self._stop_requested)
        for st in running:
            if st.proc is not None:
                self._signal(st, signal.SIGTERM)
        deadline = time.monotonic() + self.term_grace_s
        while time.monotonic() < deadline:
            if not any(st.proc is not None and st.proc.poll() is None
                       for st in running):
                break
            time.sleep(0.05)
        for st in running:
            if st.proc is None:
                continue
            rc = st.proc.poll()
            if rc is None:
                self._signal(st, signal.SIGKILL)
                try:
                    rc = st.proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    rc = -9
            self._finish_attempt(st, exit_code=rc,
                                 now=time.monotonic(), drained=True)

    def _terminal(self):
        return all(st.state in ("done", "quarantined")
                   for st in self.jobs.values())

    def run(self):
        """Run the campaign to completion (or drain).  Returns the
        process exit code: 0 all jobs done, 1 some quarantined,
        75 drained (resumable)."""
        self.journal.append("campaign", name=self.spec.name,
                            jobs=len(self.jobs), workers=self.workers,
                            resumed=self.resumed, pid=os.getpid())
        previous = self._install_signals()
        state = "running"
        try:
            while not self._terminal():
                now = time.monotonic()
                self._reap_finished(now)
                if self._stop_requested:
                    self._drain(time.monotonic())
                    state = "stopped"
                    break
                self._check_timeouts(now)
                self._launch_ready(now)
                self._publish(now)
                self.journal.maybe_rotate(self._snapshot_records)
                if self._terminal():
                    break
                time.sleep(self.poll_s)
        except BaseException:
            state = "failed"
            try:
                self._drain(time.monotonic())
            except Exception:
                pass
            raise
        finally:
            if state == "running":
                state = "done" if self._all_done() else "failed"
            self.journal.append("end", state=state,
                                counts=self._counts())
            self.journal.close()
            self.monitor.finish(self.jobs, self.workers, state)
        return self.exit_code()

    def _all_done(self):
        return all(st.state == "done" for st in self.jobs.values())

    def _counts(self):
        counts = {}
        for st in self.jobs.values():
            counts[st.state] = counts.get(st.state, 0) + 1
        return counts

    def exit_code(self):
        if self._stop_requested:
            return EXIT_DRAINED
        return 0 if self._all_done() else 1

    def summary(self):
        """Human-oriented campaign summary (printed by the CLI)."""
        counts = self._counts()
        quarantined = sorted(job_id for job_id, st in self.jobs.items()
                             if st.state == "quarantined")
        return {
            "campaign": self.spec.name,
            "directory": self.directory,
            "jobs": len(self.jobs),
            "counts": counts,
            "attempts": sum(st.attempts for st in self.jobs.values()),
            "retries": sum(max(0, st.attempts - 1)
                           for st in self.jobs.values()),
            "quarantined": quarantined,
        }
