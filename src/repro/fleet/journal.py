"""The fleet journal: a durable, append-only JSONL write-ahead log.

Every job state transition the orchestrator makes is journaled *before*
it acts on it (write-ahead), one JSON object per line, flushed and
``fsync``'d per append.  That single discipline is what buys the resume
guarantee: a SIGKILLed orchestrator replays the journal and knows
exactly which jobs completed (never re-run), which were mid-flight
(re-enqueued, resuming from their own checkpoints), and which were
quarantined (stay parked).  Append-per-transition is cheap here — a
fleet transitions a handful of times per *job*, not per interval.

Crash anatomy, and why each piece is safe:

* **SIGKILL between transitions** — the journal ends at the last fsync;
  replay sees a consistent prefix.
* **SIGKILL mid-append** — the final line may be torn.  The reader
  (:func:`read_journal`) tolerates an undecodable tail line (counted,
  warned, skipped); a torn line can only be the *latest* transition,
  whose job is then conservatively treated as still mid-flight.
* **SIGKILL mid-rotation** — rotation (compaction of the journal into
  per-job snapshot records once it outgrows ``rotate_bytes``) writes
  the compacted log to a pid-unique temp, fsyncs it, and atomically
  ``os.replace``'s it over the journal.  Either the old journal or the
  complete new one exists, never a half.  Stale temps from a killed
  rotation are pruned on open (own-path prefix only).

Records are plain dicts with at least ``event`` and a wall-clock ``t``
(informational; replay logic never depends on clocks).
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import FleetError
from repro.obs.log import get_logger
from repro.obs.monitor import prune_status_orphans

_log = get_logger("fleet.journal")

#: Rotate (compact) once the journal file outgrows this many bytes.
DEFAULT_ROTATE_BYTES = 1 << 19


def _fsync_directory(path):
    """Best-effort fsync of ``path``'s directory, so a rename survives
    a host crash (not just a process crash)."""
    directory = os.path.dirname(path) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Journal:
    """Append-only JSONL journal with fsync'd appends and atomic
    rotation."""

    def __init__(self, path, rotate_bytes=DEFAULT_ROTATE_BYTES):
        self.path = path
        self.rotate_bytes = max(4096, int(rotate_bytes))
        self.rotations = 0
        self.appended = 0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        # A SIGKILL mid-rotation leaves a complete-or-partial temp next
        # to the journal; the journal itself is still the truth.
        prune_status_orphans(path)
        self._fh = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------

    def append(self, event, **fields):
        """Durably append one record; returns the record dict."""
        record = {"event": event, "t": round(time.time(), 3)}
        record.update(fields)
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.appended += 1
        return record

    def size(self):
        try:
            return os.fstat(self._fh.fileno()).st_size
        except OSError:
            return 0

    def maybe_rotate(self, snapshot_records):
        """Compact the journal when it outgrew ``rotate_bytes``.

        ``snapshot_records`` is a callable returning the records that
        fully reconstruct current state (the orchestrator's per-job
        snapshot); it is only invoked when rotation actually happens.
        """
        if self.size() < self.rotate_bytes:
            return False
        self.rotate(snapshot_records())
        return True

    def rotate(self, records):
        """Atomically replace the journal with ``records``."""
        tmp = "%s.%d.tmp" % (self.path, os.getpid())
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        _fsync_directory(self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.rotations += 1
        _log.info("journal rotated: %s (%d rotation(s))", self.path,
                  self.rotations)

    def close(self):
        try:
            self._fh.close()
        except OSError:
            pass


def read_journal(path):
    """Read a journal tolerantly; returns ``(records, skipped)``.

    A torn final line (SIGKILL mid-append) is expected and skipped
    silently; an undecodable line *before* the tail means corruption
    beyond what a crash can explain, so it is skipped with a warning —
    replay degrades to re-running the affected job rather than refusing
    the whole campaign.  Raises :class:`~repro.errors.FleetError` only
    when the file itself cannot be read.
    """
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise FleetError("could not read journal %s: %s"
                         % (path, exc)) from exc
    records = []
    skipped = 0
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            if index != last_index:
                _log.warning("journal %s line %d is corrupt (skipped)",
                             path, index + 1)
            else:
                _log.info("journal %s has a torn final line (crash "
                          "mid-append); skipped", path)
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            skipped += 1
    return records, skipped
