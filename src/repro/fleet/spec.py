"""Sweep specs: the JSON grid a fleet campaign executes.

A sweep spec is a declarative description of a *campaign* — the kind of
run matrix behind the paper's figures (every SPEC workload × a config,
STREAM × thread counts × contention models) — as a JSON document::

    {
      "name": "fig5-small",
      "defaults": {"config": "westmere", "cores": 1, "instrs": 50000},
      "grid": {"workload": ["bzip2", "mcf", "hmmer"], "seed": [0, 1]},
      "jobs": [{"workload": "stream", "threads": 4}]
    }

``defaults`` seeds every job; ``grid`` is expanded as the cartesian
product of its axes (sorted by axis name, so expansion order — and with
it every job id — is deterministic); ``jobs`` appends explicit,
non-grid entries.  Each expanded :class:`JobSpec` maps one-to-one onto
a ``repro run`` invocation, which is what makes the chaos guarantee
checkable: running any job's argv serially must produce a byte-identical
stats tree (``repro diff --ignore host``).

Job ids are stable across processes (``j<index>-<workload>-<hash6>``,
the hash over the canonical parameter JSON): the journal refers to jobs
by id, so resume must re-derive the same ids from the same spec.
"""

from __future__ import annotations

import hashlib
import itertools
import json

from repro.errors import FleetError

#: Job parameters and the ``repro run`` flag each one maps to.  ``seed``
#: maps to ``--seed-offset`` (the workload RNG offset), giving sweeps a
#: cheap statistical axis without touching the kernel recipes.
_FLAG_FOR = {
    "config": "--config",
    "cores": "--cores",
    "core_model": "--core-model",
    "workload": "--workload",
    "scale": "--scale",
    "instrs": "--instrs",
    "threads": "--threads",
    "contention": "--contention",
    "backend": "--backend",
    "seed": "--seed-offset",
    "inject_faults": "--inject-faults",
    "audit_every": "--audit-every",
}

_SPEC_KEYS = ("name", "defaults", "grid", "jobs")


def _format_value(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)


class JobSpec:
    """One expanded job: a parameter dict plus its stable identity."""

    def __init__(self, params, index):
        unknown = sorted(set(params) - set(_FLAG_FOR))
        if unknown:
            raise FleetError(
                "unknown job parameter(s) %s (have: %s)"
                % (", ".join(unknown), ", ".join(sorted(_FLAG_FOR))))
        if "workload" not in params:
            raise FleetError("job %d has no workload" % index)
        self.params = dict(params)
        self.index = index
        digest = hashlib.sha1(
            json.dumps(self.params, sort_keys=True).encode()).hexdigest()
        self.job_id = "j%03d-%s-%s" % (index, params["workload"],
                                       digest[:6])

    def run_argv(self):
        """The ``repro run`` argument vector for this job (the
        orchestrator appends its own output/checkpoint flags)."""
        argv = ["run"]
        for key in sorted(self.params):
            argv += [_FLAG_FOR[key], _format_value(self.params[key])]
        return argv

    def describe(self):
        return " ".join("%s=%s" % (k, _format_value(v))
                        for k, v in sorted(self.params.items()))

    def __repr__(self):
        return "JobSpec(%s: %s)" % (self.job_id, self.describe())


class SweepSpec:
    """A parsed sweep spec: name plus the expanded, ordered job list."""

    def __init__(self, name, jobs):
        self.name = name
        self.jobs = list(jobs)
        seen = {}
        for job in self.jobs:
            key = json.dumps(job.params, sort_keys=True)
            if key in seen:
                raise FleetError(
                    "sweep %r expands to duplicate jobs (%s and %s "
                    "have identical parameters: %s)"
                    % (name, seen[key], job.job_id, job.describe()))
            seen[key] = job.job_id

    def __len__(self):
        return len(self.jobs)

    def by_id(self):
        return {job.job_id: job for job in self.jobs}

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise FleetError("a sweep spec must be a JSON object, got %s"
                             % type(data).__name__)
        unknown = sorted(set(data) - set(_SPEC_KEYS))
        if unknown:
            raise FleetError("unknown sweep spec key(s): %s"
                             % ", ".join(unknown))
        name = data.get("name") or "sweep"
        defaults = data.get("defaults") or {}
        if not isinstance(defaults, dict):
            raise FleetError("'defaults' must be an object")
        grid = data.get("grid") or {}
        if not isinstance(grid, dict):
            raise FleetError("'grid' must be an object of axis lists")
        explicit = data.get("jobs") or []
        if not isinstance(explicit, list):
            raise FleetError("'jobs' must be a list of job objects")
        params_list = []
        if grid:
            axes = sorted(grid)
            for axis in axes:
                if not isinstance(grid[axis], list) or not grid[axis]:
                    raise FleetError("grid axis %r must be a non-empty "
                                     "list" % axis)
            for values in itertools.product(*(grid[a] for a in axes)):
                params = dict(defaults)
                params.update(zip(axes, values))
                params_list.append(params)
        elif defaults and not explicit:
            # A spec of only defaults is a single-job campaign.
            params_list.append(dict(defaults))
        for entry in explicit:
            if not isinstance(entry, dict):
                raise FleetError("'jobs' entries must be objects")
            params = dict(defaults)
            params.update(entry)
            params_list.append(params)
        if not params_list:
            raise FleetError("sweep %r expands to zero jobs" % name)
        jobs = [JobSpec(params, index)
                for index, params in enumerate(params_list)]
        return cls(name, jobs)

    @classmethod
    def load(cls, path):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError as exc:
            raise FleetError("could not read sweep spec %s: %s"
                             % (path, exc)) from exc
        except ValueError as exc:
            raise FleetError("sweep spec %s is not valid JSON: %s"
                             % (path, exc)) from exc
        return cls.from_dict(data)


def load_spec(path):
    """Read and expand a sweep spec JSON file."""
    return SweepSpec.load(path)
