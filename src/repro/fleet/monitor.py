"""Fleet-level observability, riding the single-run monitor machinery.

The campaign's status file uses the same transport as a run's
(:func:`repro.obs.monitor.write_status_json`: atomic temp-and-replace,
never a torn read), the same HTTP exposition
(:class:`repro.obs.monitor.StatusServer` duck-types on ``.status``),
and the same renderers — ``repro top`` and :func:`prometheus_text`
branch on ``"kind": "fleet"``.

Fleet status schema (``version`` 1)::

    {
      "version": 1, "kind": "fleet", "run_id": "…", "pid": 1234,
      "campaign": "fig5-small", "state": "running",
      "workers": 4, "jobs_total": 25,
      "counts": {"pending": 3, "backoff": 1, "running": 4,
                 "done": 16, "quarantined": 1},
      "progress": 0.64, "attempts": 29, "retries": 4,
      "jobs_per_s": 0.41, "eta_s": 22.0, "elapsed_s": 39.1,
      "updated_monotonic": 12345.6,
      "running": {"j003-mcf-ab12cd": {"attempt": 2, "pid": 999,
                                      "age_s": 3.2}},
      "quarantined": ["j007-gcc-ef3456"],
      "jobs": {"j000-…": {"state": "done", "attempts": 1, "exit": 0}}
    }
"""

from __future__ import annotations

import os
import time
from collections import deque

from repro.obs.monitor import (STATUS_VERSION, StatusServer,
                               prune_status_orphans, write_status_json)

#: Sliding window (samples) for the job completion rate.
RATE_WINDOW = 64


class FleetMonitor:
    """Aggregated, atomically-rewritten campaign status."""

    def __init__(self, path, port=None, campaign=None, run_id=None):
        self.path = path
        self.campaign = campaign
        self.run_id = run_id or os.urandom(4).hex()
        self.state = "running"
        #: The latest snapshot dict (what the file/server publish).
        self.status = {}
        self._start = time.monotonic()
        self._samples = deque(maxlen=RATE_WINDOW)
        self._server = None
        if path:
            prune_status_orphans(path)
        if port is not None:
            self._server = StatusServer(self, port)

    @property
    def port(self):
        return self._server.port if self._server is not None else None

    def update(self, jobs, workers, now=None):
        """Publish one snapshot.  ``jobs`` is the orchestrator's
        ``{job_id: JobState}`` map; ``workers`` its slot count."""
        if now is None:
            now = time.monotonic()
        counts = {"pending": 0, "backoff": 0, "running": 0, "done": 0,
                  "quarantined": 0}
        running = {}
        quarantined = []
        job_rows = {}
        attempts = 0
        for job_id in sorted(jobs):
            st = jobs[job_id]
            state = st.state
            if state == "pending" and st.backoff_until > now:
                state = "backoff"
            counts[state] = counts.get(state, 0) + 1
            attempts += st.attempts
            if state == "running":
                running[job_id] = {
                    "attempt": st.attempts,
                    "pid": st.proc.pid if st.proc is not None else None,
                    "age_s": round(now - (st.started_at or now), 3),
                }
            elif state == "quarantined":
                quarantined.append(job_id)
            job_rows[job_id] = {"state": state,
                                "attempts": st.attempts,
                                "exit": st.last_exit}
        total = len(jobs)
        done = counts["done"]
        self._samples.append((now, done))
        rate = self._rate()
        eta = None
        remaining = total - done - counts["quarantined"]
        if rate and remaining >= 0:
            eta = remaining / rate
        self.status = {
            "version": STATUS_VERSION,
            "kind": "fleet",
            "run_id": self.run_id,
            "pid": os.getpid(),
            "campaign": self.campaign,
            "state": self.state,
            "workers": workers,
            "jobs_total": total,
            "counts": counts,
            "progress": done / total if total else None,
            "attempts": attempts,
            "retries": sum(max(0, st.attempts - 1)
                           for st in jobs.values()),
            "jobs_per_s": rate,
            "eta_s": eta,
            "elapsed_s": now - self._start,
            "updated_monotonic": now,
            "running": running,
            "quarantined": quarantined,
            "jobs": job_rows,
        }
        self._write()

    def _rate(self):
        if len(self._samples) < 2:
            return None
        t0, d0 = self._samples[0]
        t1, d1 = self._samples[-1]
        if t1 <= t0 or d1 <= d0:
            return None
        return (d1 - d0) / (t1 - t0)

    def finish(self, jobs, workers, state):
        """Publish the terminal state and stop the server."""
        self.state = state
        self.update(jobs, workers)
        self.close()

    def close(self):
        server, self._server = self._server, None
        if server is not None:
            server.stop()

    def _write(self):
        if self.path:
            write_status_json(self.path, self.status)
