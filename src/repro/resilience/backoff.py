"""Seeded decorrelated-jitter backoff (AWS-style).

One retry-pacing policy, shared by every layer that retries anything:

* the resilience :class:`~repro.resilience.supervisor.Supervisor`
  draws its post-recovery serial stretch (in *intervals*) from it, and
* the :mod:`repro.fleet` orchestrator draws the delay before a failed
  job's next attempt (in *seconds*) from it.

The draw is uniform in ``[base, min(3 * previous, cap * base)]``:
consecutive failures stretch the window geometrically, a success (or a
rung change) resets it, and because every draw is jittered, a periodic
external disturbance cannot phase-lock with the retry schedule.  The
RNG is seeded, so the schedule is random-looking but reproducible —
the same property the fault-injection grammar already relies on.
"""

from __future__ import annotations

import random

#: A draw never exceeds this multiple of the base.
DEFAULT_CAP = 8


class DecorrelatedJitter:
    """Stateful decorrelated-jitter draw sequence.

    ``base`` is the minimum (and first-draw maximum is ``3 * base``);
    ``cap`` bounds every draw to ``cap * base``.  A ``base`` of 0
    disables backoff (every draw is 0).  Draws are ints when ``base``
    is an int (the supervisor counts intervals), floats otherwise (the
    fleet counts seconds).
    """

    def __init__(self, base, cap=DEFAULT_CAP, seed=0):
        self.base = base
        self.cap = max(1, int(cap))
        self._rng = random.Random(seed)
        self._prev = 0
        #: Totals for observability (stats trees, fleet status files).
        self.draws = 0
        self.total = 0

    def next(self):
        """Draw the next backoff; grows the window off the previous
        draw."""
        base = self.base
        if base <= 0:
            return 0
        prev = self._prev or base
        hi = max(base, min(prev * 3, base * self.cap))
        if isinstance(base, int):
            draw = self._rng.randint(base, int(hi))
        else:
            draw = self._rng.uniform(base, hi)
        self._prev = draw
        self.draws += 1
        self.total += draw
        return draw

    def reset(self):
        """Shrink the window back to the base (call on success)."""
        self._prev = 0

    def __repr__(self):
        return ("DecorrelatedJitter(base=%r, cap=%d, prev=%r)"
                % (self.base, self.cap, self._prev))
