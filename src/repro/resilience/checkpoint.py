"""Interval checkpointing: consistent snapshots at interval barriers.

The interval barrier is the engine's consistent global state: every
core has reached the limit cycle, the weave phase has drained, and the
scheduler holds no mid-syscall state.  Snapshotting there is what makes
both recovery layers possible:

* **In-memory snapshots** (:func:`snapshot` / :func:`restore`): the
  resilience supervisor captures the simulator before each supervised
  interval; when an :class:`~repro.errors.ExecutionFault` surfaces, it
  restores the snapshot and replays the interval on the serial backend.
  Restoration swaps the simulator's ``__dict__`` wholesale — rewinding
  every counter, queue, and RNG — then splices the *original* live
  instruction streams back in, rewound to the barrier via their replay
  logs (generators cannot be pickled, so clones carry position metadata
  only).
* **On-disk checkpoints** (:class:`Checkpointer`): the same capture
  wrapped in a versioned, checksummed file so ``repro run --resume`` can
  restart a killed run.  Streams are reconstructed by fast-forwarding a
  fresh workload generator to the recorded position
  (``InstrumentedStream.resume_source``), which is deterministic by the
  workload seeding contract.

File format: one ASCII header line ``repro-ckpt <version> <crc32>``
followed by a pickle payload.  The CRC covers the payload; mismatches
raise :class:`~repro.errors.CheckpointError`, version skew raises
:class:`~repro.errors.CheckpointVersionError`.
"""

from __future__ import annotations

import os
import pickle
import zlib

from repro.errors import CheckpointError, CheckpointVersionError
from repro.obs.log import get_logger

#: On-disk format version; bump on any incompatible capsule change.
FORMAT_VERSION = 1
MAGIC = b"repro-ckpt"

_log = get_logger("resilience.checkpoint")


def _detached(sim):
    """Attribute names on ZSim that hold host-side machinery (threads,
    file handles, supervision state) and must survive a restore.
    ``_stop_requested`` is here for both directions: a capsule must not
    embalm a pending SIGTERM (the resumed run would instantly stop
    again), and an interval replay must not swallow one.  The flight
    recorder and live monitor are host-side observers (ring of host
    timestamps, status-file handles): a resumed run gets fresh ones."""
    return ("backend", "supervisor", "checkpointer", "_telem",
            "_stop_requested", "flight", "monitor")


def capture_state(sim):
    """Pickle the simulator at an interval barrier.  Host-side
    machinery (backend worker threads, telemetry sinks, the profiler,
    the supervision layer itself) is detached around the dump; the
    returned bytes contain only simulated state."""
    saved = {name: getattr(sim, name, None) for name in _detached(sim)}
    profiler = sim.hierarchy.profiler
    telem = sim._telem
    sim.attach_telemetry(None)
    sim.hierarchy.profiler = None
    for name in _detached(sim):
        setattr(sim, name, None)
    try:
        return pickle.dumps(sim, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            "simulator state is not serializable: %s" % (exc,)) from exc
    finally:
        for name, value in saved.items():
            setattr(sim, name, value)
        sim.hierarchy.profiler = profiler
        if telem is not None:
            sim.attach_telemetry(telem)


def snapshot(sim):
    """In-memory snapshot for interval replay: arm the replay log on
    every instruction stream, then capture.  Pair with :func:`restore`
    (on fault) or :func:`discard` (on success)."""
    for thread in sim.scheduler.threads:
        thread.stream.begin_log()
    return capture_state(sim)


def discard(sim):
    """Drop the replay logs armed by :func:`snapshot` after the
    interval committed."""
    for thread in sim.scheduler.threads:
        thread.stream.discard_log()


def restore(sim, payload):
    """Rewind ``sim`` to the state captured by :func:`snapshot`.

    Only call after the backend's ``recover()`` has quiesced its
    workers: a straggler job mutating state (or pulling stream records)
    during the swap would corrupt the rewound position.
    """
    clone = pickle.loads(payload)
    originals = [thread.stream for thread in sim.scheduler.threads]
    for stream in originals:
        stream.rollback_log()
    preserved = {name: getattr(sim, name, None) for name in _detached(sim)}
    profiler = sim.hierarchy.profiler
    sim.__dict__.clear()
    sim.__dict__.update(clone.__dict__)
    # The clone's streams are position metadata without generators;
    # splice the live originals (just rewound to the barrier) back in.
    for thread, stream in zip(sim.scheduler.threads, originals):
        thread.stream = stream
    for core_id, thread in enumerate(sim.scheduler._running):
        sim.cores[core_id].stream = (thread.stream if thread is not None
                                     else None)
    for name, value in preserved.items():
        setattr(sim, name, value)
    sim.hierarchy.profiler = profiler
    if sim._telem is not None:
        sim.attach_telemetry(sim._telem)


# ---------------------------------------------------------------------
# On-disk checkpoints
# ---------------------------------------------------------------------


def write_checkpoint(path, sim, interval, limit, meta=None):
    """Write a versioned checkpoint capsule atomically to ``path``."""
    capsule = {
        "version": FORMAT_VERSION,
        "interval": interval,
        "limit": limit,
        "backend": sim.backend.name if sim.backend is not None else None,
        "contention": sim.contention_model,
        "config_name": sim.config.name,
        "meta": dict(meta or {}),
        "sim": capture_state(sim),
    }
    body = pickle.dumps(capsule, protocol=pickle.HIGHEST_PROTOCOL)
    header = b"%s %d %08x\n" % (MAGIC, FORMAT_VERSION,
                                zlib.crc32(body) & 0xFFFFFFFF)
    # PID-unique temp name: two runs sharing a checkpoint directory
    # must not clobber each other's in-flight write (the rename itself
    # is atomic either way).
    tmp = "%s.%d.tmp" % (path, os.getpid())
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(body)
        os.replace(tmp, path)
    except OSError:
        # Disk full, read-only remount, vanished directory: leave no
        # half-written temp behind and let the caller decide whether
        # the run survives without this capsule.
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _log.info("checkpoint written: %s (interval %d)", path, interval)
    return path


def read_checkpoint(path, load_sim=True):
    """Read and validate a checkpoint capsule.  The embedded simulator
    is unpickled into ``capsule['sim']`` unless ``load_sim`` is False
    (light readers — fleet journaling, chain inspection — only need the
    header fields and meta, not a reconstructed simulator)."""
    with open(path, "rb") as fh:
        header = fh.readline()
        body = fh.read()
    parts = header.split()
    if len(parts) != 3 or parts[0] != MAGIC:
        raise CheckpointError("%s is not a checkpoint file" % (path,))
    try:
        version = int(parts[1])
        crc = int(parts[2], 16)
    except ValueError:
        raise CheckpointError("%s has a corrupt header" % (path,))
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(
            "%s is checkpoint format v%d; this build reads v%d"
            % (path, version, FORMAT_VERSION),
            found=version, expected=FORMAT_VERSION)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointError("%s failed its checksum" % (path,))
    capsule = pickle.loads(body)
    if load_sim:
        capsule["sim"] = pickle.loads(capsule["sim"])
    return capsule


def _parse_interval(name):
    """Interval number of a checkpoint filename, or None.  Accepts both
    the current run-qualified form (``ckpt-<runid>-<interval>.pkl``) and
    the legacy unqualified one (``ckpt-<interval>.pkl``)."""
    if not (name.startswith("ckpt-") and name.endswith(".pkl")):
        return None
    try:
        return int(name[5:-4].rsplit("-", 1)[-1])
    except ValueError:
        return None


def checkpoints(directory):
    """Every checkpoint-named file in ``directory`` as ``(interval,
    path)`` pairs, newest interval first (ties broken by name so the
    order is stable across runs)."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        interval = _parse_interval(name)
        if interval is not None:
            found.append((interval, os.path.join(directory, name)))
    found.sort(key=lambda pair: (-pair[0], pair[1]))
    return found


def latest(directory):
    """Path of the highest-interval checkpoint in ``directory``, or
    None when there is none."""
    found = checkpoints(directory)
    return found[0][1] if found else None


def read_latest_checkpoint(directory, flight=None):
    """Read the newest *valid* checkpoint in ``directory``.

    A capsule that fails verification (truncated by a dying disk, CRC
    mismatch, version skew, vanished between listing and open) is
    skipped with a warning — and a ``checkpoint_fallback`` flight-ring
    event when a recorder is passed — and the next-newest capsule is
    tried instead.  Only when *no* capsule is readable does
    :class:`~repro.errors.CheckpointError` propagate: losing the last
    few intervals beats losing the whole run.

    Returns ``(path, capsule)``.
    """
    candidates = checkpoints(directory)
    if not candidates:
        raise CheckpointError("no checkpoints in %s" % (directory,))
    last_error = None
    for index, (interval, path) in enumerate(candidates):
        try:
            capsule = read_checkpoint(path)
        except (CheckpointError, OSError) as exc:
            last_error = exc
            _log.warning("skipping unreadable checkpoint %s: %s",
                         path, exc)
            if flight is not None:
                flight.record("checkpoint_fallback", path=path,
                              interval=interval, error=str(exc))
            continue
        if index:
            _log.warning("fell back to %s (interval %d): %d newer "
                         "checkpoint(s) failed verification",
                         path, interval, index)
        return path, capsule
    raise CheckpointError(
        "no valid checkpoint in %s: all %d candidate(s) failed "
        "verification (last: %s)"
        % (directory, len(candidates), last_error))


class Checkpointer:
    """Periodic on-disk checkpointing at interval strides.

    Each Checkpointer stamps its files with a per-run id
    (``ckpt-<runid>-<interval>.pkl``) and prunes **only its own**
    files: two runs sharing ``--checkpoint-dir`` can no longer delete
    each other's newest checkpoints out from under a resume.
    ``latest()`` still reads both runs' files (and legacy unqualified
    names), picking the highest interval."""

    def __init__(self, directory, every=1, keep=2, meta=None,
                 run_id=None):
        self.directory = directory
        self.every = max(1, int(every))
        self.keep = max(1, int(keep))
        self.meta = dict(meta or {})
        self.run_id = run_id or os.urandom(4).hex()
        self.saved = 0
        self.last_path = None
        self._write_failed = False
        os.makedirs(directory, exist_ok=True)
        self._prune_orphans()

    def _prefix(self):
        return "ckpt-%s-" % self.run_id

    def _prune_orphans(self):
        """Remove stale ``*.tmp`` files a SIGKILL mid-write left behind
        by an earlier attempt of this same run id (fleet retries reuse
        the job id as the run id).  Own-prefix only: in a shared
        checkpoint directory, other runs' in-flight temp files must
        stay untouched."""
        prefix = self._prefix()
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if name.startswith(prefix) and name.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    _log.info("pruned orphaned checkpoint temp %s", name)
                except OSError:
                    pass

    def maybe_save(self, sim, interval, limit):
        """Save when ``interval`` lands on the stride; returns the path
        or None."""
        if interval % self.every:
            return None
        return self.save(sim, interval, limit)

    def save(self, sim, interval, limit):
        path = os.path.join(self.directory,
                            "%s%08d.pkl" % (self._prefix(), interval))
        meta = dict(self.meta)
        sentinel = getattr(sim, "integrity", None)
        if sentinel is not None:
            # Deep digests: ``--resume`` and ``repro verify`` check the
            # restored state against these before trusting the capsule.
            meta["integrity"] = sentinel.capsule_record(sim)
        flight = getattr(sim, "flight", None)
        try:
            write_checkpoint(path, sim, interval, limit, meta)
        except OSError as exc:
            # A full or read-only disk must not kill a healthy run:
            # warn once, keep simulating without resumability.
            if not self._write_failed:
                self._write_failed = True
                _log.warning("checkpoint write failed (%s); run "
                             "continues without resume capsules: %s",
                             path, exc)
            if flight is not None:
                flight.record("checkpoint_failed", interval=interval,
                              path=path, error=str(exc))
            return None
        self._write_failed = False
        self.saved += 1
        self.last_path = path
        if flight is not None:
            flight.record("checkpoint", interval=interval, path=path)
        self._prune()
        return path

    def _prune(self):
        prefix = self._prefix()
        kept = sorted(
            (name for name in os.listdir(self.directory)
             if name.startswith(prefix) and name.endswith(".pkl")))
        for name in kept[:-self.keep]:
            try:
                os.unlink(os.path.join(self.directory, name))
            except OSError:
                pass
