"""Deterministic fault injection for the execution backends.

A :class:`FaultPlan` is a seeded, fully deterministic schedule of host
faults — *worker N dies at interval K*, *the weave stage stalls*, *a
job outlives the watchdog budget*, *an event timestamp is corrupted so
the horizon invariant fires*.  Backends consult the plan at two seams:

* **Job dispatch** (``plan.wrap``): every job handed to a pool worker or
  the pipeline stage carries a context dict (phase, interval, worker,
  core, domain).  The first unfired fault whose selectors match wraps
  the job; each fault fires exactly once.
* **Queue corruption** (``plan.corrupt``): after an executor seeds the
  weave queues for an interval, matching :class:`CorruptEvent` faults
  rewrite one queued timestamp in place — the heap surfaces it out of
  order and :class:`~repro.errors.HorizonViolation` fires on pop.

Faults simulate *host* failures, never simulated-program behavior, so a
supervised run that recovers from every injected fault must produce a
stats tree identical to a fault-free run — that is the property
``tests/test_resilience.py`` asserts and the CI smoke job guards.

The plan grammar (CLI ``--inject-faults``) is ``;``-separated entries::

    kind@interval[:selector]...[:seconds]

    kill@3:w0          kill worker 0 at its first interval-3 job
    stall@5:w1:0.5     worker 1 hangs (up to 0.5 s) at interval 5
    delay@6:w0:0.2     worker 0's job sleeps 0.2 s before running
    raise@2:c1         the job simulating core 1 raises after running
    corrupt@4:d1       corrupt a queued timestamp in weave domain 1
    sigkill@3:w0       SIGKILL worker process 0 at interval 3
    sigstop@4          SIGSTOP a (seeded-)random worker at interval 4

``sigkill``/``sigstop`` are *real-process* faults: the process backend
delivers the signal to a live OS worker right after forking its pool
(``plan.process_faults``); thread backends never match them.

Selectors: ``w<N>`` worker index, ``c<N>`` core id, ``d<N>`` domain id,
or a literal phase name (``bound``, ``weave``, ``weave-stage``).
Intervals are 1-based, matching the engine's interval counters.
"""

from __future__ import annotations

import random
import signal
import time

from repro.errors import ConfigError
from repro.exec.backend import WorkerKilled

_PHASES = ("bound", "weave", "weave-stage")


class Fault:
    """One scheduled fault.  Subclasses define ``kind`` and either
    ``wrap`` (dispatch faults) or ``apply`` (queue-corruption faults)."""

    kind = "fault"
    #: Dispatch faults are consulted by ``plan.wrap``; non-dispatch
    #: faults (queue corruption) by ``plan.corrupt``.
    dispatch = True
    #: Real-process faults (signals to live worker processes) are
    #: consulted by ``plan.process_faults`` instead of either seam.
    process = False

    def __init__(self, interval, worker=None, core=None, domain=None,
                 phase=None, seconds=None):
        self.interval = interval
        self.worker = worker
        self.core = core
        self.domain = domain
        self.phase = phase
        self.seconds = seconds
        self.fired = False

    def matches(self, ctx):
        if self.fired or ctx.get("interval") != self.interval:
            return False
        for key in ("worker", "core", "domain", "phase"):
            want = getattr(self, key)
            if want is not None and ctx.get(key) != want:
                return False
        return True

    def wrap(self, fn, ctx, backend, epoch):
        raise NotImplementedError

    def describe(self):
        sel = [s for s in ("w%s" % self.worker if self.worker is not None
                           else None,
                           "c%s" % self.core if self.core is not None
                           else None,
                           "d%s" % self.domain if self.domain is not None
                           else None,
                           self.phase) if s]
        tail = ":".join([""] + sel) if sel else ""
        if self.seconds is not None:
            tail += ":%g" % self.seconds
        return "%s@%d%s" % (self.kind, self.interval, tail)

    def __repr__(self):
        return "%s(%s%s)" % (type(self).__name__, self.describe(),
                             ", fired" if self.fired else "")


class KillWorker(Fault):
    """The worker dies without a trace: its thread exits without
    completing the job, so the only symptom is missing progress — the
    watchdog budget is what surfaces it."""

    kind = "kill"

    def wrap(self, fn, ctx, backend, epoch):
        def wrapper(worker_index):
            raise WorkerKilled(
                "injected: worker %s killed at interval %s (%s)"
                % (ctx.get("worker"), ctx.get("interval"),
                   ctx.get("phase")))
        return wrapper


class StallWorker(Fault):
    """The worker hangs instead of working: it spins until recovery
    bumps the pool epoch (or ``seconds``/the hard cap elapses).  If no
    recovery ever comes, the job degrades into a plain delay so an
    unwatched run stays sound."""

    kind = "stall"
    HARD_CAP_S = 30.0

    def wrap(self, fn, ctx, backend, epoch):
        def wrapper(worker_index):
            deadline = time.perf_counter() + (self.seconds
                                              or self.HARD_CAP_S)
            while (backend.pool_epoch() == epoch
                   and time.perf_counter() < deadline):
                time.sleep(0.002)
            if backend.pool_epoch() == epoch:
                fn(worker_index)
        return wrapper


class DelayJob(Fault):
    """The job runs late — past the watchdog budget if ``seconds``
    exceeds it.  After the sleep the job only runs if its epoch is
    still current; a recovered interval must not be re-mutated by a
    straggler."""

    kind = "delay"
    DEFAULT_S = 0.05

    def wrap(self, fn, ctx, backend, epoch):
        def wrapper(worker_index):
            time.sleep(self.seconds or self.DEFAULT_S)
            if backend.pool_epoch() == epoch:
                fn(worker_index)
        return wrapper


class RaiseInJob(Fault):
    """The job raises a plain RuntimeError *after* doing its work (so
    pass-ordering obligations like the bound turnstile are met and the
    hang-free guarantee holds even unwatched).  State WAS mutated when
    the error surfaces — exactly the case interval replay must rewind."""

    kind = "raise"

    def wrap(self, fn, ctx, backend, epoch):
        def wrapper(worker_index):
            fn(worker_index)
            raise RuntimeError(
                "injected failure in %s job (interval %s, worker %s)"
                % (ctx.get("phase"), ctx.get("interval"),
                   ctx.get("worker")))
        return wrapper


class CorruptEvent(Fault):
    """State corruption, in two flavors selected by the selector:

    * ``corrupt@I[:dN]`` (domain selector or none) rewrites one queued
      weave timestamp to a wildly early cycle.  The entry sits at a
      heap leaf; the first pop promotes it to the root, the second pop
      surfaces it below the domain's interval floor and
      :class:`~repro.errors.HorizonViolation` fires — a *loud* fault.
    * ``corrupt@I:cN`` (core selector) silently invalidates a line the
      core's L1D still holds from the parent cache's array, leaving the
      coherence directory untouched — an inclusion violation with **no
      typed symptom at all**.  Only the integrity sentinel's auditor
      (``--audit-every``) detects it; an unaudited run carries the
      damage into every downstream interval and checkpoint (see
      repro.resilience.integrity).
    """

    kind = "corrupt"
    dispatch = False
    DELTA = 1 << 40

    def apply(self, weave, rng):
        domains = list(weave.domains)
        if self.domain is not None:
            domains = [d for d in domains if d.domain_id == self.domain]
        else:
            rng.shuffle(domains)
        for domain in domains:
            # Need >= 2 entries: the corrupted one must not be the very
            # first pop (no floor yet, nothing to violate).
            if len(domain._queue) >= 2:
                cycle, seq, item = domain._queue[-1]
                domain._queue[-1] = (cycle - self.DELTA, seq, item)
                self.fired = True
                return True
        return False

    def apply_state(self, sim, rng):
        """Silent flavor (``c<N>`` selector): drop the parent cache's
        copy of a line the victim core's L1D still holds.  The
        directory is deliberately left stale — the corruption must be
        symptomless until an audit walks the hierarchy.  Deterministic:
        residency iteration order is insertion order, identical across
        same-seeded runs."""
        core = self.core or 0
        l1d = sim.hierarchy.l1d[min(core, len(sim.hierarchy.l1d) - 1)]
        for line, _state in l1d.array.resident_lines():
            parent, _net = l1d.parent_select(line)
            array = getattr(parent, "array", None)
            if array is None:
                continue  # parent is main memory: nothing to corrupt
            if array.lookup(line, touch=False) is not None:
                array.invalidate(line)
                self.fired = True
                return True
        return False


class ProcessSignalFault(Fault):
    """Base for real-process faults: a signal delivered to a live OS
    worker process (the process backend's pool).  Applied by the
    backend right after it forks the pool for the matching interval;
    the ``w<N>`` selector picks the victim slot, otherwise a seeded
    random worker dies."""

    dispatch = False
    process = True
    signum = None

    def pick_worker(self, num_workers, rng=None):
        """Victim slot when no ``w<N>`` selector was given (or the
        selector is out of range for this pass)."""
        rng = rng or random
        return rng.randrange(max(1, num_workers))


class SigKillWorker(ProcessSignalFault):
    """SIGKILL a live worker process mid-interval: the hard host fault
    (OOM killer, operator kill).  The driver sees the pipe close and
    runs the worker's cores inline; the pool is respawned at the next
    barrier."""

    kind = "sigkill"
    signum = signal.SIGKILL


class SigStopWorker(ProcessSignalFault):
    """SIGSTOP a live worker process: it stays alive but silent, so the
    only symptom is missing heartbeats — the heartbeat budget is what
    surfaces it (the driver kills the stopped worker and degrades its
    cores to inline execution)."""

    kind = "sigstop"
    signum = signal.SIGSTOP


_KINDS = {cls.kind: cls for cls in (KillWorker, StallWorker, DelayJob,
                                    RaiseInJob, CorruptEvent,
                                    SigKillWorker, SigStopWorker)}


class FaultPlan:
    """A deterministic schedule of faults (see module docs)."""

    def __init__(self, faults=(), seed=0):
        self.faults = list(faults)
        self.seed = seed
        self._rng = random.Random(seed)

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, spec, seed=0):
        """Parse a ``;``-separated plan string; raises
        :class:`~repro.errors.ConfigError` on malformed entries."""
        faults = [cls._parse_one(part)
                  for part in (p.strip() for p in spec.split(";")) if part]
        if not faults:
            raise ConfigError("Empty fault plan: %r" % (spec,))
        return cls(faults, seed=seed)

    @staticmethod
    def _parse_one(part):
        head, sep, rest = part.partition("@")
        if not sep or head not in _KINDS:
            raise ConfigError(
                "Bad fault spec %r: want kind@interval[:selector...]"
                "[:seconds] with kind in %s" % (part, sorted(_KINDS)))
        fields = rest.split(":")
        try:
            interval = int(fields[0])
        except (ValueError, IndexError):
            raise ConfigError("Bad fault interval in %r" % (part,))
        kwargs = {}
        for field in fields[1:]:
            if not field:
                continue
            tag, num = field[0], field[1:]
            if tag == "w" and num.isdigit():
                kwargs["worker"] = int(num)
            elif tag == "c" and num.isdigit():
                kwargs["core"] = int(num)
            elif tag == "d" and num.isdigit():
                kwargs["domain"] = int(num)
            elif field in _PHASES:
                kwargs["phase"] = field
            else:
                try:
                    kwargs["seconds"] = float(field)
                except ValueError:
                    raise ConfigError(
                        "Bad fault selector %r in %r" % (field, part))
        return _KINDS[head](interval, **kwargs)

    # -- backend seams -------------------------------------------------

    def wrap(self, fn, ctx, backend, epoch):
        """Called at job dispatch; returns ``fn``, possibly wrapped by
        the first unfired matching fault (which is thereby consumed)."""
        for fault in self.faults:
            if fault.dispatch and fault.matches(ctx):
                fault.fired = True
                flight = getattr(getattr(backend, "_sim", None),
                                 "flight", None)
                if flight is not None:
                    flight.record("fault_injected", fault=fault.kind,
                                  interval=ctx.get("interval"),
                                  phase=ctx.get("phase"),
                                  worker=ctx.get("worker"),
                                  core=ctx.get("core"),
                                  domain=ctx.get("domain"))
                return fault.wrap(fn, ctx, backend, epoch)
        return fn

    def corrupt(self, weave, interval):
        """Called after an executor seeds the weave queues.  Core-
        selector corrupt faults are the *silent* flavor and belong to
        the :meth:`scribble` seam, never to a weave queue."""
        for fault in self.faults:
            if (not fault.dispatch and not fault.process
                    and not fault.fired and fault.interval == interval
                    and fault.core is None):
                fault.apply(weave, self._rng)

    def scribble(self, sim, interval):
        """Silent state-corruption seam: called by the simulator between
        the bound and weave phases of every interval (all backends,
        serial included).  Matching ``corrupt@I:cN`` faults damage
        architectural state directly — the integrity sentinel is the
        only thing that can detect them."""
        for fault in self.faults:
            if (isinstance(fault, CorruptEvent)
                    and fault.core is not None and not fault.fired
                    and fault.interval == interval):
                if fault.apply_state(sim, self._rng):
                    flight = getattr(sim, "flight", None)
                    if flight is not None:
                        flight.record("fault_injected", fault=fault.kind,
                                      interval=interval, core=fault.core,
                                      silent=True)

    def process_faults(self, interval):
        """Unfired real-process faults for ``interval`` (the process
        backend applies them right after forking its pool; the backend
        marks them fired once the signal is delivered)."""
        return [fault for fault in self.faults
                if fault.process and not fault.fired
                and fault.interval == interval]

    @property
    def rng(self):
        """The plan's seeded RNG (victim selection for process faults
        without a ``w<N>`` selector stays deterministic per seed)."""
        return self._rng

    # -- bookkeeping ---------------------------------------------------

    def remaining(self):
        """Faults that have not fired (a test asserting full coverage
        of its matrix checks this is empty)."""
        return [f for f in self.faults if not f.fired]

    def reset(self):
        for fault in self.faults:
            fault.fired = False
        self._rng = random.Random(self.seed)

    def __repr__(self):
        return "FaultPlan(%s)" % "; ".join(f.describe()
                                           for f in self.faults)
