"""The resilience supervisor: supervised interval execution.

Wraps the simulator's interval loop with a recovery policy built on two
engine guarantees:

1. **Interval barriers are consistent global states** — so an interval
   that faulted mid-flight can be rewound (in-memory snapshot, see
   :mod:`repro.resilience.checkpoint`) and replayed.
2. **Backends never change simulated results, only wall time** — so the
   replay can run on the serial reference backend and the final stats
   tree is identical to what the faulted backend would have produced.

Per supervised interval: snapshot, execute on the configured backend,
and on any :class:`~repro.errors.ExecutionFault` (worker death, watchdog
timeout, horizon violation) quiesce the backend (``recover()``), restore
the snapshot, and re-run the interval serially.  After a recovery the
next ``backoff_intervals`` intervals run serially too (the pool is
rebuilt lazily once the backoff drains); ``max_retries`` *consecutive*
faulted intervals trip a permanent fallback to the serial backend.

Faults that are not execution faults — deadlocks, wall-clock budget,
simulated-program errors — are properties of the simulation itself and
propagate untouched.
"""

from __future__ import annotations

import time

from repro.errors import ExecutionFault
from repro.obs.log import get_logger
from repro.resilience.checkpoint import discard, restore, snapshot

_log = get_logger("resilience.supervisor")


class Supervisor:
    """Supervised execution of the simulator's interval loop."""

    def __init__(self, sim, max_retries=3, backoff_intervals=2):
        from repro.exec.serial import SerialBackend
        self.sim = sim
        self.max_retries = max(1, int(max_retries))
        self.backoff_intervals = max(0, int(backoff_intervals))
        self._serial = SerialBackend()
        self._serial.start(sim)
        self._consecutive = 0
        self._backoff_left = 0
        self.recoveries = 0
        self.fallback_permanent = False
        #: Handled-fault history: dicts with interval/kind/message/
        #: context, in order of occurrence.
        self.history = []
        sim.supervisor = self

    # ------------------------------------------------------------------

    def run_interval(self, limit):
        """Execute one interval under supervision; returns the same
        telemetry tuple as ``ZSim._execute_interval``."""
        sim = self.sim
        if self.fallback_permanent:
            return sim._execute_interval(limit, backend=self._serial)
        if self._backoff_left > 0:
            # Degraded stretch after a recovery: serial execution is
            # the reference semantics, so no snapshot is needed.
            self._backoff_left -= 1
            return sim._execute_interval(limit, backend=self._serial)
        payload = snapshot(sim)
        try:
            outcome = sim._execute_interval(limit)
        except ExecutionFault as fault:
            return self._recover(fault, payload, limit)
        self._consecutive = 0
        discard(sim)
        return outcome

    # ------------------------------------------------------------------

    def _recover(self, fault, payload, limit):
        sim = self.sim
        self._consecutive += 1
        self.recoveries += 1
        entry = {
            "interval": fault.interval,
            "kind": type(fault).__name__,
            "message": str(fault),
            "phase": fault.phase,
            "worker": fault.worker,
            "core": fault.core,
            "domain": fault.domain,
            "consecutive": self._consecutive,
        }
        self.history.append(entry)
        _log.warning("execution fault (%s) in interval %s: %s — "
                     "rewinding to the interval barrier and replaying "
                     "serially", entry["kind"], entry["interval"], fault)
        traceback_text = getattr(fault, "traceback_text", "")
        if traceback_text:
            _log.debug("worker traceback:\n%s", traceback_text)
        self._note_telemetry(entry)
        # Order matters: quiesce the pool (epoch bump + join/abandon)
        # BEFORE restoring, so no straggler job mutates rewound state.
        recover_start = time.perf_counter()
        sim.backend.recover()
        restore(sim, payload)
        if self._consecutive >= self.max_retries:
            self._fall_back()
        else:
            self._backoff_left = self.backoff_intervals
        outcome = sim._execute_interval(limit, backend=self._serial)
        _log.info("interval %s replayed serially in %.3f s",
                  entry["interval"],
                  time.perf_counter() - recover_start)
        return outcome

    def _fall_back(self):
        if self.fallback_permanent:
            return
        sim = self.sim
        _log.warning("%d consecutive faulted intervals: permanently "
                     "falling back to the serial backend",
                     self._consecutive)
        self.fallback_permanent = True
        sim.backend.shutdown()
        sim.backend = self._serial
        sim.host_model.backend_name = self._serial.name

    def _note_telemetry(self, entry):
        telem = self.sim._telem
        if telem is None:
            return
        if telem.metrics is not None:
            telem.metrics.inc("resilience.faults")
            telem.metrics.inc("resilience.faults.%s" % entry["kind"])
        if telem.tracer is not None:
            from repro.obs.tracer import TID_MAIN
            telem.tracer.instant("execution fault", "resilience",
                                 TID_MAIN, dict(entry))

    # ------------------------------------------------------------------

    def summary(self):
        """Counters for the stats tree (``host/resilience``)."""
        return {
            "recoveries": self.recoveries,
            "fallback_permanent": int(self.fallback_permanent),
            "consecutive": self._consecutive,
        }
