"""The resilience supervisor: supervised interval execution.

Wraps the simulator's interval loop with a recovery policy built on two
engine guarantees:

1. **Interval barriers are consistent global states** — so an interval
   that faulted mid-flight can be rewound (in-memory snapshot, see
   :mod:`repro.resilience.checkpoint`) and replayed.
2. **Backends never change simulated results, only wall time** — so the
   replay can run on the serial reference backend and the final stats
   tree is identical to what the faulted backend would have produced.

Per supervised interval: snapshot, execute on the configured backend,
and on any :class:`~repro.errors.ExecutionFault` (worker death, watchdog
timeout, horizon violation, process-pool failure) quiesce the backend
(``recover()``), restore the snapshot, and re-run the interval serially.

After a recovery the next few intervals run serially too, with
*decorrelated jitter* on the stretch length (AWS-style: each backoff is
drawn between the base and three times the previous draw, capped at
eight times the base) so that a periodic external disturbance cannot
phase-lock with the retry schedule.  The jitter RNG is seeded from the
engine seed: the schedule is random-looking but reproducible.

``max_retries`` *consecutive* faulted intervals demote the run one rung
down the **degradation ladder**::

    process -> parallel -> serial
    pipelined ----------^

Each demotion builds and adopts the next backend (transferring the
watchdog budget and fault plan) and resets the consecutive-fault
counter, so a systemically failing process pool degrades to threads
before giving up on parallelism entirely.  Landing on serial is the
permanent fallback — serial is the reference semantics and cannot
execution-fault.

**Span mode** (integrity sentinel aboard with auditing on): corruption
caught by an audit may predate detection by up to the audit stride, so
per-interval snapshots are not enough.  The supervisor instead keeps
one snapshot at the last *fingerprint-verified* barrier (the previous
audited barrier, or the end of a serial replay) and records the limit
cycle of every interval since.  On any fault — typed or
:class:`~repro.errors.IntegrityError` — it rewinds to the verified
snapshot and replays the whole span serially.  An integrity fault
demotes the backend immediately (a rung that corrupts state silently
has forfeited its trust), and a *second* divergence at the same
(interval, component) raises out of the supervisor so the process exits
non-zero and the fleet's circuit breaker quarantines the job.

Faults that are not execution faults — deadlocks, wall-clock budget,
simulated-program errors — are properties of the simulation itself and
propagate untouched.
"""

from __future__ import annotations

import time

from repro.errors import ExecutionFault, IntegrityError
from repro.obs.log import get_logger
from repro.resilience.backoff import DecorrelatedJitter
from repro.resilience.checkpoint import discard, restore, snapshot

_log = get_logger("resilience.supervisor")

#: One rung down per ``max_retries`` consecutive faults; serial is the
#: floor (the reference backend cannot execution-fault).
_LADDER = {"process": "parallel", "parallel": "serial",
           "pipelined": "serial"}


class Supervisor:
    """Supervised execution of the simulator's interval loop."""

    def __init__(self, sim, max_retries=3, backoff_intervals=2,
                 seed=None):
        from repro.exec.serial import SerialBackend
        self.sim = sim
        self.max_retries = max(1, int(max_retries))
        #: Base (minimum) serial stretch after a recovery; the actual
        #: stretch is jittered (see ``_next_backoff``).  0 disables.
        self.backoff_intervals = max(0, int(backoff_intervals))
        if seed is None:
            seed = getattr(sim.config.boundweave, "seed", 0)
        self._jitter = DecorrelatedJitter(self.backoff_intervals,
                                          seed=seed)
        self._serial = SerialBackend()
        self._serial.start(sim)
        self._consecutive = 0
        self._backoff_left = 0
        # Span mode (integrity sentinel with auditing on): the snapshot
        # at the last fingerprint-verified barrier, the limit cycle of
        # every interval executed since, and the strike counts per
        # (interval, component) — two strikes escalate to the fleet.
        self._verified = None
        self._span_limits = []
        self._strikes = {}
        self.integrity_rollbacks = 0
        self.recoveries = 0
        self.fallback_permanent = False
        self.last_backoff_intervals = 0
        self.total_backoff_intervals = 0
        #: Ladder demotions, in order: dicts with interval/from/to.
        self.demotions = []
        #: Handled-fault history: dicts with interval/kind/message/
        #: context/attempt/backoff, in order of occurrence.
        self.history = []
        sim.supervisor = self

    # ------------------------------------------------------------------

    def run_interval(self, limit):
        """Execute one interval under supervision; returns the same
        telemetry tuple as ``ZSim._execute_interval``."""
        sim = self.sim
        sentinel = getattr(sim, "integrity", None)
        if sentinel is not None and sentinel.audit_every:
            return self._run_span(limit)
        if self.fallback_permanent:
            return sim._execute_interval(limit, backend=self._serial)
        if self._backoff_left > 0:
            # Degraded stretch after a recovery: serial execution is
            # the reference semantics, so no snapshot is needed.
            self._backoff_left -= 1
            return sim._execute_interval(limit, backend=self._serial)
        payload = snapshot(sim)
        try:
            outcome = sim._execute_interval(limit)
        except ExecutionFault as fault:
            return self._recover(fault, payload, limit)
        self._consecutive = 0
        self._jitter.reset()
        discard(sim)
        return outcome

    # ------------------------------------------------------------------
    # Span mode: rollback-to-verified (integrity sentinel aboard)
    # ------------------------------------------------------------------

    def _run_span(self, limit):
        """One interval in span mode.  A snapshot is taken only at
        audited (fingerprint-verified) barriers; the stream replay logs
        stay armed across the span, so a fault anywhere inside it can
        rewind all the way back.  Serial is *not* exempt here: silent
        corruption is detectable (and injectable) on every backend."""
        sim = self.sim
        if self._verified is None:
            self._verified = snapshot(sim)
            self._span_limits = []
        backend = None
        if self.fallback_permanent:
            backend = self._serial
        elif self._backoff_left > 0:
            self._backoff_left -= 1
            backend = self._serial
        try:
            outcome = sim._execute_interval(limit, backend=backend)
        except ExecutionFault as fault:
            return self._recover_span(fault, limit)
        self._span_limits.append(limit)
        self._consecutive = 0
        self._jitter.reset()
        sentinel = sim.integrity
        if sentinel is not None \
                and sim.bound.intervals % sentinel.audit_every == 0:
            # This barrier passed its audit: it is the new verified
            # floor.  Drop the old span's logs and re-arm.
            self._commit_span()
        return outcome

    def _commit_span(self):
        """Advance the verified floor to the current barrier."""
        sim = self.sim
        discard(sim)
        self._verified = snapshot(sim)
        self._span_limits = []

    def _recover_span(self, fault, limit):
        """Rewind to the last fingerprint-verified barrier and replay
        the whole span serially.  See the module docs for the
        demote-immediately and two-strike escalation rules."""
        sim = self.sim
        integrity = isinstance(fault, IntegrityError)
        self._consecutive += 1
        self.recoveries += 1
        span = len(self._span_limits) + 1
        entry = {
            "interval": fault.interval,
            "kind": type(fault).__name__,
            "message": str(fault),
            "phase": fault.phase,
            "worker": fault.worker,
            "core": fault.core,
            "domain": fault.domain,
            "attempt": self.recoveries,
            "consecutive": self._consecutive,
            "rollback_intervals": span,
        }
        if integrity:
            entry["component"] = fault.component
            self.integrity_rollbacks += 1
        self.history.append(entry)
        _log.warning("%s in interval %s: %s — rewinding %d interval(s) "
                     "to the last verified barrier and replaying "
                     "serially", entry["kind"], entry["interval"], fault,
                     span)
        self._note_telemetry(entry)
        flight = getattr(sim, "flight", None)
        if flight is not None:
            flight.record("recovery", fault=entry["kind"],
                          interval=entry["interval"],
                          phase=entry["phase"], worker=entry["worker"],
                          component=entry.get("component"),
                          rollback_intervals=span,
                          consecutive=self._consecutive)
            flight.capture(
                sim, kind=entry["kind"], message=entry["message"],
                recovery="rewound %d interval(s) to the last "
                         "fingerprint-verified barrier and replayed "
                         "on the serial backend" % span,
                worker=entry["worker"], interval=entry["interval"],
                phase=entry["phase"])
        if integrity:
            key = (fault.interval, fault.component)
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if strikes >= 2:
                # The same fingerprint diverged twice: the damage
                # reproduces across rungs, so recovery cannot be
                # trusted.  Raising out of the supervisor fails the
                # attempt; the fleet's breaker quarantines the job.
                _log.error("integrity fault at interval %s (%s) "
                           "diverged twice; escalating for quarantine",
                           fault.interval, fault.component)
                raise fault
        recover_start = time.perf_counter()
        sim.backend.recover()
        restore(sim, self._verified)
        if integrity:
            # A backend that corrupted state silently has forfeited its
            # trust: demote immediately, not after max_retries.
            self._demote(entry["interval"])
        elif self._consecutive >= self.max_retries:
            self._demote(entry["interval"])
        backoff = 0
        if not self.fallback_permanent:
            backoff = self._next_backoff()
            self._backoff_left = backoff
        entry["backoff_intervals"] = backoff
        self.last_backoff_intervals = backoff
        self.total_backoff_intervals += backoff
        replay = self._span_limits + [limit]
        self._span_limits = []
        outcome = None
        for replay_limit in replay:
            # A violation that reproduces on the serial reference is a
            # genuine engine bug (or tampering), not host corruption:
            # it propagates and fails the run loudly.
            outcome = sim._execute_interval(replay_limit,
                                            backend=self._serial)
        self._commit_span()
        _log.info("span of %d interval(s) replayed serially in %.3f s",
                  span, time.perf_counter() - recover_start)
        return outcome

    # ------------------------------------------------------------------

    def _next_backoff(self):
        """Decorrelated-jitter backoff draw (in intervals): uniform in
        ``[base, min(3 * previous, cap * base)]``.  Consecutive faults
        stretch the window geometrically; a success (or a demotion)
        resets it.  (The draw sequence lives in
        :class:`repro.resilience.backoff.DecorrelatedJitter`, shared
        with the fleet orchestrator's retry pacing.)"""
        return self._jitter.next()

    def _recover(self, fault, payload, limit):
        sim = self.sim
        self._consecutive += 1
        self.recoveries += 1
        entry = {
            "interval": fault.interval,
            "kind": type(fault).__name__,
            "message": str(fault),
            "phase": fault.phase,
            "worker": fault.worker,
            "core": fault.core,
            "domain": fault.domain,
            "attempt": self.recoveries,
            "consecutive": self._consecutive,
        }
        self.history.append(entry)
        _log.warning("execution fault (%s) in interval %s: %s — "
                     "rewinding to the interval barrier and replaying "
                     "serially", entry["kind"], entry["interval"], fault)
        traceback_text = getattr(fault, "traceback_text", "")
        if traceback_text:
            _log.debug("worker traceback:\n%s", traceback_text)
        self._note_telemetry(entry)
        flight = getattr(sim, "flight", None)
        if flight is not None:
            flight.record("recovery", fault=entry["kind"],
                          interval=entry["interval"],
                          phase=entry["phase"], worker=entry["worker"],
                          consecutive=self._consecutive)
            # The recovery capsule is the post-mortem for the fault the
            # run *survived*: captured before the rewind, so the ring
            # still holds the backend's events leading up to it.
            flight.capture(
                sim, kind=entry["kind"], message=entry["message"],
                recovery="interval rewound to the barrier and replayed "
                         "on the serial backend",
                worker=entry["worker"], interval=entry["interval"],
                phase=entry["phase"])
        # Order matters: quiesce the pool (epoch bump + join/abandon)
        # BEFORE restoring, so no straggler job mutates rewound state.
        recover_start = time.perf_counter()
        sim.backend.recover()
        restore(sim, payload)
        if self._consecutive >= self.max_retries:
            self._demote(entry["interval"])
        backoff = 0
        if not self.fallback_permanent:
            backoff = self._next_backoff()
            self._backoff_left = backoff
        entry["backoff_intervals"] = backoff
        self.last_backoff_intervals = backoff
        self.total_backoff_intervals += backoff
        outcome = sim._execute_interval(limit, backend=self._serial)
        _log.info("interval %s replayed serially in %.3f s",
                  entry["interval"],
                  time.perf_counter() - recover_start)
        return outcome

    def _demote(self, interval):
        """Step one rung down the degradation ladder (see module
        docs).  Landing on serial is the permanent fallback."""
        if self.fallback_permanent:
            return
        sim = self.sim
        cur = sim.backend.name
        if cur == "serial":
            # Already at the floor (faults can still reach us here via
            # queue corruption); just stop snapshotting.
            self.fallback_permanent = True
            return
        nxt = _LADDER.get(cur, "serial")
        self.demotions.append({"interval": interval,
                               "from": cur, "to": nxt})
        flight = getattr(sim, "flight", None)
        if flight is not None:
            flight.record("demotion", interval=interval,
                          from_backend=cur, to_backend=nxt,
                          consecutive=self._consecutive)
        _log.warning("%d consecutive faulted intervals on the %s "
                     "backend: degrading to %s",
                     self._consecutive, cur, nxt)
        old = sim.backend
        if nxt == "serial":
            new = self._serial
            self.fallback_permanent = True
        else:
            from repro.exec import make_backend
            new = make_backend(
                nxt, host_threads=sim.config.boundweave.host_threads)
            new.start(sim)
        new.watchdog_budget = old.watchdog_budget
        new.fault_plan = old.fault_plan
        old.shutdown()
        sim.backend = new
        sim.host_model.backend_name = new.name
        # The new rung gets a fresh fault budget and jitter sequence.
        self._consecutive = 0
        self._jitter.reset()

    def _note_telemetry(self, entry):
        telem = self.sim._telem
        if telem is None:
            return
        if telem.metrics is not None:
            telem.metrics.inc("resilience.faults")
            telem.metrics.inc("resilience.faults.%s" % entry["kind"])
        if telem.tracer is not None:
            from repro.obs.tracer import TID_MAIN
            telem.tracer.instant("execution fault", "resilience",
                                 TID_MAIN, dict(entry))

    # ------------------------------------------------------------------

    def summary(self):
        """Counters for the stats tree (``host/resilience``)."""
        return {
            "recoveries": self.recoveries,
            "integrity_rollbacks": self.integrity_rollbacks,
            "fallback_permanent": int(self.fallback_permanent),
            "consecutive": self._consecutive,
            "last_backoff_intervals": self.last_backoff_intervals,
            "total_backoff_intervals": self.total_backoff_intervals,
            "demotions": len(self.demotions),
            "demotion_path": "->".join(
                [d["from"] for d in self.demotions]
                + [self.demotions[-1]["to"]]) if self.demotions else "",
        }
