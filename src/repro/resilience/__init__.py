"""Resilience layer: supervised execution, interval checkpoints, and
deterministic fault injection (see docs/resilience.md).

The layer leans on two guarantees the engine already provides — interval
barriers are consistent global states, and execution backends never
change simulated results — to turn host-side failures (dead or stalled
workers, corrupted event queues, killed processes) into recoverable
events: the supervisor replays the faulted interval serially from an
in-memory snapshot, and the checkpointer persists barrier snapshots so
a killed run resumes to an identical stats tree.
"""

from repro.resilience.backoff import DEFAULT_CAP, DecorrelatedJitter
from repro.resilience.checkpoint import (Checkpointer, capture_state,
                                         checkpoints, discard, latest,
                                         read_checkpoint,
                                         read_latest_checkpoint, restore,
                                         snapshot, write_checkpoint,
                                         FORMAT_VERSION)
from repro.resilience.faults import (CorruptEvent, DelayJob, Fault,
                                     FaultPlan, KillWorker,
                                     ProcessSignalFault, RaiseInJob,
                                     SigKillWorker, SigStopWorker,
                                     StallWorker)
from repro.resilience.integrity import (IntegritySentinel,
                                        audit_invariants,
                                        fingerprint_components,
                                        verify_state)
from repro.resilience.supervisor import Supervisor

__all__ = [
    "Checkpointer", "CorruptEvent", "DEFAULT_CAP", "DecorrelatedJitter",
    "DelayJob", "Fault", "FaultPlan", "FORMAT_VERSION",
    "IntegritySentinel", "KillWorker", "ProcessSignalFault",
    "RaiseInJob", "SigKillWorker", "SigStopWorker", "StallWorker",
    "Supervisor", "audit_invariants", "capture_state", "checkpoints",
    "discard", "fingerprint_components", "latest", "read_checkpoint",
    "read_latest_checkpoint", "restore", "snapshot", "verify_state",
    "write_checkpoint",
]
