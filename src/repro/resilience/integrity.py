"""State-integrity sentinel: fingerprint chains and invariant audits.

The bound-weave engine's determinism contract — every backend produces
byte-identical simulated state — is enforced offline by test oracles,
but a *silently* corrupted cache line or scoreboard entry (a bad host,
a buggy executor, an injected ``corrupt`` fault) sails through the
supervisor, which only reacts to typed faults, and poisons every
downstream interval and checkpoint.  This module closes that loop with
three pieces (ISSUE 9):

* **Interval fingerprint chain.**  At every interval barrier the
  sentinel computes a cheap ``zlib.crc32`` digest per component (core
  stage clocks and scoreboards, cache counters and occupancy, scheduler
  queues, weave domains) and folds them into a hash ledger::

      fp[i] = crc32(interval_i || sorted per-component digests, fp[i-1])

  A divergence names the guilty subsystem via the per-component
  sub-digests.  The chain value is recorded into the flight ring,
  embedded in checkpoint capsule meta (``meta["integrity"]``, with
  *deep* full tag+MESI digests so ``--resume`` and ``repro verify`` can
  re-derive them), and journaled per job by the fleet orchestrator.

* **Online invariant auditor.**  At a configurable stride
  (``--audit-every N``; 0 = off) the sentinel checks structural
  invariants the engine must preserve at every barrier: MESI
  single-writer and inclusion, cache-array free-way bookkeeping, weave
  queues drained and horizon floors respected, scheduler run-queue /
  running-slot consistency, and the PR-6 slab/freelist hygiene rules.
  A violation raises :class:`~repro.errors.IntegrityError` carrying the
  component path and a state excerpt.

* **Rollback-to-verified.**  The supervisor treats an
  :class:`~repro.errors.IntegrityError` (or a fingerprint divergence)
  as its second trigger: because the corruption may predate detection,
  it rewinds to the last *fingerprint-verified* snapshot — the previous
  audited barrier, not merely the current interval — and replays the
  whole span serially (see :mod:`repro.resilience.supervisor`).

Digest depth: the per-barrier chain uses *cheap* digests (counters,
occupancy, free-way CRCs — O(sets), not O(lines)) so the default-stride
overhead stays under the hotpath budget; checkpoint capsules and
``repro verify`` use *deep* digests that walk the full tag+MESI arrays
and directories, where the cost is per-checkpoint rather than
per-interval.
"""

from __future__ import annotations

import zlib

from repro.errors import IntegrityError

#: Caps mirrored from the PR-6 data-plane slabs; the auditor flags any
#: pool that grew past its documented bound (a leak or a broken cap).
_TRACE_FREELIST_CAP = 64


def _crc(items, crc=0):
    """Fold an iterable of picklable-repr items into a crc32 digest.
    ``repr`` is stable for ints, strings, tuples, and enums — the only
    things walkers may yield."""
    for item in items:
        crc = zlib.crc32(repr(item).encode("ascii", "backslashreplace"),
                         crc)
    return crc & 0xFFFFFFFF


def fingerprint_components(sim, deep=False):
    """Per-component state digests at an interval barrier.

    Returns ``{component_path: crc32}``.  With ``deep=False`` (the
    per-barrier chain) each digest covers counters, clocks, occupancy
    and queue summaries; ``deep=True`` (checkpoint capsules, resume
    verification, ``repro verify``) additionally walks full cache
    tag+MESI arrays and coherence directories.
    """
    digests = {}
    for core in sim.cores:
        digests["core%d" % core.core_id] = _crc(core.integrity_items())
    hierarchy = sim.hierarchy
    for cache in hierarchy.all_caches():
        digests["mem.%s" % cache.name] = _crc(
            cache.integrity_items(deep=deep))
    digests["mem.mem"] = _crc(hierarchy.mainmem.integrity_items(deep=deep))
    digests["sched"] = _crc(sim.scheduler.integrity_items())
    if sim.weave is not None:
        for domain in sim.weave.domains:
            digests["weave.domain%d" % domain.domain_id] = _crc(
                domain.integrity_items())
    return digests


def chain_payload(interval, digests):
    """Canonical byte string folded into the fingerprint chain for one
    barrier (also what ``repro verify`` re-derives)."""
    return ("%d|" % interval + "|".join(
        "%s:%08x" % (name, digests[name])
        for name in sorted(digests))).encode("ascii")


# ---------------------------------------------------------------------
# Invariant audits
# ---------------------------------------------------------------------


def audit_invariants(sim):
    """Check every barrier invariant; returns ``(component, excerpt)``
    violation pairs (empty when the state is sound)."""
    violations = []
    hierarchy = sim.hierarchy
    # MESI single-writer across the L1s (>=2 copies with an M/E owner).
    for line, copies in hierarchy.check_coherence():
        violations.append(
            ("mem", "single-writer violated for line 0x%x: %s"
             % (line, sorted(copies))))
    # Inclusion: every child-resident line present in its parent.
    for child, parent, line in hierarchy.check_inclusion():
        violations.append(
            ("mem.%s" % child,
             "line 0x%x resident but absent from parent %s (inclusion)"
             % (line, parent)))
    # Cache-array bookkeeping: free-way counts and way back-pointers.
    for cache in hierarchy.all_caches():
        violations.extend(cache.array.audit_invariants(
            "mem.%s" % cache.name))
    if sim.weave is not None:
        for domain in sim.weave.domains:
            if len(domain._queue):
                violations.append(
                    ("weave.domain%d" % domain.domain_id,
                     "%d event(s) still queued at the interval barrier"
                     % len(domain._queue)))
        # Slab hygiene (PR 6): a pooled event must carry no edges.
        for event in sim.weave.pool._free:
            if event.children:
                violations.append(
                    ("weave.pool",
                     "recycled event kept %d dependency edge(s): %r"
                     % (len(event.children), event)))
                break
    # Scheduler bookkeeping (run queue vs. running slots).
    violations.extend(sim.scheduler.audit_invariants())
    # Trace freelist (PR 6): bounded, and every shell handed back empty.
    freelist = getattr(sim, "_trace_freelist", None)
    if freelist is not None:
        if len(freelist) > _TRACE_FREELIST_CAP:
            violations.append(
                ("sim.trace_freelist",
                 "freelist grew to %d shells (cap %d)"
                 % (len(freelist), _TRACE_FREELIST_CAP)))
        for trace in freelist:
            if trace:
                violations.append(
                    ("sim.trace_freelist",
                     "recycled trace shell holds %d record(s)"
                     % len(trace)))
                break
    return violations


# ---------------------------------------------------------------------
# The sentinel
# ---------------------------------------------------------------------


class IntegritySentinel:
    """Fingerprint-chain + audit state for one run.

    Deliberately *part of simulated state*: the sentinel pickles with
    the simulator (it is **not** in ``checkpoint._detached``), so every
    snapshot restore — supervisor rollback or ``--resume`` — rewinds
    the chain to the barrier it is restoring, and replayed intervals
    re-derive identical chain values.
    """

    def __init__(self, audit_every=0):
        #: Audit stride in intervals; 0 = fingerprints only, no audits.
        self.audit_every = max(0, int(audit_every))
        #: Running chain value (crc32 ledger over all barriers so far).
        self.chain = 0
        #: Interval of the most recent observation.
        self.interval = 0
        #: Cheap per-component digests of the most recent barrier.
        self.components = {}
        self.fingerprints = 0
        self.audits = 0
        self.violations = 0

    # -- per-barrier hook ---------------------------------------------

    def observe(self, sim, interval):
        """Advance the chain at an interval barrier; run the invariant
        auditor when ``interval`` lands on the audit stride.  Raises
        :class:`~repro.errors.IntegrityError` on a violation."""
        digests = fingerprint_components(sim)
        self.chain = zlib.crc32(chain_payload(interval, digests),
                                self.chain) & 0xFFFFFFFF
        self.components = digests
        self.interval = interval
        self.fingerprints += 1
        flight = getattr(sim, "flight", None)
        if flight is not None:
            flight.record("fingerprint", interval=interval,
                          chain="%08x" % self.chain)
        if self.audit_every and interval % self.audit_every == 0:
            self.audit(sim, interval)
        return self.chain

    def audit(self, sim, interval=None):
        """Run the invariant auditor now; raises on any violation."""
        self.audits += 1
        violations = audit_invariants(sim)
        if not violations:
            return
        self.violations += len(violations)
        component, excerpt = violations[0]
        flight = getattr(sim, "flight", None)
        if flight is not None:
            for comp, text in violations:
                flight.record("integrity_violation", interval=interval,
                              component=comp, excerpt=text)
        raise IntegrityError(
            "integrity audit failed at interval %s: %s — %s%s"
            % (interval, component, excerpt,
               " (+%d more violation(s))" % (len(violations) - 1)
               if len(violations) > 1 else ""),
            component=component, excerpt=excerpt, interval=interval,
            phase="audit")

    # -- checkpoint / verify support ----------------------------------

    def capsule_record(self, sim):
        """Record embedded in checkpoint capsule meta: the chain value
        at this barrier plus *deep* per-component digests that
        ``ZSim.resume`` and ``repro verify`` recompute byte-for-byte."""
        return {
            "interval": self.interval,
            "chain": self.chain,
            "audit_every": self.audit_every,
            "components": fingerprint_components(sim, deep=True),
        }

    def summary(self):
        """Counters for the stats tree / fleet journal."""
        return {"fingerprints": self.fingerprints, "audits": self.audits,
                "violations": self.violations, "chain": self.chain,
                "interval": self.interval}


def verify_state(sim, record, context="resume"):
    """Recompute deep digests on a (restored) simulator and check them
    against a checkpoint capsule's ``meta["integrity"]`` record.
    Returns the digests on success; raises
    :class:`~repro.errors.IntegrityError` naming the first diverging
    component otherwise."""
    digests = fingerprint_components(sim, deep=True)
    expected = dict(record.get("components") or {})
    guilty = [name for name in sorted(set(digests) | set(expected))
              if digests.get(name) != expected.get(name)]
    sentinel = getattr(sim, "integrity", None)
    if not guilty and sentinel is not None \
            and record.get("chain") is not None \
            and sentinel.chain != record["chain"]:
        guilty = ["chain"]
        digests = dict(digests, chain=sentinel.chain)
        expected["chain"] = record["chain"]
    if not guilty:
        return digests
    name = guilty[0]
    raise IntegrityError(
        "%s fingerprint mismatch at interval %s: component %s digest "
        "%s != recorded %s (%d component(s) diverged: %s)"
        % (context, record.get("interval"), name,
           _hex(digests.get(name)), _hex(expected.get(name)),
           len(guilty), ", ".join(guilty[:8])),
        component=name, fingerprint=digests.get(name),
        expected=expected.get(name), interval=record.get("interval"),
        phase="verify")


def _hex(value):
    return "%08x" % value if isinstance(value, int) else "absent"
