"""Multithreaded workloads: PARSEC-, SPLASH-2-, SPEC-OMP-like + STREAM.

The 23 multithreaded validation workloads of Figure 6 plus STREAM.
Parameters encode each benchmark's published behaviour: sharing intensity
(canneal's huge shared graph vs blackscholes' embarrassing parallelism),
synchronization style (fluidanimate's fine-grain locks, barrier-phased
scientific codes), scaling limiters (swaptions' lock contention,
freqmine's serial sections), memory-boundedness (swim_m, art_m, STREAM),
and the power-of-two-thread requirement of radix/ocean/fft/fluidanimate.
"""

from __future__ import annotations

import zlib

from repro.workloads.base import KernelSpec, Workload

# name: (threads, footprint_kb, mem_ratio, pattern, hot, fp_ratio,
#        shared_fraction, shared_kb, lock_iters, barrier_iters,
#        imbalance, seq_fraction)
_MT_TABLE = {
    # --- PARSEC-like --------------------------------------------------
    "blackscholes": (6, 256,   0.22, "random", 0.90, 0.50,
                     0.02, 256,  0,   1600, 0.02, 0.00),
    "canneal":      (6, 8192,  0.35, "chase",  0.30, 0.05,
                     0.60, 8192, 700, 1200, 0.05, 0.00),
    "fluidanimate": (4, 2048,  0.32, "stride", 0.60, 0.35,
                     0.25, 2048, 300, 900, 0.08, 0.00),
    "freqmine":     (6, 2048,  0.30, "random", 0.70, 0.05,
                     0.20, 2048, 0,   900, 0.05, 0.25),
    "streamcluster": (6, 4096, 0.40, "stream", 0.30, 0.35,
                      0.30, 4096, 0,  1000, 0.05, 0.05),
    "swaptions":    (6, 512,   0.25, "random", 0.85, 0.45,
                     0.05, 256,  400, 0,   0.10, 0.00),
    # --- SPLASH-2-like ------------------------------------------------
    "barnes":       (6, 4096,  0.30, "chase",  0.50, 0.35,
                     0.35, 4096, 600, 1000, 0.10, 0.02),
    "fft":          (4, 8192,  0.40, "stream", 0.25, 0.40,
                     0.40, 8192, 0,   900, 0.02, 0.00),
    "lu":           (6, 4096,  0.35, "stride", 0.55, 0.45,
                     0.20, 4096, 0,   900, 0.12, 0.02),
    "ocean":        (4, 16384, 0.42, "stream", 0.25, 0.45,
                     0.25, 8192, 0,   900, 0.04, 0.00),
    "radix":        (4, 8192,  0.40, "random", 0.20, 0.05,
                     0.45, 8192, 0,   900, 0.02, 0.00),
    "water":        (6, 1024,  0.28, "random", 0.80, 0.45,
                     0.15, 1024, 500, 1000, 0.05, 0.00),
    "fmm":          (6, 4096,  0.30, "chase",  0.55, 0.40,
                     0.30, 4096, 700, 1000, 0.10, 0.02),
    # --- SPEC OMP2001-like (the _m suite) ------------------------------
    "swim_m":       (6, 32768, 0.48, "stream", 0.10, 0.45,
                     0.10, 8192, 0,   800, 0.02, 0.00),
    "applu_m":      (6, 16384, 0.42, "stride", 0.30, 0.45,
                     0.10, 8192, 0,   900, 0.04, 0.00),
    "art_m":        (6, 16384, 0.45, "stream", 0.15, 0.40,
                     0.15, 4096, 0,   900, 0.02, 0.00),
    "wupwise_m":    (6, 8192,  0.38, "stream", 0.35, 0.45,
                     0.10, 4096, 0,   900, 0.03, 0.00),
    "mgrid_m":      (6, 16384, 0.42, "stride", 0.30, 0.45,
                     0.10, 8192, 0,   900, 0.03, 0.00),
    "fma3d_m":      (6, 8192,  0.35, "random", 0.50, 0.45,
                     0.15, 4096, 0,   900, 0.06, 0.02),
    "equake_m":     (6, 8192,  0.38, "random", 0.45, 0.40,
                     0.20, 4096, 0,   900, 0.05, 0.02),
    "apsi_m":       (6, 4096,  0.35, "stride", 0.50, 0.45,
                     0.15, 4096, 0,   900, 0.05, 0.02),
    "ammp_m":       (6, 4096,  0.32, "chase",  0.50, 0.40,
                     0.25, 4096, 800, 1000, 0.08, 0.03),
    # --- STREAM (bandwidth saturation, Figure 6 right) -----------------
    "stream":       (6, 32768, 0.50, "stream", 0.00, 0.40,
                     0.00, 64,   0,   0,   0.00, 0.00),
}

MULTITHREADED = tuple(_MT_TABLE)
PARSEC = ("blackscholes", "canneal", "fluidanimate", "freqmine",
          "streamcluster", "swaptions")
SPLASH2 = ("barnes", "fft", "lu", "ocean", "radix", "water", "fmm")
SPEC_OMP = ("swim_m", "applu_m", "art_m", "wupwise_m", "mgrid_m",
            "fma3d_m", "equake_m", "apsi_m", "ammp_m")
#: The ten workloads of Figure 2.
FIGURE2_WORKLOADS = ("barnes", "blackscholes", "canneal", "fft",
                     "fluidanimate", "lu", "ocean", "radix", "swaptions",
                     "water")
#: Table 4's thirteen thousand-core workloads.
TABLE4_WORKLOADS = ("blackscholes", "water", "fluidanimate", "canneal",
                    "wupwise_m", "swim_m", "stream", "applu_m", "barnes",
                    "ocean", "fft", "radix", "mgrid_m")


def mt_workload(name, scale=1.0, num_threads=None, seed=None):
    """Build one multithreaded workload.  ``num_threads`` overrides the
    paper's default thread count (6, or 4 for power-of-two codes)."""
    try:
        (threads, footprint_kb, mem_ratio, pattern, hot, fp_ratio,
         shared_fraction, shared_kb, lock_iters, barrier_iters,
         imbalance, seq_fraction) = _MT_TABLE[name]
    except KeyError:
        raise ValueError("Unknown MT workload: %r (have %s)"
                         % (name, ", ".join(MULTITHREADED)))
    spec = KernelSpec(
        name=name,
        footprint_kb=footprint_kb,
        mem_ratio=mem_ratio,
        write_ratio=0.30,
        # STREAM traffic is one line per element-triplet on real
        # machines (hardware prefetch); without a prefetcher model the
        # equivalent DRAM pressure needs line-stride accesses.
        stride=64 if name == "stream" else 0,
        pattern=pattern,
        hot_fraction=hot,
        fp_ratio=fp_ratio,
        branch_rand=0.08,
        code_blocks=16,
        ilp=4,
        shared_fraction=shared_fraction,
        shared_kb=shared_kb,
        lock_iters=lock_iters,
        barrier_iters=barrier_iters,
        imbalance=imbalance,
        seq_fraction=seq_fraction,
        seed=seed if seed is not None
        else (zlib.crc32(name.encode()) % 10_000) + 31,
    ).scaled(scale)
    return Workload(spec, num_threads=num_threads or threads)


def mt_suite(scale=1.0, names=MULTITHREADED):
    return [mt_workload(name, scale) for name in names]


def default_threads(name):
    """The paper's thread count for a workload (Figure 6)."""
    return _MT_TABLE[name][0]
