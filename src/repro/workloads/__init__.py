"""Synthetic workloads standing in for the paper's benchmark suites."""

from repro.workloads.base import (
    KernelProgram,
    KernelSpec,
    Workload,
    kernel_stream,
)
from repro.workloads.multithreaded import (
    FIGURE2_WORKLOADS,
    MULTITHREADED,
    PARSEC,
    SPEC_OMP,
    SPLASH2,
    TABLE4_WORKLOADS,
    default_threads,
    mt_suite,
    mt_workload,
)
from repro.workloads.multiprogrammed import (
    MultiprogrammedMix,
    interference_study,
)
from repro.workloads.patterns import make_pattern
from repro.workloads.spec_cpu import SPEC_CPU2006, spec_suite, spec_workload

__all__ = [
    "FIGURE2_WORKLOADS",
    "KernelProgram",
    "KernelSpec",
    "MULTITHREADED",
    "MultiprogrammedMix",
    "PARSEC",
    "SPEC_CPU2006",
    "SPEC_OMP",
    "SPLASH2",
    "TABLE4_WORKLOADS",
    "Workload",
    "default_threads",
    "interference_study",
    "kernel_stream",
    "make_pattern",
    "mt_suite",
    "mt_workload",
    "spec_suite",
    "spec_workload",
]
