"""SPEC CPU2006-like single-threaded workloads (all 29, as in Figure 5).

Each entry parameterizes the synthetic kernel to match the benchmark's
published character: memory intensity and footprint (mcf/lbm/libquantum
at the memory-bound end, povray/gamess/namd at the compute-bound end),
access pattern (pointer chasing for mcf/omnetpp/astar/xalancbmk,
streaming for libquantum/lbm/leslie3d/bwaves), branch behaviour (gobmk/
sjeng/perlbench are branchy and hard to predict), FP mix, and code
footprint (gcc/perlbench/xalancbmk have large instruction working sets).

Absolute MPKIs will not match the real suite — these are synthetic
stand-ins (see DESIGN.md) — but the cross-workload *spread* spans the
same axes the paper's validation exercises.
"""

from __future__ import annotations

import zlib

from repro.workloads.base import KernelSpec, Workload

# name: (footprint_kb, mem_ratio, write_ratio, pattern, hot_fraction,
#        fp_ratio, branch_rand, code_blocks, ilp)
_SPEC_TABLE = {
    # --- SPEC CPU2006 integer ---------------------------------------
    "perlbench":  (1024,  0.30, 0.35, "random", 0.85, 0.02, 0.25, 96, 3),
    "bzip2":      (4096,  0.35, 0.30, "random", 0.70, 0.02, 0.18, 32, 3),
    "gcc":        (8192,  0.30, 0.35, "random", 0.75, 0.02, 0.22, 128, 3),
    "mcf":        (32768, 0.35, 0.15, "chase",  0.30, 0.02, 0.15, 16, 2),
    "gobmk":      (512,   0.25, 0.30, "random", 0.85, 0.05, 0.30, 96, 3),
    "hmmer":      (256,   0.40, 0.25, "stride", 0.80, 0.10, 0.05, 16, 6),
    "sjeng":      (512,   0.25, 0.30, "random", 0.85, 0.02, 0.28, 64, 3),
    "libquantum": (16384, 0.30, 0.20, "stream", 0.05, 0.20, 0.05, 8, 6),
    "h264ref":    (1024,  0.35, 0.30, "stride", 0.80, 0.15, 0.12, 48, 5),
    "omnetpp":    (16384, 0.35, 0.30, "chase",  0.45, 0.05, 0.18, 64, 2),
    "astar":      (8192,  0.35, 0.25, "chase",  0.55, 0.05, 0.20, 24, 2),
    "xalancbmk":  (16384, 0.30, 0.30, "chase",  0.60, 0.02, 0.25, 160, 3),
    # --- SPEC CPU2006 floating point --------------------------------
    "bwaves":     (16384, 0.45, 0.25, "stream", 0.30, 0.45, 0.03, 12, 6),
    "gamess":     (256,   0.30, 0.25, "random", 0.90, 0.40, 0.08, 48, 5),
    "milc":       (16384, 0.40, 0.30, "stream", 0.20, 0.40, 0.04, 16, 5),
    "zeusmp":     (8192,  0.40, 0.28, "stride", 0.50, 0.40, 0.05, 24, 5),
    "gromacs":    (512,   0.30, 0.25, "random", 0.85, 0.45, 0.08, 32, 5),
    "cactusADM":  (8192,  0.45, 0.30, "stride", 0.40, 0.45, 0.02, 12, 4),
    "leslie3d":   (16384, 0.45, 0.28, "stream", 0.30, 0.45, 0.03, 16, 5),
    "namd":       (256,   0.25, 0.20, "random", 0.90, 0.50, 0.05, 24, 6),
    "dealII":     (1024,  0.30, 0.28, "random", 0.80, 0.35, 0.10, 64, 4),
    "soplex":     (8192,  0.40, 0.25, "stride", 0.55, 0.30, 0.12, 32, 3),
    "povray":     (256,   0.28, 0.30, "random", 0.90, 0.35, 0.15, 64, 4),
    "calculix":   (1024,  0.35, 0.28, "stride", 0.70, 0.40, 0.06, 32, 5),
    "GemsFDTD":   (16384, 0.45, 0.30, "stream", 0.35, 0.40, 0.03, 16, 5),
    "tonto":      (512,   0.30, 0.28, "random", 0.85, 0.40, 0.08, 48, 5),
    "lbm":        (16384, 0.45, 0.40, "stream", 0.15, 0.35, 0.02, 8, 5),
    "wrf":        (8192,  0.38, 0.28, "stride", 0.55, 0.40, 0.05, 48, 5),
    "sphinx3":    (4096,  0.35, 0.25, "random", 0.60, 0.30, 0.10, 32, 4),
}

SPEC_CPU2006 = tuple(_SPEC_TABLE)


def spec_workload(name, scale=1.0, seed=None):
    """Build one SPEC-like single-threaded workload.  ``scale`` shrinks
    footprints for quick runs (simulation shapes are preserved)."""
    try:
        (footprint_kb, mem_ratio, write_ratio, pattern, hot, fp_ratio,
         branch_rand, code_blocks, ilp) = _SPEC_TABLE[name]
    except KeyError:
        raise ValueError("Unknown SPEC workload: %r (have %s)"
                         % (name, ", ".join(SPEC_CPU2006)))
    spec = KernelSpec(
        name=name,
        footprint_kb=footprint_kb,
        mem_ratio=mem_ratio,
        write_ratio=write_ratio,
        pattern=pattern,
        hot_fraction=hot,
        fp_ratio=fp_ratio,
        branch_rand=branch_rand,
        code_blocks=code_blocks,
        ilp=ilp,
        seed=seed if seed is not None
        else (zlib.crc32(name.encode()) % 10_000) + 17,
    ).scaled(scale)
    return Workload(spec, num_threads=1)


def spec_suite(scale=1.0):
    """All 29 workloads, in suite order."""
    return [spec_workload(name, scale) for name in SPEC_CPU2006]
