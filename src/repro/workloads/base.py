"""Synthetic workload substrate: programs + functional streams.

A workload is a *synthetic binary*: a static mini-ISA program plus a
functional stream of :class:`~repro.isa.program.BBLExec` records, built
from a :class:`KernelSpec` that fixes the characteristics that matter to
the evaluation — footprint, memory intensity, access pattern, branch
predictability, ILP, code footprint, FP mix — and, for multithreaded
kernels, sharing, locking, barriers, imbalance, and serial sections.

This substitutes for the paper's SPEC/PARSEC/SPLASH-2/SPEC-OMP binaries
(see DESIGN.md): the workload *names* map 1:1 to the paper's, and each
spec is parameterized to match the benchmark's published character.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import fp, gp
from repro.virt.process import SimThread
from repro.virt.syscalls import Barrier, Lock, Unlock
from repro.workloads.patterns import make_pattern

#: Per-thread private data regions, 64 MB apart.
PRIVATE_BASE = 0x1000_0000
PRIVATE_STRIDE = 0x0400_0000
#: Shared data region for multithreaded kernels.
SHARED_BASE = 0x8000_0000
#: Lock words live on distinct lines in a dedicated region.
LOCK_BASE = 0xF000_0000


@dataclass
class KernelSpec:
    """Parameters of one synthetic kernel."""

    name: str = "kernel"
    footprint_kb: int = 256      # per-thread private footprint
    mem_ratio: float = 0.30      # fraction of instructions touching memory
    write_ratio: float = 0.30    # stores among memory instructions
    pattern: str = "random"      # stream | stride | random | chase
    stride: int = 0              # 0 = pattern default
    hot_fraction: float = 0.50   # temporal locality knob
    hot_kb: int = 8
    fp_ratio: float = 0.20       # FP share of compute instructions
    body_instrs: int = 16        # instructions per loop body
    branch_rand: float = 0.10    # unpredictable-branch frequency
    ilp: int = 4                 # independent dependency chains
    code_blocks: int = 4         # body clones (instruction footprint)
    seed: int = 1
    # Multithreaded knobs (ignored by single-threaded workloads):
    shared_fraction: float = 0.0  # accesses going to the shared region
    shared_kb: int = 1024
    lock_iters: int = 0           # critical section every N iterations
    cs_accesses: int = 4          # shared-line writes per critical section
    barrier_iters: int = 400      # barrier every N iterations (0 = never)
    imbalance: float = 0.0        # extra work on high thread ids
    seq_fraction: float = 0.0     # serial section (thread 0) per phase

    def scaled(self, scale):
        """Return a copy with footprints scaled by ``scale``."""
        return replace(self,
                       footprint_kb=max(16, int(self.footprint_kb * scale)),
                       shared_kb=max(16, int(self.shared_kb * scale)))


class KernelProgram:
    """The static program compiled from a spec, plus its special blocks."""

    def __init__(self, spec):
        self.spec = spec
        # Deterministic per-binary code base (same workload -> same
        # addresses, different workloads land apart): CRC, not hash(),
        # which is randomized across interpreter runs.
        key = zlib.crc32(("%s/%d" % (spec.name, spec.seed)).encode())
        code_base = 0x40_0000 + (key % 4096) * 0x10_0000
        self.program = Program(spec.name, code_base=code_base)
        self.bodies = [self._build_body(i)
                       for i in range(max(1, spec.code_blocks))]
        self.branch_block = self.program.add_block([
            Instruction(Opcode.CMP, gp(2), gp(3)),
            Instruction(Opcode.COND_BRANCH),
        ])
        self.then_block = self.program.add_block([
            Instruction(Opcode.ALU, gp(4), gp(5), gp(4)),
            Instruction(Opcode.ALU, gp(5), gp(6), gp(5)),
            Instruction(Opcode.JMP),
        ])
        # Atomic read-modify-write on a lock word (coherence traffic on
        # the lock line) preceding the LOCK syscall.
        self.atomic_block = self.program.add_block([
            Instruction(Opcode.ALU_STORE, gp(13), gp(4), gp(5)),
        ])
        self.syscall_block = self.program.add_block([
            Instruction(Opcode.SYSCALL),
        ])
        # Critical-section body: writes to shared counter lines.
        self.cs_block = self.program.add_block([
            Instruction(Opcode.LOAD_ALU, gp(13), gp(6), gp(7)),
            Instruction(Opcode.STORE, gp(13), gp(7)),
        ])
        self.magic_block = self.program.add_block([
            Instruction(Opcode.MAGIC),
        ])

    def _build_body(self, index):
        """One loop-body basic block honoring the spec's instruction
        mix.  Clones differ only by code address (I-footprint)."""
        spec = self.spec
        rng = random.Random(spec.seed * 1000 + index)
        work = max(2, spec.body_instrs - 2)
        n_mem = min(work, int(round(work * spec.mem_ratio)))
        n_stores = int(round(n_mem * spec.write_ratio))
        n_loads = n_mem - n_stores
        n_comp = work - n_mem
        n_fp = int(round(n_comp * spec.fp_ratio))
        ilp = max(1, spec.ilp)
        instrs = []
        slots = (["load"] * n_loads + ["store"] * n_stores
                 + ["fp"] * n_fp + ["alu"] * (n_comp - n_fp))
        rng.shuffle(slots)
        for i, slot in enumerate(slots):
            chain = gp(2 + (i % min(ilp, 10)))
            if slot == "load":
                instrs.append(Instruction(Opcode.LOAD, gp(14), dst1=chain))
            elif slot == "store":
                instrs.append(Instruction(Opcode.STORE, gp(14), chain))
            elif slot == "fp":
                freg = fp(i % 8)
                op = Opcode.FPMUL if i % 3 == 0 else Opcode.FPADD
                instrs.append(Instruction(op, freg, fp((i + 1) % 8),
                                          dst1=freg))
            else:
                instrs.append(Instruction(Opcode.ALU, chain, gp(1),
                                          dst1=chain))
        instrs.append(Instruction(Opcode.CMP, gp(2), gp(3)))
        instrs.append(Instruction(Opcode.COND_BRANCH))
        return self.program.add_block(instrs)


def kernel_stream(kprog, thread_id=0, num_threads=1, target_instrs=200_000,
                  seed_offset=0):
    """Functional stream for one thread of a kernel.

    Single-threaded kernels (``num_threads == 1`` and no MT knobs) emit
    loop bodies with pattern-generated addresses and occasional
    unpredictable branches.  Multithreaded kernels add shared accesses,
    lock-protected critical sections, barrier phases, imbalance, and
    serial sections, using syscalls for synchronization.
    """
    spec = kprog.spec
    rng = random.Random((spec.seed << 16) + thread_id * 7919 + seed_offset)
    private_base = PRIVATE_BASE + thread_id * PRIVATE_STRIDE
    pattern = make_pattern(
        spec.pattern, private_base, spec.footprint_kb * 1024, rng,
        stride=spec.stride or None, hot_fraction=spec.hot_fraction,
        hot_bytes=spec.hot_kb * 1024)
    shared_pattern = None
    if spec.shared_fraction > 0.0 and num_threads > 1:
        shared_pattern = make_pattern(
            "random", SHARED_BASE, spec.shared_kb * 1024, rng)

    bodies = kprog.bodies
    num_bodies = len(bodies)
    branch_block = kprog.branch_block
    then_block = kprog.then_block
    shared_frac = spec.shared_fraction if num_threads > 1 else 0.0
    barrier_iters = spec.barrier_iters if num_threads > 1 else 0
    lock_iters = spec.lock_iters if num_threads > 1 else 0
    lock_addr = LOCK_BASE + (zlib.crc32(spec.name.encode()) % 64) * 64
    counter_base = SHARED_BASE + spec.shared_kb * 1024

    # Work share: higher thread ids may carry extra work (imbalance).
    # With barriers, imbalance scales the *per-phase* work so every
    # thread still reaches the same barrier sequence (no deadlock).
    imbalance_factor = 1.0
    if spec.imbalance > 0.0 and num_threads > 1:
        imbalance_factor = (1.0 + spec.imbalance * thread_id /
                            (num_threads - 1))
    my_target = int(target_instrs * imbalance_factor)

    def body_exec(iteration):
        body = bodies[iteration % num_bodies]
        addrs = []
        for _ in range(body.num_mem_slots):
            if shared_pattern is not None and rng.random() < shared_frac:
                addrs.append(shared_pattern())
            else:
                addrs.append(pattern())
        return BBLExec(body, tuple(addrs), taken=True)

    emitted = 0
    iteration = 0
    phase = 0
    if barrier_iters:
        # Phase count derives from the *common* target so all threads
        # emit identical barrier sequences; imbalance scales the work
        # each thread does inside a phase instead.  The per-phase
        # iteration count is clamped so total work tracks the target
        # even when the target is smaller than one nominal phase.
        body = max(1, spec.body_instrs)
        phases = max(1, target_instrs // (barrier_iters * body))
        base_iters = max(1, round(target_instrs / (phases * body)))
        iters_per_phase = max(1, int(base_iters * imbalance_factor))
    else:
        phases = 1
        iters_per_phase = None  # run until target

    while phase < phases:
        iters = iters_per_phase
        i = 0
        while (iters is None and emitted < my_target) or \
                (iters is not None and i < iters):
            exec_ = body_exec(iteration)
            emitted += exec_.block.num_instrs
            yield exec_
            if rng.random() < spec.branch_rand:
                taken = rng.random() < 0.5
                yield BBLExec(branch_block, (), taken=taken)
                emitted += branch_block.num_instrs
                if taken:
                    yield BBLExec(then_block, (), taken=True)
                    emitted += then_block.num_instrs
            if lock_iters and (iteration + 1) % lock_iters == 0:
                yield from _critical_section(kprog, rng, lock_addr,
                                             counter_base, spec)
            iteration += 1
            i += 1
        if barrier_iters:
            key = (spec.name, "phase", phase)
            yield BBLExec(kprog.syscall_block, (),
                          syscall=Barrier(key, num_threads))
            if spec.seq_fraction > 0.0:
                # Serial section: thread 0 works; everyone re-syncs.
                # The serial span per phase is a fixed fraction of the
                # phase (Amdahl), independent of the thread count.
                if thread_id == 0:
                    serial_iters = max(1, int(iters_per_phase
                                              * spec.seq_fraction))
                    for _ in range(serial_iters):
                        exec_ = body_exec(iteration)
                        emitted += exec_.block.num_instrs
                        yield exec_
                        iteration += 1
                key2 = (spec.name, "serial", phase)
                yield BBLExec(kprog.syscall_block, (),
                              syscall=Barrier(key2, num_threads))
        phase += 1


def _critical_section(kprog, rng, lock_addr, counter_base, spec):
    """Lock -> shared counter updates -> unlock."""
    key = ("lock", lock_addr)
    yield BBLExec(kprog.atomic_block, (lock_addr, lock_addr), taken=False)
    yield BBLExec(kprog.syscall_block, (), syscall=Lock(key))
    for _ in range(spec.cs_accesses):
        counter = counter_base + rng.randrange(8) * 64
        yield BBLExec(kprog.cs_block, (counter, counter), taken=False)
    yield BBLExec(kprog.atomic_block, (lock_addr, lock_addr), taken=False)
    yield BBLExec(kprog.syscall_block, (), syscall=Unlock(key))


class Workload:
    """A named workload: a factory of simulated threads."""

    def __init__(self, spec, num_threads=1):
        self.spec = spec
        self.num_threads = num_threads
        self._kprog = None

    @property
    def name(self):
        return self.spec.name

    def kernel_program(self):
        if self._kprog is None:
            self._kprog = KernelProgram(self.spec)
        return self._kprog

    def make_threads(self, target_instrs=200_000, num_threads=None,
                     tcache=None, seed_offset=0):
        """Create one :class:`SimThread` per thread, sharing a
        translation cache (decode-once across threads, like zsim)."""
        kprog = self.kernel_program()
        n = num_threads or self.num_threads
        tcache = tcache if tcache is not None else TranslationCache()
        per_thread = max(1000, target_instrs // n)
        threads = []
        for tid in range(n):
            stream = InstrumentedStream(
                kernel_stream(kprog, tid, n, per_thread, seed_offset),
                translation_cache=tcache,
                program_id=kprog.program.program_id)
            threads.append(SimThread(stream,
                                     name="%s-t%d" % (self.name, tid)))
        return threads

    def __repr__(self):
        return "Workload(%s, %d threads)" % (self.name, self.num_threads)
