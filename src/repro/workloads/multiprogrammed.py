"""Multiprogrammed (multi-process) workload composition.

zsim supports multiprogrammed apps as a first-class workload class
(Table 1); several contemporaries only manage it trace-driven.  This
module composes independent programs — e.g., a SPEC-rate-style mix of
single-threaded benchmarks — into one simulation: each constituent gets
its own :class:`~repro.virt.process.SimProcess`, its own address-space
slice, and (by default) its own core via affinity, while sharing the
chip's L3 and memory controllers.  The classic use is interference
studies: per-app slowdown of a mix vs running solo.
"""

from __future__ import annotations

from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.translation_cache import TranslationCache
from repro.virt.process import SimProcess, SimThread
from repro.workloads.base import PRIVATE_STRIDE, kernel_stream


class MultiprogrammedMix:
    """A mix of independent workloads run as separate processes."""

    def __init__(self, workloads, pin_to_cores=True):
        if not workloads:
            raise ValueError("A mix needs at least one workload")
        self.workloads = list(workloads)
        self.pin_to_cores = pin_to_cores
        self.processes = []

    @property
    def name(self):
        return "+".join(w.name for w in self.workloads)

    def make_threads(self, target_instrs=200_000, seed_offset=0):
        """One thread per constituent workload, each in its own process.

        ``target_instrs`` is per constituent.  Address-space slices are
        separated by giving constituent *i* the thread-id-*i* private
        region (the regions the MT substrate reserves per thread).
        """
        self.processes = []
        threads = []
        for idx, workload in enumerate(self.workloads):
            process = SimProcess(workload.name)
            self.processes.append(process)
            kprog = workload.kernel_program()
            # Distinct translation cache per process: different programs
            # do not share Pin code caches.
            stream = InstrumentedStream(
                kernel_stream(kprog, thread_id=idx, num_threads=1,
                              target_instrs=target_instrs,
                              seed_offset=seed_offset),
                translation_cache=TranslationCache(),
                program_id=kprog.program.program_id)
            affinity = {idx} if self.pin_to_cores else None
            threads.append(SimThread(stream,
                                     name="%s.%d" % (workload.name, idx),
                                     process=process,
                                     affinity=affinity))
        return threads

    def footprint_span(self):
        """Sanity: constituents' data regions never overlap."""
        spans = []
        for idx, workload in enumerate(self.workloads):
            base = 0x1000_0000 + idx * PRIVATE_STRIDE
            size = (workload.spec.footprint_kb
                    + workload.spec.hot_kb) * 1024
            spans.append((base, base + size))
        spans.sort()
        for (lo1, hi1), (lo2, _hi2) in zip(spans, spans[1:]):
            if hi1 > lo2:
                return False
        return True


def interference_study(config, workloads, target_instrs=60_000,
                       contention_model="weave"):
    """Per-app slowdown of the mix vs each app running solo.

    Returns {workload_name: {"solo_cycles", "mix_cycles", "slowdown"}}.
    The chip must have at least len(workloads) cores.
    """
    from repro.core.simulator import ZSim

    if config.num_cores < len(workloads):
        raise ValueError("Mix of %d apps needs >= %d cores"
                         % (len(workloads), len(workloads)))
    results = {}
    # Solo runs: each constituent alone on the chip.
    for idx, workload in enumerate(workloads):
        mix = MultiprogrammedMix([workload])
        sim = ZSim(config, threads=mix.make_threads(target_instrs),
                   contention_model=contention_model)
        res = sim.run()
        results[workload.name] = {
            "solo_cycles": max(c.cycle for c in sim.cores
                               if c.instrs > 0),
        }
    # The mix.
    mix = MultiprogrammedMix(workloads)
    sim = ZSim(config, threads=mix.make_threads(target_instrs),
               contention_model=contention_model)
    sim.run()
    for idx, workload in enumerate(workloads):
        mix_cycles = sim.cores[idx].cycle
        entry = results[workload.name]
        entry["mix_cycles"] = mix_cycles
        entry["slowdown"] = mix_cycles / entry["solo_cycles"]
    return results
