"""Client-server and managed-runtime workload builders (Section 3.3).

The paper's virtualization layer exists for exactly these workload
classes — "we have used zsim to simulate JVM workloads like SPECJBB;
h-store, a multiprocess, client-server workload...; and memcached with
user-level TCP/IP".  This module provides reusable builders:

* :func:`client_server_threads` — an h-store/memcached-shaped workload:
  a server process serving futex-signalled requests from client
  processes, with request latencies observable through the virtualized
  clock (timeouts evaluate against simulated time).
* :func:`managed_runtime_threads` — a SPECJBB/JVM-shaped workload:
  barrier-phased workers sized to the *simulated* core count plus
  background GC threads that sleep on simulated time, so more threads
  than cores exercise the round-robin scheduler.
"""

from __future__ import annotations

from repro.dbt.instrumentation import InstrumentedStream
from repro.dbt.translation_cache import TranslationCache
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.virt.process import SimProcess, SimThread
from repro.virt.syscalls import Barrier, FutexWait, FutexWake, Sleep
from repro.virt.sysview import SystemView


def _service_blocks(name):
    program = Program(name)
    work = program.add_block(
        [Instruction(Opcode.LOAD, gp(14), dst1=gp(2)),
         Instruction(Opcode.ALU, gp(2), gp(3), gp(2)),
         Instruction(Opcode.STORE, gp(14), gp(2))]
        + [Instruction(Opcode.ALU, gp(4 + i % 3), gp(5), gp(4 + i % 3))
           for i in range(5)])
    syscall = program.add_block([Instruction(Opcode.SYSCALL)])
    return program, work, syscall


class RequestLog:
    """Issue/reply cycles per request, collected via a scheduler hook."""

    def __init__(self):
        self.requests = []     # (client_id, request_idx, issue, reply)
        self._pending = {}

    def issue(self, client_id, request_idx, cycle):
        self._pending[(client_id, request_idx)] = cycle

    def reply(self, client_id, request_idx, cycle):
        issue = self._pending.pop((client_id, request_idx), cycle)
        self.requests.append((client_id, request_idx, issue, cycle))

    def latencies(self):
        return [reply - issue for _c, _r, issue, reply in self.requests]

    def timeouts(self, clock, timeout_ns):
        return sum(1 for _c, _r, issue, reply in self.requests
                   if clock.timeout_expired(issue, reply, timeout_ns))


def client_server_threads(num_clients=2, requests_per_client=8,
                          service_iters=20, think_iters=10,
                          request_log=None, sim=None):
    """Build server + client threads.

    With ``request_log`` and ``sim`` given, the log's issue/reply stamps
    are captured by wrapping the simulator's syscall handler (the
    functional stream, like a real binary, can only observe simulated
    time through the virtualized interface).
    """
    program, work, sys_block = _service_blocks("client-server")
    tcache = TranslationCache()
    server_proc = SimProcess("server")

    def server_stream():
        total = num_clients * requests_per_client
        for _ in range(total):
            yield BBLExec(sys_block, (), syscall=FutexWait("requests"))
            for i in range(service_iters):
                addr = 0x8000_0000 + (i * 64) % 8192
                yield BBLExec(work, (addr, addr))
            yield BBLExec(sys_block, (), syscall=FutexWake("replies"))

    def client_stream(client_id):
        base = 0x1000_0000 + client_id * 0x100_0000
        for req in range(requests_per_client):
            for i in range(think_iters):
                yield BBLExec(work, (base + i * 64, base + i * 64))
            yield BBLExec(sys_block, (), syscall=FutexWake("requests"))
            yield BBLExec(sys_block, (),
                          syscall=_TaggedWait("replies", client_id, req))

    threads = [SimThread(InstrumentedStream(server_stream(), tcache),
                         name="server", process=server_proc)]
    for client_id in range(num_clients):
        proc = SimProcess("client-%d" % client_id)
        threads.append(SimThread(
            InstrumentedStream(client_stream(client_id), tcache),
            name="client-%d" % client_id, process=proc))
    if request_log is not None and sim is not None:
        _install_log_hook(sim, request_log)
    return threads


class _TaggedWait(FutexWait):
    """A futex wait tagged with (client, request) for latency logging."""

    def __init__(self, key, client_id, request_idx):
        super().__init__(key)
        self.client_id = client_id
        self.request_idx = request_idx


def _install_log_hook(sim, request_log):
    """Stamp issue cycles at the tagged wait and reply cycles at the
    scheduler wake that releases it."""
    scheduler = sim.scheduler
    original_handle = scheduler.handle_syscall
    original_wake = scheduler._wake
    pending = {}   # thread -> (client_id, request_idx)

    def handle(thread, syscall, cycle):
        if isinstance(syscall, _TaggedWait):
            request_log.issue(syscall.client_id, syscall.request_idx,
                              cycle)
            result = original_handle(thread, syscall, cycle)
            if result == "continue":
                # A stored wake token satisfied the wait instantly.
                request_log.reply(syscall.client_id,
                                  syscall.request_idx, cycle)
            else:
                pending[thread] = (syscall.client_id,
                                   syscall.request_idx)
            return result
        return original_handle(thread, syscall, cycle)

    def wake(thread, cycle):
        original_wake(thread, cycle)
        tag = pending.pop(thread, None)
        if tag is not None:
            request_log.reply(tag[0], tag[1], thread.wake_cycle)

    scheduler.handle_syscall = handle
    scheduler._wake = wake


def managed_runtime_threads(config, phases=4, iters_per_phase=150,
                            gc_threads=2, gc_sleep_cycles=20_000,
                            gc_scan_iters=100):
    """SPECJBB/JVM-shaped workload: worker pool sized from the simulated
    system view + background GC threads (more threads than cores)."""
    program, work, sys_block = _service_blocks("managed-runtime")
    tcache = TranslationCache()
    process = SimProcess("jvm")
    num_workers = SystemView(config).cpu_count()

    def worker_stream(tid):
        base = 0x1000_0000 + tid * 0x100_0000
        for phase in range(phases):
            for i in range(iters_per_phase):
                addr = base + (i * 64) % 32768
                yield BBLExec(work, (addr, addr))
            yield BBLExec(sys_block, (),
                          syscall=Barrier(("gen", phase), num_workers))

    def gc_stream(tid):
        base = 0x8000_0000
        for _cycle in range(phases):
            yield BBLExec(sys_block, (), syscall=Sleep(gc_sleep_cycles))
            for i in range(gc_scan_iters):
                yield BBLExec(work, (base + i * 64, base + i * 64))

    threads = [SimThread(InstrumentedStream(worker_stream(t), tcache),
                         name="worker-%d" % t, process=process)
               for t in range(num_workers)]
    threads += [SimThread(InstrumentedStream(gc_stream(t), tcache),
                          name="gc-%d" % t, process=process)
                for t in range(gc_threads)]
    return threads
