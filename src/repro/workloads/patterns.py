"""Data-access pattern generators for synthetic workloads.

Each generator is a callable returning the next byte address.  Patterns
cover the axes that differentiate the paper's benchmark suites: streaming
(STREAM, libquantum, lbm), strided (scientific stencils), uniform random
(hash-heavy codes), and pointer chasing (mcf, omnetpp, canneal).  A hot
set mixes in temporal locality so per-workload MPKIs are controllable.
"""

from __future__ import annotations

import random

LINE = 64


class StreamPattern:
    """Sequential walk: ``base, base+stride, ...`` wrapping at the
    footprint (spatial locality: with stride < 64 most accesses hit the
    line fetched by the previous miss)."""

    def __init__(self, base, footprint, stride=8):
        self.base = base
        self.footprint = footprint
        self.stride = stride
        self._offset = 0

    def __call__(self):
        addr = self.base + self._offset
        self._offset += self.stride
        if self._offset >= self.footprint:
            self._offset = 0
        return addr


class StridePattern(StreamPattern):
    """Large-stride walk (one access per line or worse)."""

    def __init__(self, base, footprint, stride=256):
        super().__init__(base, footprint, stride)


class RandomPattern:
    """Uniform random accesses over the footprint."""

    def __init__(self, base, footprint, rng):
        self.base = base
        self.footprint = max(LINE, footprint)
        self.rng = rng

    def __call__(self):
        return self.base + (self.rng.randrange(self.footprint) & ~7)


class ChasePattern:
    """Pointer chasing: a random-permutation cycle over the lines of the
    footprint — every access depends on the previous one and has no
    spatial locality, the mcf/omnetpp signature."""

    def __init__(self, base, footprint, rng):
        self.base = base
        num_lines = max(2, footprint // LINE)
        perm = list(range(num_lines))
        rng.shuffle(perm)
        # Build a single cycle through all lines.
        self._next = [0] * num_lines
        for i in range(num_lines):
            self._next[perm[i]] = perm[(i + 1) % num_lines]
        self._current = perm[0]

    def __call__(self):
        self._current = self._next[self._current]
        return self.base + self._current * LINE


class HotColdPattern:
    """With probability ``hot_fraction``, access a small hot region
    (L1-resident); otherwise defer to the cold pattern."""

    def __init__(self, cold, base, hot_bytes, hot_fraction, rng):
        self.cold = cold
        self.base = base
        self.hot_bytes = max(LINE, hot_bytes)
        self.hot_fraction = hot_fraction
        self.rng = rng

    def __call__(self):
        if self.rng.random() < self.hot_fraction:
            return self.base + (self.rng.randrange(self.hot_bytes) & ~7)
        return self.cold()


def make_pattern(kind, base, footprint, rng, stride=None, hot_fraction=0.0,
                 hot_bytes=8 * 1024):
    """Build a pattern generator by name, optionally wrapped in a hot
    set.  ``kind``: "stream" | "stride" | "random" | "chase"."""
    if kind == "stream":
        cold = StreamPattern(base, footprint, stride or 8)
    elif kind == "stride":
        cold = StridePattern(base, footprint, stride or 256)
    elif kind == "random":
        cold = RandomPattern(base, footprint, rng)
    elif kind == "chase":
        cold = ChasePattern(base, footprint, rng)
    else:
        raise ValueError("Unknown pattern kind: %r" % (kind,))
    if hot_fraction > 0.0:
        return HotColdPattern(cold, base + footprint, hot_bytes,
                              hot_fraction, rng)
    return cold
