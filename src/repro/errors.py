"""Typed error hierarchy for the simulator.

Every failure the engine can diagnose raises a subclass of
:class:`SimulationError` carrying structured context (the offending
core/domain/worker, the interval, blocked-thread reports) instead of a
bare ``RuntimeError`` whose only payload is its message.  The split that
matters operationally:

* :class:`ExecutionFault` — something went wrong *executing* an interval
  (a worker died, stalled past the watchdog budget, or tripped the weave
  horizon invariant).  Interval barriers are consistent global states,
  so these are **recoverable**: the resilience supervisor re-runs the
  interval on the serial backend from the interval-boundary snapshot
  (see :mod:`repro.resilience`).
* Everything else — deadlocked simulated threads, bad configs, corrupt
  checkpoints, an exhausted wall-clock budget — is a property of the
  simulation itself and is never retried.
"""

from __future__ import annotations

import traceback


def format_cause(exc):
    """Render an exception's full traceback, for embedding in a
    :class:`WorkerFailure` raised on a different thread."""
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))


class SimulationError(RuntimeError):
    """Base class for all typed simulator errors."""


class ConfigError(SimulationError, ValueError):
    """Invalid configuration (also a ValueError for backward
    compatibility with callers catching the old untyped raises)."""


class DeadlockError(SimulationError):
    """No runnable threads, no sleepers, no attached cores: the
    simulated program can never make progress again.

    Attributes:
        blocked: list of per-thread dicts (name, state, last core,
            wake_cycle, blocked/syscall counts) from
            ``Scheduler.blocked_report()``.
        next_wake: earliest sleeper wake cycle (always None here — a
            pending sleeper would not be a deadlock).
        interval: 1-based interval number at detection time.
    """

    def __init__(self, message, blocked=(), next_wake=None, interval=None):
        super().__init__(message)
        self.blocked = list(blocked)
        self.next_wake = next_wake
        self.interval = interval


class ExecutionFault(SimulationError):
    """Base class for faults in *how* an interval executed (not in the
    simulated program).  Recoverable by interval replay."""

    def __init__(self, message, phase=None, interval=None, worker=None,
                 core=None, domain=None):
        super().__init__(message)
        self.phase = phase          # "bound" | "weave" | "weave-stage"
        self.interval = interval    # 1-based interval number
        self.worker = worker        # pool worker index (if known)
        self.core = core            # offending core id (bound jobs)
        self.domain = domain        # offending weave domain id


class WorkerFailure(ExecutionFault):
    """A pool worker's job raised.  ``__cause__`` is the original
    exception (raised with ``raise ... from``), ``traceback_text`` its
    rendered traceback at the point of failure."""

    def __init__(self, message, traceback_text="", **ctx):
        super().__init__(message, **ctx)
        self.traceback_text = traceback_text


class WatchdogTimeout(ExecutionFault):
    """No worker completed a job within the watchdog budget: a worker
    is stalled (or was killed) and the pass cannot finish."""

    def __init__(self, message, budget_s=None, completed=None,
                 pending=None, **ctx):
        super().__init__(message, **ctx)
        self.budget_s = budget_s
        self.completed = completed
        self.pending = pending


class HorizonViolation(ExecutionFault):
    """A weave domain popped an event below its per-interval cycle
    floor: event timestamps are corrupt or an executor broke the
    horizon discipline (pops per domain are nondecreasing within an
    interval in every legal execution)."""

    def __init__(self, message, cycle=None, floor=None, **ctx):
        super().__init__(message, **ctx)
        self.cycle = cycle
        self.floor = floor


class IntegrityError(ExecutionFault):
    """The state-integrity sentinel caught silent corruption: an online
    invariant audit failed (MESI single-writer, inclusion, weave queue
    discipline, scheduler bookkeeping, slab hygiene) or an interval
    fingerprint diverged from its recorded chain value.  Recoverable —
    but unlike other execution faults the damage may predate detection,
    so the supervisor rewinds to the last *fingerprint-verified*
    snapshot (not just the current interval) and replays the whole span
    serially (see repro.resilience.integrity).

    Attributes:
        component: dotted path of the guilty subsystem
            (e.g. ``mem.l1d-3`` or ``weave.domain1``).
        excerpt: short state excerpt pinpointing the violation.
        fingerprint: observed digest (fingerprint divergences only).
        expected: recorded digest the observation was checked against.
    """

    def __init__(self, message, component=None, excerpt=None,
                 fingerprint=None, expected=None, **ctx):
        super().__init__(message, **ctx)
        self.component = component
        self.excerpt = excerpt
        self.fingerprint = fingerprint
        self.expected = expected


class ProcessPoolError(ExecutionFault):
    """The process backend's worker pool failed systemically: fork
    itself errored, the whole pool died repeatedly, or a speculation
    replay diverged from its validated prefix.  Individual worker
    deaths never raise this — they degrade to inline execution — so
    when it does surface, the supervisor's degradation ladder demotes
    the backend a rung (process -> parallel -> serial)."""


class WallClockExceeded(SimulationError):
    """The run outlived ``--max-wall-seconds``.  When checkpointing is
    on, ``checkpoint_path`` names the snapshot written on the way out
    so the run can be resumed."""

    def __init__(self, message, budget_s=None, elapsed_s=None,
                 intervals=None, checkpoint_path=None):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.intervals = intervals
        self.checkpoint_path = checkpoint_path


class RunInterrupted(WallClockExceeded):
    """The run was stopped by an external request (SIGTERM/SIGINT to
    ``repro run``).  A subclass of :class:`WallClockExceeded` on
    purpose: an interrupted run takes exactly the budget-exhausted exit
    path — final checkpoint when checkpointing is on, exit code 75,
    resumable — instead of dying with a traceback."""

    def __init__(self, message, reason=None, **kwargs):
        super().__init__(message, **kwargs)
        self.reason = reason


class FleetError(SimulationError):
    """A campaign-level failure in the fleet orchestrator: an invalid
    sweep spec, an unreadable journal, or a campaign directory in a
    state that cannot be resumed.  Per-job failures never raise this —
    they are retried and, past the quarantine threshold, parked as
    :class:`JobQuarantined`."""


class JobQuarantined(FleetError):
    """A sweep job failed ``quarantine_after`` consecutive attempts and
    was parked by the circuit breaker.  Raised internally by the
    orchestrator's failure bookkeeping (and caught there: one rotten
    spec must not burn the fleet's retry budget); carries the evidence
    a post-mortem needs."""

    def __init__(self, message, job=None, attempts=None, exit_code=None,
                 capsules=()):
        super().__init__(message)
        self.job = job                  # job id
        self.attempts = attempts        # attempts consumed
        self.exit_code = exit_code      # last exit code observed
        self.capsules = list(capsules)  # post-mortem capsule paths


class CheckpointError(SimulationError):
    """A checkpoint could not be written, read, or applied."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint's format version does not match this build."""

    def __init__(self, message, found=None, expected=None):
        super().__init__(message)
        self.found = found
        self.expected = expected
