"""System configuration: dataclasses plus Table 2 / Table 3 presets."""

from repro.config.loader import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.config.presets import small_test_system, tiled_chip, westmere
from repro.config.system import (
    BoundWeaveConfig,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DDR3Timing,
    MemoryConfig,
    NetworkConfig,
    SystemConfig,
)

__all__ = [
    "BoundWeaveConfig",
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "DDR3Timing",
    "MemoryConfig",
    "NetworkConfig",
    "SystemConfig",
    "config_from_dict",
    "config_to_dict",
    "load_config",
    "save_config",
    "small_test_system",
    "tiled_chip",
    "westmere",
]
