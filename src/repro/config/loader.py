"""Config serialization: SystemConfig <-> plain dicts / JSON files.

zsim drives simulations from .cfg files; the equivalent here is a JSON
document mirroring the dataclass tree.  Unknown keys are rejected and
scalar values are type-checked against the dataclass annotations (typos
and ``"8"``-for-``8`` string slips in config files must fail loudly,
with the full dotted path in the message), nested sections are
optional, and presets can be used as bases::

    cfg = load_config("chip.json", base=westmere())

All rejections raise :class:`~repro.errors.ConfigError` (a ValueError
subclass, so pre-existing ``except ValueError`` callers still catch).
"""

from __future__ import annotations

import dataclasses
import json

from repro.errors import ConfigError
from repro.config.system import (
    BoundWeaveConfig,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    DDR3Timing,
    MemoryConfig,
    NetworkConfig,
    SystemConfig,
)

_SECTION_TYPES = {
    "core": CoreConfig,
    "l1i": CacheConfig,
    "l1d": CacheConfig,
    "l2": CacheConfig,
    "l3": CacheConfig,
    "network": NetworkConfig,
    "memory": MemoryConfig,
    "boundweave": BoundWeaveConfig,
    "bpred": BranchPredictorConfig,
    "timing": DDR3Timing,
}


def config_to_dict(config):
    """Serialize any config dataclass to a plain dict (None elided)."""
    out = dataclasses.asdict(config)

    def prune(node):
        if isinstance(node, dict):
            return {k: prune(v) for k, v in node.items() if v is not None}
        return node
    return prune(out)


# Scalar annotation -> accepted runtime types.  Annotations are strings
# (system.py uses ``from __future__ import annotations``), so the map is
# keyed by annotation text.  int is acceptable where float is declared
# (JSON has one number type); bool is NOT acceptable as int/float even
# though it subclasses int — ``"inclusive": 1`` and ``"ways": true`` are
# both config bugs.
_SCALARS = {
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "str": (str,),
}


def _check_scalar(path, key, annotation, value):
    """Type-check one scalar field; raises ConfigError on mismatch."""
    accepted = _SCALARS.get(annotation)
    if accepted is None or value is None:
        return
    if not isinstance(value, accepted) or (isinstance(value, bool)
                                           and annotation != "bool"):
        raise ConfigError(
            "%s.%s: expected %s, got %s (%r)"
            % (path, key, annotation, type(value).__name__, value))


def _build(cls, data, path):
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ConfigError("Config section %r must be an object, got %r"
                          % (path, type(data).__name__))
    fields = {f.name: f for f in dataclasses.fields(cls)}
    kwargs = {}
    for key, value in data.items():
        if key not in fields:
            raise ConfigError("Unknown config key %r in section %r "
                              "(valid: %s)"
                              % (key, path, ", ".join(sorted(fields))))
        section_cls = _SECTION_TYPES.get(key)
        if section_cls is not None:
            if isinstance(value, section_cls):
                kwargs[key] = value       # pre-built section instance
                continue
            if value is not None and not isinstance(value, dict):
                raise ConfigError(
                    "%s.%s: expected an object, got %s (%r)"
                    % (path, key, type(value).__name__, value))
            kwargs[key] = _build(section_cls, value,
                                 "%s.%s" % (path, key))
        else:
            _check_scalar(path, key, fields[key].type, value)
            kwargs[key] = value
    return cls(**kwargs)


def config_from_dict(data, base=None):
    """Build a :class:`SystemConfig` from a dict.

    With ``base``, the dict's keys override the base config (sections
    merge shallowly: giving ``{"l3": {...}}`` replaces the whole L3
    section).
    """
    if base is not None:
        merged = config_to_dict(base)
        for key, value in data.items():
            if isinstance(value, dict) and isinstance(merged.get(key),
                                                      dict):
                merged[key] = {**merged[key], **value}
            else:
                merged[key] = value
        data = merged
    # hetero_cores is a core_id -> CoreConfig mapping; JSON keys are
    # strings, so coerce.
    data = dict(data)
    hetero = data.pop("hetero_cores", None)
    config = _build(SystemConfig, data, "system")
    if hetero:
        config.hetero_cores = {
            int(core_id): (_build(CoreConfig, core_cfg,
                                  "hetero_cores[%s]" % core_id)
                           if isinstance(core_cfg, dict) else core_cfg)
            for core_id, core_cfg in hetero.items()}
    return config.validate()


def save_config(config, path):
    """Write a config as JSON."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2,
                  sort_keys=True)


def load_config(path, base=None):
    """Load a :class:`SystemConfig` from a JSON file."""
    with open(path) as handle:
        return config_from_dict(json.load(handle), base=base)
