"""Configuration dataclasses for simulated systems.

Everything the simulator models is configured through these plain
dataclasses: core type and microarchitectural parameters, each cache
level, the on-chip network, the memory controllers, and the bound-weave
engine itself.  Presets reproducing the paper's Table 2 (validated
Westmere) and Table 3 (tiled thousand-core chip) live in
:mod:`repro.config.presets`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError


@dataclass
class BranchPredictorConfig:
    """Two-level branch predictor (the paper's frontend model)."""

    history_bits: int = 11
    table_size: int = 2048        # pattern-history table entries
    mispredict_penalty: int = 17  # Westmere-class fixed recovery


@dataclass
class CoreConfig:
    """Core timing model parameters (Westmere-class defaults)."""

    model: str = "ooo"            # "simple" (IPC=1) or "ooo"
    freq_mhz: int = 2270
    fetch_bytes_per_cycle: int = 16
    decode_width: int = 4
    issue_width: int = 4
    retire_width: int = 4
    rob_size: int = 128
    issue_window_size: int = 36
    load_queue_size: int = 48
    store_queue_size: int = 32
    #: Model wrong-path instruction fetches on mispredictions (the
    #: paper: "instruction fetch including wrong-path fetches due to
    #: mispredictions"); wrong-path *execution* is never modeled.
    wrong_path_fetch: bool = True
    #: Loop stream detector: small hot loops replay from the µop queue,
    #: bypassing fetch + decode.  zsim does NOT model it (the paper
    #: lists it among the unmodeled frontend features); the reference
    #: machine enables it, contributing frontend-side validation error.
    loop_stream_detector: bool = False
    lsd_max_uops: int = 28
    bpred: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)

    def __post_init__(self):
        if self.model not in ("simple", "ooo"):
            raise ValueError("Unknown core model: %r" % (self.model,))


@dataclass
class CacheConfig:
    """One cache level (or one bank of a banked shared cache)."""

    name: str = "cache"
    size_kb: int = 32
    ways: int = 8
    line_bytes: int = 64
    latency: int = 4              # zero-load access latency, cycles
    banks: int = 1                # >1 only meaningful for shared caches
    mshrs: int = 16
    repl: str = "lru"             # "lru" | "tree" | "random"
    inclusive: bool = True
    shared_by: int = 1            # number of cores sharing this cache
    hash_banks: bool = True       # hash line addresses across banks
    hash_sets: bool = False       # XOR-fold set index (zsim's "hashed")
    ports: int = 1                # weave model: accesses per cycle per bank
    prefetch_degree: int = 0      # stride prefetcher lines ahead (0 = off)

    @property
    def num_lines(self):
        return (self.size_kb * 1024) // self.line_bytes

    @property
    def num_sets(self):
        sets = self.num_lines // (self.ways * self.banks)
        if sets <= 0:
            raise ValueError("Cache %s too small for %d ways x %d banks"
                             % (self.name, self.ways, self.banks))
        return sets


@dataclass
class DDR3Timing:
    """DDR3 device timing in memory-bus cycles (DDR3-1333 defaults)."""

    tCL: int = 9      # CAS latency
    tRCD: int = 9     # RAS-to-CAS delay
    tRP: int = 9      # row precharge
    tRAS: int = 24    # row active time
    tCCD: int = 4     # column-to-column (burst gap)
    tWR: int = 10     # write recovery
    tRRD: int = 4     # row-to-row activate (different banks)
    banks_per_rank: int = 8
    ranks_per_channel: int = 2


@dataclass
class MemoryConfig:
    """Memory controllers and DRAM organization."""

    controllers: int = 1
    channels_per_controller: int = 3
    zero_load_latency: int = 100      # core cycles, controller+DRAM, no load
    bus_mhz: int = 667                # DDR3-1333 bus clock
    scheduling: str = "fcfs"          # "fcfs" only (paper's model)
    page_policy: str = "closed"
    timing: DDR3Timing = field(default_factory=DDR3Timing)
    # Fast powerdown with threshold timer = 15 mem cycles (Table 2).
    powerdown_threshold: int = 15
    powerdown_exit_cycles: int = 6


@dataclass
class NetworkConfig:
    """Zero-load-latency on-chip network (no weave model, per the paper)."""

    topology: str = "ring"        # "ring" | "mesh" | "ideal"
    hop_latency: int = 1
    injection_latency: int = 5
    router_stages: int = 2        # per-hop pipeline stages (mesh)
    #: Extension (the paper's future work): model link contention in
    #: the weave phase instead of zero-load latencies only.
    weave_model: bool = False
    link_occupancy: int = 2       # cycles a message holds each link


@dataclass
class BoundWeaveConfig:
    """Bound-weave engine parameters."""

    interval_cycles: int = 1000
    num_domains: int = 0          # 0 = one domain per tile (auto)
    host_threads: int = 16
    shuffle_wake_order: bool = True
    record_private_levels: bool = False  # ablation: trace private hits too
    crossing_dependencies: bool = True   # ablation: crossing optimizations
    ooo_mlp_window: int = 8    # weave: overlapping misses per OOO core
    seed: int = 0xDA7A
    #: Execution backend: how the engine runs on the host (see
    #: repro.exec).  All backends produce identical simulated results.
    backend: str = "serial"
    #: Watchdog: seconds of no worker progress before a pass raises a
    #: typed WatchdogTimeout (see repro.resilience).  0 disables.
    watchdog_budget_s: float = 0.0
    #: Supervisor: consecutive faulted intervals tolerated before the
    #: run degrades down the backend ladder (process -> parallel ->
    #: serial); on serial it falls back permanently.
    recovery_max_retries: int = 3
    #: Process backend: OS worker processes forked per interval.
    #: 0 = auto (host CPU count minus one, capped by host_threads).
    process_workers: int = 0
    #: Process backend: seconds without a worker heartbeat (or any pipe
    #: message) before the driver kills stragglers and runs their cores
    #: inline.
    heartbeat_budget_s: float = 10.0
    #: Integrity sentinel: run the online invariant auditor every N
    #: interval barriers (see repro.resilience.integrity).  0 disables
    #: auditing; the fingerprint chain itself is maintained whenever a
    #: sentinel is installed.  CLI: ``--audit-every``.
    audit_every: int = 0


@dataclass
class SystemConfig:
    """A complete simulated system.

    The chip is organized as ``num_tiles`` tiles of ``cores_per_tile``
    cores.  Each core has private L1I/L1D; an optional L2 is private per
    core or shared per tile; the optional L3 is a banked, fully shared
    last-level cache (one bank per tile by default).
    """

    name: str = "system"
    num_tiles: int = 1
    cores_per_tile: int = 6
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Heterogeneous chips: per-core overrides of the base core config
    #: (core id -> CoreConfig), e.g. a few OOO cores plus many simple
    #: Atom-like cores sharing one L3.  Cores without an entry use
    #: ``core``.
    hetero_cores: Optional[dict] = None
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size_kb=32, ways=4, latency=3))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_kb=32, ways=8, latency=4))
    l2: Optional[CacheConfig] = field(default_factory=lambda: CacheConfig(
        name="l2", size_kb=256, ways=8, latency=7))
    l2_shared_per_tile: bool = False
    l3: Optional[CacheConfig] = field(default_factory=lambda: CacheConfig(
        name="l3", size_kb=12 * 1024, ways=16, latency=14, banks=6))
    network: NetworkConfig = field(default_factory=NetworkConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    boundweave: BoundWeaveConfig = field(default_factory=BoundWeaveConfig)

    @property
    def num_cores(self):
        return self.num_tiles * self.cores_per_tile

    def validate(self):
        """Check internal consistency.  Raises
        :class:`~repro.errors.ConfigError` (a ValueError subclass, so
        pre-existing ``except ValueError`` callers keep working)."""
        if self.num_tiles < 1 or self.cores_per_tile < 1:
            raise ConfigError("System needs at least one core")
        for cache in (self.l1i, self.l1d):
            if cache is None:
                raise ConfigError("L1 caches are mandatory")
        line = self.l1d.line_bytes
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            if cache is not None and cache.line_bytes != line:
                raise ConfigError("All caches must share one line size")
            if cache is not None:
                cache.num_sets  # raises if geometry is inconsistent
        if self.boundweave.interval_cycles < 10:
            raise ConfigError("Interval too short")
        if self.boundweave.backend not in ("serial", "parallel",
                                           "pipelined", "process"):
            raise ConfigError("Unknown execution backend: %r"
                              % (self.boundweave.backend,))
        if self.boundweave.watchdog_budget_s < 0:
            raise ConfigError("watchdog_budget_s must be >= 0")
        if self.boundweave.recovery_max_retries < 1:
            raise ConfigError("recovery_max_retries must be >= 1")
        if self.boundweave.process_workers < 0:
            raise ConfigError("process_workers must be >= 0 (0 = auto)")
        if self.boundweave.heartbeat_budget_s <= 0:
            raise ConfigError("heartbeat_budget_s must be > 0")
        if self.boundweave.audit_every < 0:
            raise ConfigError("audit_every must be >= 0 (0 = off)")
        return self

    def core_tile(self, core_id):
        """Tile index of a core."""
        return core_id // self.cores_per_tile
