"""Configuration presets reproducing the paper's Tables 2 and 3."""

from __future__ import annotations

from repro.config.system import (
    BoundWeaveConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    NetworkConfig,
    SystemConfig,
)


def westmere(num_cores=6, core_model="ooo"):
    """The validated Westmere system of Table 2.

    6 OOO x86-64 cores at 2.27 GHz; 32KB 4-way L1I (3 cyc); 32KB 8-way L1D
    (4 cyc); 256KB 8-way private L2 (7 cyc); 12MB 16-way shared inclusive
    L3 in 6 banks (14 cyc) with MESI + in-cache directory and 16 MSHRs;
    ring network (1 cyc/hop, 5 cyc injection); 1 memory controller with 3
    DDR3-1333 channels, closed page, FCFS.
    """
    cfg = SystemConfig(
        name="westmere",
        num_tiles=1,
        cores_per_tile=num_cores,
        core=CoreConfig(model=core_model, freq_mhz=2270),
        l1i=CacheConfig(name="l1i", size_kb=32, ways=4, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=32, ways=8, latency=4),
        l2=CacheConfig(name="l2", size_kb=256, ways=8, latency=7),
        l2_shared_per_tile=False,
        l3=CacheConfig(name="l3", size_kb=12 * 1024, ways=16, latency=14,
                       banks=6, mshrs=16, shared_by=num_cores),
        network=NetworkConfig(topology="ring", hop_latency=1,
                              injection_latency=5),
        memory=MemoryConfig(controllers=1, channels_per_controller=3),
        boundweave=BoundWeaveConfig(interval_cycles=1000, host_threads=6),
    )
    return cfg.validate()


def tiled_chip(num_tiles=4, core_model="ooo", cores_per_tile=16):
    """The tiled multicore chip of Table 3.

    16 cores/tile; 4/16/64 tiles give 64/256/1024 cores.  Per-tile: 4MB
    8-way shared L2 (8 cyc), an 8MB 16-way L3 bank (12 cyc) of the fully
    shared inclusive L3, and one memory controller with 2 DDR3 channels.
    2-stage-router mesh, 1 cycle/hop.
    """
    num_cores = num_tiles * cores_per_tile
    cfg = SystemConfig(
        name="tiled-%dc" % num_cores,
        num_tiles=num_tiles,
        cores_per_tile=cores_per_tile,
        core=CoreConfig(model=core_model, freq_mhz=2000),
        l1i=CacheConfig(name="l1i", size_kb=32, ways=4, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=32, ways=8, latency=4),
        l2=CacheConfig(name="l2", size_kb=4 * 1024, ways=8, latency=8,
                       shared_by=cores_per_tile),
        l2_shared_per_tile=True,
        l3=CacheConfig(name="l3", size_kb=8 * 1024 * num_tiles, ways=16,
                       latency=12, banks=num_tiles, mshrs=16,
                       shared_by=num_cores),
        network=NetworkConfig(topology="mesh", hop_latency=1,
                              injection_latency=5, router_stages=2),
        memory=MemoryConfig(controllers=num_tiles,
                            channels_per_controller=2),
        boundweave=BoundWeaveConfig(interval_cycles=1000, host_threads=16),
    )
    return cfg.validate()


def small_test_system(num_cores=4, core_model="simple",
                      interval_cycles=1000):
    """A deliberately tiny system for unit tests: small caches so that
    evictions, invalidations, and contention show up quickly."""
    cfg = SystemConfig(
        name="test-%dc" % num_cores,
        num_tiles=1,
        cores_per_tile=num_cores,
        core=CoreConfig(model=core_model),
        l1i=CacheConfig(name="l1i", size_kb=4, ways=2, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=4, ways=4, latency=4),
        l2=CacheConfig(name="l2", size_kb=16, ways=4, latency=7),
        l3=CacheConfig(name="l3", size_kb=64, ways=8, latency=14, banks=2,
                       shared_by=num_cores),
        boundweave=BoundWeaveConfig(interval_cycles=interval_cycles,
                                    host_threads=4),
    )
    return cfg.validate()
