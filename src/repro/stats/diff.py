"""Structural comparison of stats trees: the equivalence oracle.

The backend determinism contract says execution backends change wall
time, never simulated results — so "are these two stats trees equal"
is the single most-asked question in this repo's tests and CI.  Until
now each asker re-implemented it inline (``assert tree == baseline``,
ad-hoc ``clean.pop("host")`` python in workflow YAML), which produces
the least useful possible failure: a thousand-line dict repr diff.

:func:`diff_trees` walks two nested stats dicts (the shape produced by
:meth:`repro.stats.counters.StatsNode.to_dict`) and reports *typed,
per-path* mismatches instead:

* ``missing`` / ``extra`` — a path exists on only one side,
* ``type`` — a subtree on one side is a scalar on the other,
* ``value`` — both sides have a scalar and they differ (with the
  absolute and relative delta, so tolerances are meaningful).

``--ignore host`` style subtree pruning replaces the inline ``pop``
snippets: host-side stats hold wall-clock noise by design and are
excluded from equivalence checks.  Numeric comparisons accept a
relative tolerance for the few legitimately approximate consumers
(benchmark drift tracking); the determinism oracle uses the default
``tolerance=0.0``.
"""

from __future__ import annotations

import json


class Mismatch:
    """One divergence between two trees, anchored to a dotted path."""

    __slots__ = ("path", "kind", "a", "b", "delta", "rel")

    def __init__(self, path, kind, a=None, b=None, delta=None, rel=None):
        self.path = path
        #: ``missing`` | ``extra`` | ``type`` | ``value``
        self.kind = kind
        self.a = a
        self.b = b
        self.delta = delta
        self.rel = rel

    def render(self):
        if self.kind == "missing":
            return "%-8s %s (only in B)" % (self.kind, self.path)
        if self.kind == "extra":
            return "%-8s %s (only in A)" % (self.kind, self.path)
        if self.kind == "type":
            return ("%-8s %s: %s vs %s"
                    % (self.kind, self.path,
                       type(self.a).__name__, type(self.b).__name__))
        extra = ""
        if self.delta is not None:
            extra = "  delta=%r" % self.delta
        if self.rel is not None:
            extra += " (rel %.3g)" % self.rel
        return ("%-8s %s: %r != %r%s"
                % (self.kind, self.path, self.a, self.b, extra))

    def __repr__(self):
        return "Mismatch(%r, %r)" % (self.path, self.kind)


class DiffResult:
    """All mismatches from one comparison, plus coverage counts."""

    def __init__(self, mismatches, paths_compared):
        self.mismatches = mismatches
        self.paths_compared = paths_compared

    @property
    def equivalent(self):
        return not self.mismatches

    def __bool__(self):
        # Truthiness answers "are they equivalent" so
        # ``assert diff_trees(a, b)`` reads naturally.
        return self.equivalent

    def render(self, max_report=None):
        if self.equivalent:
            return ("identical: %d leaf paths compared"
                    % self.paths_compared)
        lines = ["%d mismatch(es) across %d leaf paths:"
                 % (len(self.mismatches), self.paths_compared)]
        shown = self.mismatches
        if max_report is not None and len(shown) > max_report:
            shown = shown[:max_report]
        lines.extend("  " + m.render() for m in shown)
        if len(shown) < len(self.mismatches):
            lines.append("  ... and %d more"
                         % (len(self.mismatches) - len(shown)))
        return "\n".join(lines)


def _is_tree(value):
    return isinstance(value, dict)


def _numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def diff_trees(a, b, tolerance=0.0, ignore=()):
    """Compare two nested stats dicts; returns a :class:`DiffResult`.

    ``ignore`` lists subtree keys pruned on both sides wherever they
    appear (matched against the path's leading component *or* any
    single component, so ``ignore=("host",)`` drops every ``host``
    subtree at any depth).  ``tolerance`` is a relative bound: numeric
    leaves differing by ``<= tolerance * max(|a|, |b|)`` are equal.
    """
    ignore = frozenset(ignore)
    mismatches = []
    compared = 0

    def walk(path, left, right):
        nonlocal compared
        left_tree = _is_tree(left)
        right_tree = _is_tree(right)
        if left_tree and right_tree:
            for key in sorted(set(left) | set(right), key=str):
                if key in ignore:
                    continue
                sub = "%s.%s" % (path, key) if path else str(key)
                if key not in left:
                    mismatches.append(Mismatch(sub, "missing",
                                               b=right[key]))
                elif key not in right:
                    mismatches.append(Mismatch(sub, "extra",
                                               a=left[key]))
                else:
                    walk(sub, left[key], right[key])
            return
        if left_tree != right_tree:
            mismatches.append(Mismatch(path, "type", a=left, b=right))
            return
        compared += 1
        if left == right:
            return
        if _numeric(left) and _numeric(right):
            delta = left - right
            scale = max(abs(left), abs(right))
            rel = abs(delta) / scale if scale else 0.0
            if rel <= tolerance:
                return
            mismatches.append(Mismatch(path, "value", a=left, b=right,
                                       delta=delta, rel=rel))
        else:
            mismatches.append(Mismatch(path, "value", a=left, b=right))

    walk("", a, b)
    return DiffResult(mismatches, compared)


def assert_equivalent(a, b, tolerance=0.0, ignore=(), context=""):
    """Raise AssertionError with a typed per-path report on mismatch.

    This is the test-suite equivalence oracle: unlike
    ``assert tree == baseline`` it fails with *which paths* diverged,
    not a wall of dict repr.
    """
    result = diff_trees(a, b, tolerance=tolerance, ignore=ignore)
    if not result.equivalent:
        header = "%s: " % context if context else ""
        raise AssertionError(header + result.render(max_report=40))
    return result


def load_tree(path):
    """Read a stats JSON file for diffing.  Accepts both a bare stats
    tree and the ``repro run --stats-json`` envelope (which nests the
    tree under ``"stats"``)."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict) and isinstance(data.get("stats"), dict):
        return data["stats"]
    return data
