"""Plain-text figure rendering: line/scatter plots for the benches.

The paper's figures are plots; benchmarks regenerate them as text so
results diff cleanly with no plotting stack.  These renderers draw
fixed-size character grids with labelled axes; one glyph per series.
"""

from __future__ import annotations

GLYPHS = "ox+*#@%&"


def _scale(value, lo, hi, size):
    if hi <= lo:
        return 0
    pos = int(round((value - lo) / (hi - lo) * (size - 1)))
    return min(max(pos, 0), size - 1)


def line_plot(series, width=64, height=16, x_label="x", y_label="y",
              title=None, logy=False):
    """Render ``{name: [(x, y), ...]}`` as an ASCII plot.

    ``logy`` plots log10(y) (for Figure 2's log-scale fractions).
    """
    import math

    points = []
    for values in series.values():
        for x, y in values:
            if logy:
                y = math.log10(max(y, 1e-12))
            points.append((x, y))
    if not points:
        return "(empty plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    if ylo == yhi:
        ylo, yhi = ylo - 1, yhi + 1
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in values:
            if logy:
                import math as _m
                y = _m.log10(max(y, 1e-12))
            col = _scale(x, xlo, xhi, width)
            row = height - 1 - _scale(y, ylo, yhi, height)
            grid[row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    y_top = "%.3g" % (10 ** yhi if logy else yhi)
    y_bot = "%.3g" % (10 ** ylo if logy else ylo)
    label_width = max(len(y_top), len(y_bot), len(y_label)) + 1
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = y_top
        elif row_idx == height - 1:
            label = y_bot
        elif row_idx == height // 2:
            label = y_label
        else:
            label = ""
        lines.append(label.rjust(label_width) + " |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = ("%g" % xlo) + (" " * max(1, width - len("%g" % xlo)
                                       - len("%g" % xhi))) + ("%g" % xhi)
    lines.append(" " * (label_width + 2) + x_axis + "  (%s)" % x_label)
    legend = "  ".join("%s=%s" % (GLYPHS[i % len(GLYPHS)], name)
                       for i, name in enumerate(series))
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def scatter_plot(points, width=64, height=16, x_label="x", y_label="y",
                 title=None):
    """Render a single point cloud (e.g., MPKI-error scatters)."""
    return line_plot({"": points}, width, height, x_label, y_label,
                     title)
