"""Hierarchical simulation statistics.

zsim aggregates per-component stats into an HDF5 file.  We keep the same
shape — every simulated component owns a named stats node holding plain
counters and log-2 bucketed histograms (see
:class:`repro.obs.histogram.Log2Histogram`), collected into one tree —
but serialize to plain dicts/JSON, which is sufficient for a pure-Python
reproduction.  Histograms appear in ``to_dict``/``to_json`` as nested
objects with a ``buckets`` map, and in ``flatten`` as their summary
scalars (``count``/``total``/``mean``).
"""

from __future__ import annotations

import json

from repro.obs.histogram import Log2Histogram


class StatsNode:
    """A named node in the stats tree: counters, histograms, children."""

    def __init__(self, name):
        self.name = name
        self._counters = {}
        self._histograms = {}
        self._children = {}

    def counter(self, name, initial=0):
        """Get-or-create a counter; returns its current value."""
        return self._counters.setdefault(name, initial)

    def inc(self, name, amount=1):
        self._counters[name] = self._counters.get(name, 0) + amount

    def set(self, name, value):
        self._counters[name] = value

    def get(self, name, default=0):
        return self._counters.get(name, default)

    def histogram(self, name):
        """Get-or-create a named :class:`Log2Histogram` on this node."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Log2Histogram(name)
            self._histograms[name] = hist
        return hist

    def child(self, name):
        """Get-or-create a child node."""
        node = self._children.get(name)
        if node is None:
            node = StatsNode(name)
            self._children[name] = node
        return node

    @property
    def counters(self):
        return dict(self._counters)

    @property
    def histograms(self):
        return dict(self._histograms)

    @property
    def children(self):
        return dict(self._children)

    def to_dict(self):
        """Serialize the subtree to nested dicts."""
        out = dict(self._counters)
        for name, hist in self._histograms.items():
            out[name] = hist.to_dict()
        for name, node in self._children.items():
            out[name] = node.to_dict()
        return out

    def to_json(self, **kwargs):
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    def flatten(self, prefix=""):
        """Yield (dotted_path, value) for every counter in the subtree;
        histograms contribute their count/total/mean scalars."""
        base = prefix + self.name
        for key, value in self._counters.items():
            yield "%s.%s" % (base, key), value
        for key, hist in self._histograms.items():
            yield "%s.%s.count" % (base, key), hist.count
            yield "%s.%s.total" % (base, key), hist.total
            yield "%s.%s.mean" % (base, key), hist.mean
        for node in self._children.values():
            yield from node.flatten(base + ".")

    def __repr__(self):
        return ("StatsNode(%r, %d counters, %d histograms, %d children)"
                % (self.name, len(self._counters), len(self._histograms),
                   len(self._children)))
