"""Aggregation helpers used throughout the evaluation.

These implement the exact metrics the paper reports: IPC, misses per
thousand instructions (MPKI), relative performance error, harmonic-mean
MIPS, and the repeat-until-tight-confidence-interval methodology of
Section 4.1.
"""

from __future__ import annotations

import math


def ipc(instructions, cycles):
    """Instructions per cycle."""
    if cycles <= 0:
        return 0.0
    return instructions / cycles


def mpki(misses, instructions):
    """Misses per thousand instructions."""
    if instructions <= 0:
        return 0.0
    return 1000.0 * misses / instructions


def perf_error(simulated, real):
    """Relative performance error, positive = simulator overestimates.

    ``perf_error = (perf_sim - perf_real) / perf_real`` (Section 4.1).
    """
    if real == 0:
        raise ValueError("Real performance must be nonzero")
    return (simulated - real) / real


def mpki_error(simulated_mpki, real_mpki):
    """Absolute MPKI error (simulated - real), as in Figure 5."""
    return simulated_mpki - real_mpki


def hmean(values):
    """Harmonic mean, the paper's aggregate for MIPS figures."""
    values = list(values)
    if not values:
        raise ValueError("hmean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("hmean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def mean_abs(values):
    """Mean of absolute values (average |error| summaries)."""
    return mean(abs(v) for v in values)


def stdev(values):
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


# Two-sided 95% t critical values for small sample sizes (df 1..30).
_T95 = [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042]


def confidence_interval_95(values):
    """Half-width of the 95% confidence interval on the mean."""
    values = list(values)
    n = len(values)
    if n < 2:
        return float("inf")
    t = _T95[min(n - 1, len(_T95)) - 1]
    return t * stdev(values) / math.sqrt(n)


def run_until_tight(run, max_runs=20, min_runs=3, rel_halfwidth=0.01):
    """Repeat ``run()`` until the 95% CI of its mean is within
    ``rel_halfwidth`` of the mean, as the paper's validation methodology
    requires ("until every relevant metric has a 95% confidence interval
    of at most 1%").  Returns (mean, list_of_samples)."""
    samples = []
    while len(samples) < max_runs:
        samples.append(run())
        if len(samples) >= min_runs:
            mu = mean(samples)
            if mu == 0 or confidence_interval_95(samples) <= abs(
                    mu) * rel_halfwidth:
                break
    return mean(samples), samples
