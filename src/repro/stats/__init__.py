"""Statistics: hierarchical counters, metric aggregation, reporting."""

from repro.obs.histogram import Log2Histogram
from repro.stats.aggregate import (
    confidence_interval_95,
    hmean,
    ipc,
    mean,
    mean_abs,
    mpki,
    mpki_error,
    perf_error,
    run_until_tight,
    stdev,
)
from repro.stats.ascii_plot import line_plot, scatter_plot
from repro.stats.counters import StatsNode
from repro.stats.diff import (
    DiffResult,
    Mismatch,
    assert_equivalent,
    diff_trees,
    load_tree,
)
from repro.stats.reporting import format_series, format_table

__all__ = [
    "DiffResult",
    "Log2Histogram",
    "Mismatch",
    "StatsNode",
    "assert_equivalent",
    "confidence_interval_95",
    "diff_trees",
    "load_tree",
    "format_series",
    "format_table",
    "hmean",
    "line_plot",
    "ipc",
    "mean",
    "mean_abs",
    "mpki",
    "mpki_error",
    "perf_error",
    "scatter_plot",
    "run_until_tight",
    "stdev",
]
