"""Statistics: hierarchical counters, metric aggregation, reporting."""

from repro.obs.histogram import Log2Histogram
from repro.stats.aggregate import (
    confidence_interval_95,
    hmean,
    ipc,
    mean,
    mean_abs,
    mpki,
    mpki_error,
    perf_error,
    run_until_tight,
    stdev,
)
from repro.stats.ascii_plot import line_plot, scatter_plot
from repro.stats.counters import StatsNode
from repro.stats.reporting import format_series, format_table

__all__ = [
    "Log2Histogram",
    "StatsNode",
    "confidence_interval_95",
    "format_series",
    "format_table",
    "hmean",
    "line_plot",
    "ipc",
    "mean",
    "mean_abs",
    "mpki",
    "mpki_error",
    "perf_error",
    "scatter_plot",
    "run_until_tight",
    "stdev",
]
