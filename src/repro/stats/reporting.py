"""Plain-text table and series renderers for the benchmark harness.

The benchmark scripts regenerate every table and figure of the paper as
text: tables render as aligned ASCII, figures render as labelled series
(one row per point), so results diff cleanly and need no plotting stack.
"""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table. Cells are stringified with str()."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name, points, x_label="x", y_label="y"):
    """Render a figure series as labelled (x, y) rows."""
    lines = ["series: %s  (%s -> %s)" % (name, x_label, y_label)]
    for x, y in points:
        lines.append("  %-16s %s" % (_fmt(x), _fmt(y)))
    return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "%.0f" % value
        if abs(value) >= 1:
            return "%.2f" % value
        return "%.4f" % value
    return str(value)
