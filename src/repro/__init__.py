"""repro: a Python reproduction of ZSim (Sanchez & Kozyrakis, ISCA 2013).

ZSim is a fast, accurate, parallel microarchitectural simulator built on
three techniques, all reproduced here:

1. **DBT-accelerated instruction-driven core models**
   (:mod:`repro.dbt`, :mod:`repro.cpu`) — basic blocks are decoded into
   µop descriptors once and cached; the OOO core advances per-stage
   clocks per µop instead of per cycle.
2. **Bound-weave parallelization** (:mod:`repro.core`) — intervals are
   first simulated per-core with zero-load latencies (bound), then
   replayed through event-driven contention models partitioned into
   domains (weave).
3. **Lightweight user-level virtualization** (:mod:`repro.virt`) —
   scheduler, blocking-syscall join/leave, timing and system-view
   virtualization, multiprocess support.

Quick start::

    from repro import ZSim, westmere, mt_workload

    workload = mt_workload("blackscholes", scale=1/32)
    sim = ZSim(westmere(num_cores=6),
               threads=workload.make_threads(target_instrs=100_000))
    result = sim.run()
    print(result.ipc, result.mips)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

from repro.config import (
    SystemConfig,
    small_test_system,
    tiled_chip,
    westmere,
)
from repro.core import InterferenceProfiler, SimulationResult, ZSim
from repro.virt import SimThread
from repro.workloads import (
    KernelSpec,
    Workload,
    mt_workload,
    spec_workload,
)

__version__ = "0.1.0"

__all__ = [
    "InterferenceProfiler",
    "KernelSpec",
    "SimThread",
    "SimulationResult",
    "SystemConfig",
    "Workload",
    "ZSim",
    "__version__",
    "mt_workload",
    "small_test_system",
    "spec_workload",
    "tiled_chip",
    "westmere",
]
