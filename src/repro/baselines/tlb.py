"""TLB and page-table-walk model for the reference ("real") machine.

zsim deliberately omits TLBs; the paper attributes most of its residual
IPC error to that omission ("the lack of TLB and page table walker
models... Page table walk accesses are also cached, affecting the
reference stream and producing these errors").  The reference machine in
this reproduction therefore *includes* per-core I/D TLBs whose misses
trigger page-table walks through the cache hierarchy, reproducing both
the validation flow and the error structure.
"""

from __future__ import annotations

PAGE_BITS = 12
#: Synthetic physical region where page tables live.
PAGE_TABLE_BASE = 0xE000_0000


class TLB:
    """Fully associative TLB with LRU replacement (dict-ordered)."""

    def __init__(self, entries):
        self.entries = entries
        self._map = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, page):
        if page in self._map:
            self.hits += 1
            # LRU touch: move to the back.
            self._map[page] = self._map.pop(page)
            return True
        self.misses += 1
        if len(self._map) >= self.entries:
            oldest = next(iter(self._map))
            del self._map[oldest]
        self._map[page] = True
        return False


class TLBMemory:
    """Hierarchy wrapper adding per-core ITLB/DTLB + cached page walks.

    A TLB miss performs a two-level page walk: two dependent reads of
    page-table entries routed through the normal cache hierarchy (so walk
    traffic pollutes the caches, as on real hardware), plus a fixed walk
    overhead.  The resulting latency is added to the triggering access.
    """

    WALK_LEVELS = 2
    WALK_OVERHEAD = 5

    def __init__(self, hierarchy, itlb_entries=128, dtlb_entries=64):
        self.hierarchy = hierarchy
        self.config = hierarchy.config
        num_cores = hierarchy.config.num_cores
        self.itlbs = [TLB(itlb_entries) for _ in range(num_cores)]
        self.dtlbs = [TLB(dtlb_entries) for _ in range(num_cores)]
        self.walks = 0

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        page = addr >> PAGE_BITS
        tlb = self.itlbs[core_id] if ifetch else self.dtlbs[core_id]
        walk_latency = 0
        if not tlb.lookup(page):
            self.walks += 1
            walk_latency = self.WALK_OVERHEAD
            # Two dependent PTE reads through the cache hierarchy.
            pte_addr = PAGE_TABLE_BASE + (page * 8) % 0x0800_0000
            for level in range(self.WALK_LEVELS):
                walk = self.hierarchy.access(
                    core_id, pte_addr + level * 0x0100_0000, False,
                    cycle, ifetch=False)
                walk_latency += walk.latency
        result = self.hierarchy.access(core_id, addr, write,
                                       cycle + walk_latency, ifetch)
        result.latency += walk_latency
        return result

    def tlb_mpki(self, core_id, instrs, data_only=True):
        tlb = self.dtlbs[core_id]
        misses = tlb.misses
        if not data_only:
            misses += self.itlbs[core_id].misses
        return 1000.0 * misses / instrs if instrs else 0.0

    def __getattr__(self, name):
        return getattr(self.hierarchy, name)
