"""Pessimistic (conservative) PDES baseline simulator.

Conventional parallel microarchitectural simulators are pessimistic PDES
engines: to preserve full event order they synchronize all cores every
lookahead window — a few cycles, since cores and caches interact within
a few cycles (Section 2: "multicore timing models are extremely
challenging to parallelize using pessimistic PDES...").

This baseline reuses the same core and memory models but synchronizes at
a barrier every ``lookahead`` cycles (default 10, an optimistic choice in
the baseline's favour — the true lookahead between a core and its L1 is
smaller).  Comparing its wall-clock speed against bound-weave on the same
workload reproduces the paper's orders-of-magnitude claim qualitatively:
per-simulated-cycle engine overhead dominates when the quantum shrinks by
100x.
"""

from __future__ import annotations

import dataclasses

from repro.core.simulator import ZSim


class PDESSimulator(ZSim):
    """Quantum-synchronized conservative simulator (the baseline)."""

    def __init__(self, config, threads=(), lookahead=10, **kwargs):
        if lookahead < 10:
            lookahead = 10  # SystemConfig's floor on interval length
        pdes_config = dataclasses.replace(
            config,
            boundweave=dataclasses.replace(
                config.boundweave,
                interval_cycles=lookahead,
                shuffle_wake_order=False),
        )
        # Conservative PDES preserves full order, so contention can be
        # modeled directly in-line; reuse the weave models each quantum.
        super().__init__(pdes_config, threads=threads, **kwargs)
        self.lookahead = lookahead
        #: Global synchronizations (barriers) executed; with quantum
        #: lookahead this is cycles/lookahead, the PDES overhead driver.
        self.synchronizations = 0

    def run(self, **kwargs):
        result = super().run(**kwargs)
        self.synchronizations = self.bound.intervals
        result.synchronizations = self.synchronizations
        return result
