"""Graphite-style baseline: skew-limited simulation + queueing contention.

Graphite simulates cores in parallel allowing memory accesses to be
reordered within a few thousand cycles of slack, and models contention
with queueing-theory models evaluated inline (no ordered replay).  The
paper (and prior work it cites) shows this is inaccurate for contended
resources; Figure 6 (right) demonstrates it on STREAM.

The baseline here is the same substrate run with:

* a large skew window (no weave phase — accesses keep bound-phase order),
* M/D/1 queueing latency added to memory accesses in the bound phase.
"""

from __future__ import annotations

import dataclasses

from repro.core.simulator import ZSim

#: Graphite's default slack window, simulated cycles.
DEFAULT_SLACK = 5_000


def graphite_simulator(config, threads=(), slack=DEFAULT_SLACK, **kwargs):
    """Build a Graphite-like simulator (skew-limited, M/D/1 contention)."""
    graphite_config = dataclasses.replace(
        config,
        boundweave=dataclasses.replace(
            config.boundweave,
            interval_cycles=slack,
            shuffle_wake_order=False),
    )
    return ZSim(graphite_config, threads=threads,
                contention_model="md1", **kwargs)
