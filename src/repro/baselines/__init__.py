"""Baseline simulators and the golden reference machine."""

from repro.baselines.graphite import DEFAULT_SLACK, graphite_simulator
from repro.baselines.pdes import PDESSimulator
from repro.baselines.reference import (
    REFERENCE_INTERVAL,
    reference_simulator,
    run_reference,
)
from repro.baselines.tlb import TLB, TLBMemory

__all__ = [
    "DEFAULT_SLACK",
    "PDESSimulator",
    "REFERENCE_INTERVAL",
    "TLB",
    "TLBMemory",
    "graphite_simulator",
    "reference_simulator",
    "run_reference",
]
