"""The reference ("real") machine the validation compares against.

The paper validates zsim against a physical Westmere using performance
counters.  With no hardware available, the substitution (see DESIGN.md)
is a *golden reference simulator*: the same detailed core and memory
models, executed with the finest interval (minimal reordering) and full
contention, **plus** the effects zsim deliberately does not model — TLBs
with cached page walks.  Validation error between zsim and this
reference is then genuinely non-zero and has the structure the paper
reports: zsim overestimates performance, with larger errors on
TLB-intensive workloads.
"""

from __future__ import annotations

import dataclasses

from repro.baselines.tlb import TLBMemory
from repro.config.system import BranchPredictorConfig
from repro.core.simulator import ZSim
from repro.cpu.bpred import BranchPredictor


#: Interval used by the reference machine when overridden; None keeps
#: the config's interval so zsim and the reference differ *only* by the
#: effects zsim deliberately omits (TLBs, page walks).
REFERENCE_INTERVAL = None


def reference_simulator(config, threads, contention_model="weave",
                        itlb_entries=128, dtlb_entries=64,
                        interval=REFERENCE_INTERVAL):
    """Build the golden reference simulator for ``config``.

    Returns a :class:`~repro.core.simulator.ZSim` whose memory system is
    wrapped with per-core TLBs + page walks.  Wake-order shuffling is
    disabled (a physical machine has no such randomization).
    """
    ref_config = dataclasses.replace(
        config,
        # The physical machine has the loop stream detector zsim omits
        # (Section 3.1: "we do not model ... the loop stream detector").
        core=dataclasses.replace(config.core, loop_stream_detector=True),
        boundweave=dataclasses.replace(
            config.boundweave,
            interval_cycles=interval or config.boundweave.interval_cycles,
            shuffle_wake_order=False),
    )
    holder = {}

    def wrap(mem):
        holder["tlb"] = TLBMemory(mem, itlb_entries, dtlb_entries)
        return holder["tlb"]

    sim = ZSim(ref_config, threads=threads,
               contention_model=contention_model, mem_wrapper=wrap)
    sim.tlb_memory = holder["tlb"]
    # The physical machine's predictor is unknown but better than the
    # modeled 2-level gshare (the paper attributes part of zsim's error
    # to this); give the reference a larger predictor.
    for core in sim.cores:
        if hasattr(core, "bpred"):
            core.bpred = BranchPredictor(BranchPredictorConfig(
                history_bits=15, table_size=16384,
                mispredict_penalty=config.core.bpred.mispredict_penalty))
    return sim


def run_reference(config, threads, **run_kwargs):
    """Run the reference machine; returns (result, tlb_memory)."""
    sim = reference_simulator(config, threads)
    result = sim.run(**run_kwargs)
    return result, sim.tlb_memory
