"""Architectural register file definition for the mini-ISA.

The mini-ISA is a compact, x86-flavoured register machine: 16 general
purpose registers, 8 floating-point/SIMD registers, a flags register and
an instruction pointer.  Registers are identified by small integers so the
scoreboard in the OOO core model can be a flat list indexed by register id.
"""

from __future__ import annotations

NUM_GP_REGS = 16
NUM_FP_REGS = 8

# Register id layout: [0, 16) GP, [16, 24) FP, then special registers.
R0 = 0
RSP = 14          # conventional stack pointer
RBP = 15          # conventional frame pointer
FP0 = NUM_GP_REGS
RFLAGS = NUM_GP_REGS + NUM_FP_REGS
RIP = RFLAGS + 1

#: Total number of architectural registers tracked by the scoreboard.
NUM_REGS = RIP + 1

#: Sentinel meaning "no register operand".
NO_REG = -1


def gp(index):
    """Return the register id of general-purpose register ``index``."""
    if not 0 <= index < NUM_GP_REGS:
        raise ValueError("GP register index out of range: %r" % (index,))
    return index


def fp(index):
    """Return the register id of floating-point register ``index``."""
    if not 0 <= index < NUM_FP_REGS:
        raise ValueError("FP register index out of range: %r" % (index,))
    return FP0 + index


def reg_name(reg):
    """Human-readable name for a register id (for debugging and tests)."""
    if reg == NO_REG:
        return "-"
    if 0 <= reg < NUM_GP_REGS:
        return "r%d" % reg
    if NUM_GP_REGS <= reg < NUM_GP_REGS + NUM_FP_REGS:
        return "f%d" % (reg - NUM_GP_REGS)
    if reg == RFLAGS:
        return "rflags"
    if reg == RIP:
        return "rip"
    raise ValueError("Unknown register id: %r" % (reg,))
