"""Static program representation: instructions, basic blocks, programs.

Workloads in this reproduction are *synthetic binaries*: static programs
over the mini-ISA plus a functional execution stream (see
:mod:`repro.workloads.base`).  This mirrors zsim's split between the
functional side (Pin executing the real binary) and the timing side
(decoded basic-block descriptors driving the timing models).
"""

from __future__ import annotations

import itertools

from repro.isa.opcodes import INSTR_LENGTH, Opcode
from repro.isa.registers import NO_REG


class Instruction:
    """One static macro instruction."""

    __slots__ = ("opcode", "src1", "src2", "dst1", "length")

    def __init__(self, opcode, src1=NO_REG, src2=NO_REG, dst1=NO_REG):
        self.opcode = opcode
        self.src1 = src1
        self.src2 = src2
        self.dst1 = dst1
        self.length = INSTR_LENGTH[opcode]

    @property
    def is_mem(self):
        return self.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.LOAD_ALU,
                               Opcode.ALU_STORE, Opcode.CALL, Opcode.RET)

    @property
    def is_branch(self):
        return self.opcode in (Opcode.COND_BRANCH, Opcode.JMP, Opcode.CALL,
                               Opcode.RET)

    def __repr__(self):
        return "Instruction(%s)" % Opcode.NAMES[self.opcode]


class BasicBlock:
    """A static basic block: straight-line instructions, one exit.

    ``address`` is the synthetic code address of the first instruction;
    instruction fetch simulates cache-line accesses over
    ``[address, address + num_bytes)``.
    """

    __slots__ = ("bbl_id", "address", "instructions", "num_bytes",
                 "num_mem_slots", "num_instrs")

    def __init__(self, bbl_id, address, instructions):
        self.bbl_id = bbl_id
        self.address = address
        self.instructions = tuple(instructions)
        self.num_bytes = sum(i.length for i in self.instructions)
        self.num_instrs = len(self.instructions)
        slots = 0
        for instr in self.instructions:
            if instr.opcode in (Opcode.LOAD, Opcode.STORE, Opcode.LOAD_ALU,
                                Opcode.CALL, Opcode.RET):
                slots += 1
            elif instr.opcode == Opcode.ALU_STORE:
                slots += 2
        self.num_mem_slots = slots

    @property
    def end_address(self):
        return self.address + self.num_bytes

    def __repr__(self):
        return ("BasicBlock(id=%d, addr=0x%x, %d instrs, %d mem slots)"
                % (self.bbl_id, self.address, self.num_instrs,
                   self.num_mem_slots))


_program_ids = itertools.count()


class Program:
    """A static program: a set of basic blocks laid out in a code segment.

    Programs do not own control flow; the workload's functional stream
    decides which block executes next (the analogue of Pin executing the
    real binary and telling the timing model what ran).
    """

    def __init__(self, name, code_base=0x400000):
        self.program_id = next(_program_ids)
        self.name = name
        self.code_base = code_base
        self.blocks = []
        self._next_address = code_base

    def add_block(self, instructions):
        """Append a new basic block laid out after the previous one."""
        block = BasicBlock(len(self.blocks), self._next_address,
                           instructions)
        self.blocks.append(block)
        self._next_address = block.end_address
        return block

    def block(self, bbl_id):
        return self.blocks[bbl_id]

    @property
    def num_blocks(self):
        return len(self.blocks)

    def __repr__(self):
        return "Program(%r, %d blocks)" % (self.name, len(self.blocks))


class BBLExec:
    """One dynamic execution of a basic block.

    This is the unit the functional stream hands to the timing models:
    which static block ran, the data addresses its memory slots touched
    (in program order), whether its terminating branch was taken, and the
    address of the next block (the branch target actually followed).

    ``syscall`` optionally carries a syscall descriptor when the block
    ends in a SYSCALL instruction (see :mod:`repro.virt.syscalls`).
    """

    __slots__ = ("block", "addrs", "taken", "next_address", "syscall")

    def __init__(self, block, addrs=(), taken=False, next_address=None,
                 syscall=None):
        self.block = block
        self.addrs = addrs
        self.taken = taken
        self.next_address = (block.end_address if next_address is None
                             else next_address)
        self.syscall = syscall

    def __repr__(self):
        return ("BBLExec(block=%d, addrs=%d, taken=%r)"
                % (self.block.bbl_id, len(self.addrs), self.taken))
