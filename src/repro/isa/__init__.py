"""Mini-ISA substrate: the x86 stand-in the simulator executes.

Public surface:

* :mod:`repro.isa.registers` — register ids and helpers.
* :class:`~repro.isa.program.Instruction`,
  :class:`~repro.isa.program.BasicBlock`,
  :class:`~repro.isa.program.Program`,
  :class:`~repro.isa.program.BBLExec` — static programs and their dynamic
  execution records.
* :class:`~repro.isa.uops.Uop` — decoded µops.
* :func:`~repro.isa.decoder.decode_bbl` — instruction→µop decoding.
"""

from repro.isa.decoder import DecodedBBL, decode_bbl
from repro.isa.opcodes import Opcode
from repro.isa.program import BasicBlock, BBLExec, Instruction, Program
from repro.isa.uops import Uop, UopType

__all__ = [
    "BasicBlock",
    "BBLExec",
    "DecodedBBL",
    "Instruction",
    "Opcode",
    "Program",
    "Uop",
    "UopType",
    "decode_bbl",
]
