"""Micro-operation (µop) representation.

ZSim decodes each x86 instruction into µops *at instrumentation time* and
stores them in a format optimized for the timing model: type, source and
destination registers, latency, and a mask of the execution ports the µop
may issue to (Figure 1 of the paper).  This module defines that format.

Port assignments follow the Westmere execution engine that zsim models:

======  =======================================
Port    Units
======  =======================================
0       ALU, shift, FP multiply, divide
1       ALU, FP add, LEA
2       Load
3       Store address
4       Store data
5       ALU, branch
======  =======================================
"""

from __future__ import annotations

from repro.isa.registers import NO_REG, reg_name


class UopType:
    """Enumeration of µop types consumed by the core timing models."""

    EXEC = 0        # generic execution µop (ALU, FP, ...)
    LOAD = 1
    STORE_ADDR = 2
    STORE_DATA = 3
    BRANCH = 4      # conditional or indirect control flow
    FENCE = 5       # memory fence: serializes the load-store unit
    SYSCALL = 6     # transfers control to the (virtualized) kernel
    MAGIC = 7       # magic op: simulator control, executes as a NOP

    NAMES = {
        EXEC: "exec",
        LOAD: "load",
        STORE_ADDR: "staddr",
        STORE_DATA: "stdata",
        BRANCH: "branch",
        FENCE: "fence",
        SYSCALL: "syscall",
        MAGIC: "magic",
    }


NUM_PORTS = 6

# Port bit masks.
P0 = 1 << 0
P1 = 1 << 1
P2 = 1 << 2
P3 = 1 << 3
P4 = 1 << 4
P5 = 1 << 5

PORTS_ALU = P0 | P1 | P5
PORTS_FP_ADD = P1
PORTS_FP_MUL = P0
PORTS_DIV = P0
PORTS_LOAD = P2
PORTS_STORE_ADDR = P3
PORTS_STORE_DATA = P4
PORTS_BRANCH = P5
PORTS_AGU = P1 | P5  # LEA-style address computation


def port_list(mask):
    """Expand a port mask into the list of port indices it allows."""
    return [p for p in range(NUM_PORTS) if mask & (1 << p)]


class Uop:
    """A single µop in the decoded-BBL descriptor.

    Instances are created once per *static* µop by the decoder and shared
    by every dynamic execution, so they are immutable by convention.
    """

    __slots__ = ("type", "src1", "src2", "dst1", "dst2", "lat", "ports",
                 "mem_slot")

    def __init__(self, type, src1=NO_REG, src2=NO_REG, dst1=NO_REG,
                 dst2=NO_REG, lat=1, ports=PORTS_ALU, mem_slot=-1):
        self.type = type
        self.src1 = src1
        self.src2 = src2
        self.dst1 = dst1
        self.dst2 = dst2
        self.lat = lat
        self.ports = ports
        #: Index into the dynamic address list of the executing basic
        #: block for LOAD / STORE_ADDR / STORE_DATA µops; -1 otherwise.
        self.mem_slot = mem_slot

    @property
    def is_mem(self):
        return self.mem_slot >= 0

    @property
    def is_load(self):
        return self.type == UopType.LOAD

    @property
    def is_store(self):
        return self.type in (UopType.STORE_ADDR, UopType.STORE_DATA)

    def __repr__(self):
        fields = [UopType.NAMES[self.type],
                  "src=%s,%s" % (reg_name(self.src1), reg_name(self.src2)),
                  "dst=%s,%s" % (reg_name(self.dst1), reg_name(self.dst2)),
                  "lat=%d" % self.lat,
                  "ports=%s" % port_list(self.ports)]
        if self.is_mem:
            fields.append("mem_slot=%d" % self.mem_slot)
        return "Uop(%s)" % ", ".join(fields)
