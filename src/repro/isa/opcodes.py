"""Macro-instruction classes of the mini-ISA and their µop decompositions.

The mini-ISA plays the role x86 plays for zsim: a CISC-flavoured
instruction set whose instructions decode into one or more µops.  The
interesting x86 behaviours the paper's core model depends on are kept:

* **µop fission** — memory-operand ALU instructions split into a load µop
  plus an exec µop; stores split into store-address and store-data µops.
* **macro-op fusion** — compare-and-branch pairs fuse into one µop
  (performed by the decoder, see :mod:`repro.isa.decoder`).
* **variable instruction length** — drives the 16-byte/cycle instruction
  length predecoder model.
* **decoder asymmetry** — only the first of the 4 decoders handles
  multi-µop instructions (the 4-1-1-1 rule).
"""

from __future__ import annotations

from repro.isa.registers import NO_REG, RFLAGS, RIP
from repro.isa.uops import (
    PORTS_AGU,
    PORTS_ALU,
    PORTS_BRANCH,
    PORTS_DIV,
    PORTS_FP_ADD,
    PORTS_FP_MUL,
    PORTS_LOAD,
    PORTS_STORE_ADDR,
    PORTS_STORE_DATA,
    Uop,
    UopType,
)


class Opcode:
    """Enumeration of macro-instruction classes."""

    ALU = 0          # reg-reg integer op                     (1 µop)
    LEA = 1          # address computation                    (1 µop)
    MUL = 2          # integer multiply                       (1 µop)
    DIV = 3          # integer divide                         (1 µop)
    FPADD = 4        # floating-point add/sub                 (1 µop)
    FPMUL = 5        # floating-point multiply                (1 µop)
    FPDIV = 6        # floating-point divide                  (1 µop)
    LOAD = 7         # load into register                     (1 µop)
    STORE = 8        # store register                         (2 µops)
    LOAD_ALU = 9     # ALU with memory source operand         (2 µops, fission)
    ALU_STORE = 10   # read-modify-write to memory            (4 µops)
    CMP = 11         # compare, writes flags                  (1 µop)
    COND_BRANCH = 12 # conditional branch on flags            (1 µop)
    JMP = 13         # unconditional direct jump              (1 µop)
    CALL = 14        # direct call                            (2 µops)
    RET = 15         # return                                 (2 µops)
    NOP = 16         # no-op                                  (1 µop)
    FENCE = 17       # full memory fence                      (1 µop)
    SYSCALL = 18     # system call                            (1 µop)
    MAGIC = 19       # magic NOP sequence: simulator control  (1 µop)
    X87 = 20         # legacy/rare opcode: approximate decode (1 µop)

    NAMES = {}


Opcode.NAMES = {
    value: name.lower()
    for name, value in vars(Opcode).items()
    if isinstance(value, int)
}

#: Synthetic instruction lengths in bytes, used by the length predecoder.
INSTR_LENGTH = {
    Opcode.ALU: 3,
    Opcode.LEA: 4,
    Opcode.MUL: 4,
    Opcode.DIV: 3,
    Opcode.FPADD: 4,
    Opcode.FPMUL: 4,
    Opcode.FPDIV: 4,
    Opcode.LOAD: 4,
    Opcode.STORE: 4,
    Opcode.LOAD_ALU: 5,
    Opcode.ALU_STORE: 6,
    Opcode.CMP: 3,
    Opcode.COND_BRANCH: 2,
    Opcode.JMP: 2,
    Opcode.CALL: 5,
    Opcode.RET: 1,
    Opcode.NOP: 1,
    Opcode.FENCE: 3,
    Opcode.SYSCALL: 2,
    Opcode.MAGIC: 8,
    Opcode.X87: 7,
}

INT_MUL_LATENCY = 3
INT_DIV_LATENCY = 21
FP_ADD_LATENCY = 3
FP_MUL_LATENCY = 5
FP_DIV_LATENCY = 22


def decode_instruction(instr, mem_slot):
    """Decode one macro instruction into its µop sequence.

    ``mem_slot`` is the index of the next dynamic memory-address slot of
    the enclosing basic block; loads and stores consume slots in program
    order.  Returns ``(uops, slots_consumed)``.
    """
    op = instr.opcode
    s1, s2 = instr.src1, instr.src2
    d1 = instr.dst1

    if op == Opcode.ALU:
        return [Uop(UopType.EXEC, s1, s2, d1, RFLAGS, 1, PORTS_ALU)], 0
    if op == Opcode.LEA:
        return [Uop(UopType.EXEC, s1, s2, d1, lat=1, ports=PORTS_AGU)], 0
    if op == Opcode.MUL:
        return [Uop(UopType.EXEC, s1, s2, d1, RFLAGS, INT_MUL_LATENCY,
                    PORTS_FP_MUL)], 0
    if op == Opcode.DIV:
        return [Uop(UopType.EXEC, s1, s2, d1, RFLAGS, INT_DIV_LATENCY,
                    PORTS_DIV)], 0
    if op == Opcode.FPADD:
        return [Uop(UopType.EXEC, s1, s2, d1, lat=FP_ADD_LATENCY,
                    ports=PORTS_FP_ADD)], 0
    if op == Opcode.FPMUL:
        return [Uop(UopType.EXEC, s1, s2, d1, lat=FP_MUL_LATENCY,
                    ports=PORTS_FP_MUL)], 0
    if op == Opcode.FPDIV:
        return [Uop(UopType.EXEC, s1, s2, d1, lat=FP_DIV_LATENCY,
                    ports=PORTS_DIV)], 0
    if op == Opcode.LOAD:
        return [Uop(UopType.LOAD, s1, NO_REG, d1, lat=0, ports=PORTS_LOAD,
                    mem_slot=mem_slot)], 1
    if op == Opcode.STORE:
        return [Uop(UopType.STORE_ADDR, s1, NO_REG, lat=1,
                    ports=PORTS_STORE_ADDR, mem_slot=mem_slot),
                Uop(UopType.STORE_DATA, s2, NO_REG, lat=0,
                    ports=PORTS_STORE_DATA, mem_slot=mem_slot)], 1
    if op == Opcode.LOAD_ALU:
        # µop fission: load feeds a dependent exec µop through a temporary.
        # We model the dependency by making the exec µop read the load's
        # destination register.
        return [Uop(UopType.LOAD, s1, NO_REG, d1, lat=0, ports=PORTS_LOAD,
                    mem_slot=mem_slot),
                Uop(UopType.EXEC, d1, s2, d1, RFLAGS, 1, PORTS_ALU)], 1
    if op == Opcode.ALU_STORE:
        return [Uop(UopType.LOAD, s1, NO_REG, d1, lat=0, ports=PORTS_LOAD,
                    mem_slot=mem_slot),
                Uop(UopType.EXEC, d1, s2, d1, RFLAGS, 1, PORTS_ALU),
                Uop(UopType.STORE_ADDR, s1, NO_REG, lat=1,
                    ports=PORTS_STORE_ADDR, mem_slot=mem_slot + 1),
                Uop(UopType.STORE_DATA, d1, NO_REG, lat=0,
                    ports=PORTS_STORE_DATA, mem_slot=mem_slot + 1)], 2
    if op == Opcode.CMP:
        return [Uop(UopType.EXEC, s1, s2, RFLAGS, lat=1, ports=PORTS_ALU)], 0
    if op == Opcode.COND_BRANCH:
        return [Uop(UopType.BRANCH, RFLAGS, NO_REG, RIP, lat=1,
                    ports=PORTS_BRANCH)], 0
    if op == Opcode.JMP:
        return [Uop(UopType.BRANCH, NO_REG, NO_REG, RIP, lat=1,
                    ports=PORTS_BRANCH)], 0
    if op == Opcode.CALL:
        # Push return address + jump.
        return [Uop(UopType.STORE_ADDR, s1, NO_REG, lat=1,
                    ports=PORTS_STORE_ADDR, mem_slot=mem_slot),
                Uop(UopType.BRANCH, NO_REG, NO_REG, RIP, lat=1,
                    ports=PORTS_BRANCH)], 1
    if op == Opcode.RET:
        return [Uop(UopType.LOAD, s1, NO_REG, RIP, lat=0, ports=PORTS_LOAD,
                    mem_slot=mem_slot),
                Uop(UopType.BRANCH, RIP, NO_REG, RIP, lat=1,
                    ports=PORTS_BRANCH)], 1
    if op == Opcode.NOP:
        return [Uop(UopType.EXEC, NO_REG, NO_REG, lat=1, ports=PORTS_ALU)], 0
    if op == Opcode.FENCE:
        return [Uop(UopType.FENCE, NO_REG, NO_REG, lat=1, ports=PORTS_ALU)], 0
    if op == Opcode.SYSCALL:
        return [Uop(UopType.SYSCALL, NO_REG, NO_REG, lat=1,
                    ports=PORTS_ALU)], 0
    if op == Opcode.MAGIC:
        return [Uop(UopType.MAGIC, NO_REG, NO_REG, lat=1, ports=PORTS_ALU)], 0
    if op == Opcode.X87:
        # Rare opcodes get a generic, approximate dataflow decoding, like
        # zsim's handling of x87 (0.01% of dynamic instructions).
        return [Uop(UopType.EXEC, s1, s2, d1, lat=4, ports=PORTS_FP_ADD)], 0
    raise ValueError("Unknown opcode: %r" % (op,))
