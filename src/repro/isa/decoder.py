"""Instruction → µop decoding, performed once per static basic block.

This is the heart of zsim's first technique: all decode work (µop fission,
macro-op fusion, port/latency assignment, frontend stall accounting) runs
at *instrumentation time* and is cached, so the per-execution timing cost
is minimal.  The products are :class:`DecodedBBL` descriptors, the exact
analogue of the "Decoded BBL uops" table in Figure 1 of the paper.

The frontend model follows Westmere:

* instruction-length predecoder limited to 16 bytes/cycle, and
* 4-1-1-1 decoders — up to 4 instructions/cycle, but only the first
  decoder slot may emit more than one µop.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode, decode_instruction
from repro.isa.registers import RFLAGS, RIP
from repro.isa.uops import PORTS_BRANCH, Uop, UopType

PREDECODE_BYTES_PER_CYCLE = 16
DECODE_WIDTH = 4


class DecodedBBL:
    """Decoded descriptor for one static basic block.

    Attributes:
        block: the static :class:`~repro.isa.program.BasicBlock`.
        uops: tuple of :class:`~repro.isa.uops.Uop` in program order.
        decode_cycles: frontend cycles needed to predecode + decode the
            block (the max of the length-predecoder and decoder limits).
        branch_uop_index: index of the terminating branch µop, or -1.
        conditional: whether the terminating branch is conditional.
        fused_pairs: number of macro-fused cmp+branch pairs.
    """

    __slots__ = ("block", "uops", "decode_cycles", "branch_uop_index",
                 "conditional", "fused_pairs", "num_loads", "num_stores")

    def __init__(self, block, uops, decode_cycles, branch_uop_index,
                 conditional, fused_pairs):
        self.block = block
        self.uops = tuple(uops)
        self.decode_cycles = decode_cycles
        self.branch_uop_index = branch_uop_index
        self.conditional = conditional
        self.fused_pairs = fused_pairs
        self.num_loads = sum(1 for u in self.uops
                             if u.type == UopType.LOAD)
        self.num_stores = sum(1 for u in self.uops
                              if u.type == UopType.STORE_ADDR)

    @property
    def num_uops(self):
        return len(self.uops)

    def __repr__(self):
        return ("DecodedBBL(block=%d, %d uops, %d decode cycles)"
                % (self.block.bbl_id, len(self.uops), self.decode_cycles))


def _fuse_macro_ops(instructions):
    """Apply macro-op fusion: a CMP immediately followed by a conditional
    branch is decoded as a single µop, as on Westmere.

    Returns a list of (instruction, uop_count_hint, fused) entries where
    fused entries stand for the pair.
    """
    fused = []
    i = 0
    n = len(instructions)
    while i < n:
        instr = instructions[i]
        if (instr.opcode == Opcode.CMP and i + 1 < n
                and instructions[i + 1].opcode == Opcode.COND_BRANCH):
            fused.append((instr, instructions[i + 1]))
            i += 2
        else:
            fused.append((instr, None))
            i += 1
    return fused


def decode_bbl(block):
    """Decode a static basic block into a :class:`DecodedBBL`."""
    uops = []
    mem_slot = 0
    fused_pairs = 0
    decode_groups = _DecodeGroupTracker()

    for instr, fusee in _fuse_macro_ops(block.instructions):
        if fusee is not None:
            # Macro-fused compare+branch: one µop that reads the compare
            # sources and writes flags + rip.
            uop = Uop(UopType.BRANCH, instr.src1, instr.src2, RIP, RFLAGS,
                      lat=1, ports=PORTS_BRANCH)
            uops.append(uop)
            fused_pairs += 1
            decode_groups.add(1)
            continue
        instr_uops, slots = decode_instruction(instr, mem_slot)
        mem_slot += slots
        uops.extend(instr_uops)
        decode_groups.add(len(instr_uops))

    branch_uop_index = -1
    conditional = False
    if uops and uops[-1].type == UopType.BRANCH:
        branch_uop_index = len(uops) - 1
        last_instr = block.instructions[-1]
        conditional = (last_instr.opcode == Opcode.COND_BRANCH)

    predecode_cycles = -(-block.num_bytes // PREDECODE_BYTES_PER_CYCLE)
    decode_cycles = max(1, predecode_cycles, decode_groups.cycles)
    return DecodedBBL(block, uops, decode_cycles, branch_uop_index,
                      conditional, fused_pairs)


class _DecodeGroupTracker:
    """Packs decoded instructions into 4-1-1-1 decoder groups.

    Each cycle decodes at most :data:`DECODE_WIDTH` instructions; an
    instruction that emits more than one µop must occupy the first slot of
    a group, forcing a new group when it appears mid-group.
    """

    def __init__(self):
        self.cycles = 0
        self._slot = DECODE_WIDTH  # force a new group on first add

    def add(self, uop_count):
        complex_instr = uop_count > 1
        if self._slot >= DECODE_WIDTH or (complex_instr and self._slot != 0):
            self.cycles += 1
            self._slot = 0
        self._slot += 1
