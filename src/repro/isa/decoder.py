"""Instruction → µop decoding, performed once per static basic block.

This is the heart of zsim's first technique: all decode work (µop fission,
macro-op fusion, port/latency assignment, frontend stall accounting) runs
at *instrumentation time* and is cached, so the per-execution timing cost
is minimal.  The products are :class:`DecodedBBL` descriptors, the exact
analogue of the "Decoded BBL uops" table in Figure 1 of the paper.

The frontend model follows Westmere:

* instruction-length predecoder limited to 16 bytes/cycle, and
* 4-1-1-1 decoders — up to 4 instructions/cycle, but only the first
  decoder slot may emit more than one µop.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode, decode_instruction
from repro.isa.registers import RFLAGS, RIP
from repro.isa.uops import PORTS_BRANCH, Uop, UopType

PREDECODE_BYTES_PER_CYCLE = 16
DECODE_WIDTH = 4

#: Line size used for the precomputed fetch-line table.  The core
#: models hardcode the same 64-byte fetch granularity.
FETCH_LINE_BYTES = 64


class DecodedBBL:
    """Decoded descriptor for one static basic block.

    Beyond the per-µop :class:`~repro.isa.uops.Uop` objects, the
    descriptor carries the *schedule-once* data plane: flat parallel
    tuples, frontend aggregates, and a static intra-block dependency
    schedule, all built at translation time so dynamic executions touch
    only precomputed scalars (the paper's decode-once amortization,
    extended through scheduling).

    Attributes:
        block: the static :class:`~repro.isa.program.BasicBlock`.
        uops: tuple of :class:`~repro.isa.uops.Uop` in program order.
        decode_cycles: frontend cycles needed to predecode + decode the
            block (the max of the length-predecoder and decoder limits).
        branch_uop_index: index of the terminating branch µop, or -1.
        conditional: whether the terminating branch is conditional.
        fused_pairs: number of macro-fused cmp+branch pairs.
        num_uops: µop count (flat int; was a property pre-refactor).
        fetch_lines: tuple of 64-byte line addresses an ifetch of this
            block touches, in order.
        mem_ops: tuple of ``(mem_slot, is_write)`` for LOAD/STORE_ADDR
            µops in program order (the IPC1 core's whole data plane).
        has_syscall: whether any µop is a SYSCALL.
        flat: per-µop 8-tuples ``(type, lat, ports, mem_slot, dep1,
            gsrc1, dep2, gsrc2)``.  ``depN`` is the index of the last
            prior in-block writer of source N (-1 when the value comes
            from before the block), ``gsrcN`` is the architectural
            register to read from the global scoreboard in that case
            (-1 when source N is absent or satisfied in-block).
        final_writes: tuple of ``(reg, uop_index)`` naming, for every
            register written in the block, its *last* writer — the only
            scoreboard entries later blocks can observe.
    """

    __slots__ = ("block", "uops", "decode_cycles", "branch_uop_index",
                 "conditional", "fused_pairs", "num_loads", "num_stores",
                 "num_uops", "fetch_lines", "mem_ops", "has_syscall",
                 "flat", "final_writes")

    def __init__(self, block, uops, decode_cycles, branch_uop_index,
                 conditional, fused_pairs):
        self.block = block
        self.uops = uops = tuple(uops)
        self.decode_cycles = decode_cycles
        self.branch_uop_index = branch_uop_index
        self.conditional = conditional
        self.fused_pairs = fused_pairs
        self.num_uops = len(uops)
        self.num_loads = sum(1 for u in uops if u.type == UopType.LOAD)
        self.num_stores = sum(1 for u in uops
                              if u.type == UopType.STORE_ADDR)

        lines = []
        line = block.address & ~(FETCH_LINE_BYTES - 1)
        end = block.address + block.num_bytes
        while line < end:
            lines.append(line)
            line += FETCH_LINE_BYTES
        self.fetch_lines = tuple(lines)

        self.mem_ops = tuple(
            (u.mem_slot, u.type == UopType.STORE_ADDR) for u in uops
            if u.type == UopType.LOAD or u.type == UopType.STORE_ADDR)
        self.has_syscall = any(u.type == UopType.SYSCALL for u in uops)

        # Static dependency schedule.  A source register written earlier
        # in the block depends on that writer's completion cycle; one
        # written before the block reads the global scoreboard.  Only
        # the final writer of each register is visible after the block.
        last_writer = {}
        final = {}
        flat = []
        for i, u in enumerate(uops):
            src = u.src1
            if src >= 0:
                dep1 = last_writer.get(src, -1)
                gsrc1 = src if dep1 < 0 else -1
            else:
                dep1 = gsrc1 = -1
            src = u.src2
            if src >= 0:
                dep2 = last_writer.get(src, -1)
                gsrc2 = src if dep2 < 0 else -1
            else:
                dep2 = gsrc2 = -1
            flat.append((u.type, u.lat, u.ports, u.mem_slot,
                         dep1, gsrc1, dep2, gsrc2))
            if u.dst1 >= 0:
                last_writer[u.dst1] = i
                final[u.dst1] = i
            if u.dst2 >= 0:
                last_writer[u.dst2] = i
                final[u.dst2] = i
        self.flat = tuple(flat)
        self.final_writes = tuple(final.items())

    def __repr__(self):
        return ("DecodedBBL(block=%d, %d uops, %d decode cycles)"
                % (self.block.bbl_id, len(self.uops), self.decode_cycles))


def _fuse_macro_ops(instructions):
    """Apply macro-op fusion: a CMP immediately followed by a conditional
    branch is decoded as a single µop, as on Westmere.

    Returns a list of (instruction, uop_count_hint, fused) entries where
    fused entries stand for the pair.
    """
    fused = []
    i = 0
    n = len(instructions)
    while i < n:
        instr = instructions[i]
        if (instr.opcode == Opcode.CMP and i + 1 < n
                and instructions[i + 1].opcode == Opcode.COND_BRANCH):
            fused.append((instr, instructions[i + 1]))
            i += 2
        else:
            fused.append((instr, None))
            i += 1
    return fused


def decode_bbl(block):
    """Decode a static basic block into a :class:`DecodedBBL`."""
    uops = []
    mem_slot = 0
    fused_pairs = 0
    decode_groups = _DecodeGroupTracker()

    for instr, fusee in _fuse_macro_ops(block.instructions):
        if fusee is not None:
            # Macro-fused compare+branch: one µop that reads the compare
            # sources and writes flags + rip.
            uop = Uop(UopType.BRANCH, instr.src1, instr.src2, RIP, RFLAGS,
                      lat=1, ports=PORTS_BRANCH)
            uops.append(uop)
            fused_pairs += 1
            decode_groups.add(1)
            continue
        instr_uops, slots = decode_instruction(instr, mem_slot)
        mem_slot += slots
        uops.extend(instr_uops)
        decode_groups.add(len(instr_uops))

    branch_uop_index = -1
    conditional = False
    if uops and uops[-1].type == UopType.BRANCH:
        branch_uop_index = len(uops) - 1
        last_instr = block.instructions[-1]
        conditional = (last_instr.opcode == Opcode.COND_BRANCH)

    predecode_cycles = -(-block.num_bytes // PREDECODE_BYTES_PER_CYCLE)
    decode_cycles = max(1, predecode_cycles, decode_groups.cycles)
    return DecodedBBL(block, uops, decode_cycles, branch_uop_index,
                      conditional, fused_pairs)


class _DecodeGroupTracker:
    """Packs decoded instructions into 4-1-1-1 decoder groups.

    Each cycle decodes at most :data:`DECODE_WIDTH` instructions; an
    instruction that emits more than one µop must occupy the first slot of
    a group, forcing a new group when it appears mid-group.
    """

    def __init__(self):
        self.cycles = 0
        self._slot = DECODE_WIDTH  # force a new group on first add

    def add(self, uop_count):
        complex_instr = uop_count > 1
        if self._slot >= DECODE_WIDTH or (complex_instr and self._slot != 0):
            self.cycles += 1
            self._slot = 0
        self._slot += 1
