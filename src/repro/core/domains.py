"""Weave-phase domains: vertical slices of the chip, one event queue each.

Components (cores, shared cache banks, memory controllers) are statically
partitioned into domains by tile (Section 3.2.2, Figure 3).  Each domain
owns a priority queue of events and — in real zsim — a host thread; here
domains are executed cooperatively by the engine, which always advances
the domain with the earliest pending event (a conservative, deterministic
emulation of the parallel execution).
"""

from __future__ import annotations

import heapq

from repro.errors import HorizonViolation


class Domain:
    """One weave domain: an event priority queue with its own clock."""

    def __init__(self, domain_id):
        self.domain_id = domain_id
        self._queue = []
        self._seq = 0
        self.current_cycle = 0
        self.events_executed = 0
        self.crossings = 0
        self.crossing_requeues = 0
        #: Horizon invariant floor: within one interval, every push lands
        #: at or above the cycle of the pop that caused it, so per-domain
        #: pops are nondecreasing in *every* legal execution (serial
        #: earliest-first, parallel batches, sync steps).  A pop below
        #: the floor means a corrupt timestamp or a broken executor.
        self._pop_floor = None

    def push(self, cycle, item):
        self._seq += 1
        heapq.heappush(self._queue, (cycle, self._seq, item))

    def pop(self):
        cycle, _seq, item = heapq.heappop(self._queue)
        floor = self._pop_floor
        if floor is not None and cycle < floor:
            raise HorizonViolation(
                "domain %d popped an event at cycle %d below its "
                "interval floor %d: corrupt event timestamp or broken "
                "horizon discipline" % (self.domain_id, cycle, floor),
                cycle=cycle, floor=floor, phase="weave",
                domain=self.domain_id)
        self._pop_floor = cycle
        if cycle > self.current_cycle:
            self.current_cycle = cycle
        return cycle, item

    def head_cycle(self):
        return self._queue[0][0] if self._queue else None

    def head_item(self):
        """Peek the earliest queued item without popping (execution
        backends use this to decide whether the head is independently
        executable or a domain-crossing synchronization point)."""
        return self._queue[0][2] if self._queue else None

    def __len__(self):
        return len(self._queue)

    def integrity_items(self):
        """Digest items for the integrity sentinel: clocks, counters,
        and queued (cycle, seq) pairs — normally none, since the weave
        phase drains every queue before the barrier."""
        yield (self.domain_id, self.current_cycle, self.events_executed,
               self.crossings, self.crossing_requeues, self._seq,
               len(self._queue))
        if self._queue:
            yield tuple(sorted((cycle, seq)
                               for cycle, seq, _item in self._queue))

    def reset_interval_stats(self):
        self.events_executed = 0
        self.crossings = 0
        self.crossing_requeues = 0
        # New interval, new floor: delays from a congested interval may
        # legitimately exceed the next interval's earliest timestamps.
        self._pop_floor = None

    def __repr__(self):
        return "Domain(%d, %d queued)" % (self.domain_id, len(self._queue))


class CoreWeave:
    """The weave-phase stand-in for a core: core events have no service
    time and no occupancy; the component exists to give core events a
    domain and to accumulate per-core contention delay."""

    def __init__(self, name, core_id, tile=0):
        self.name = name
        self.core_id = core_id
        self.tile = tile
        self.domain = 0
        self.events_executed = 0

    def occupy(self, cycle, kind, line=0):
        self.events_executed += 1
        return cycle

    def zero_load_service(self, kind):
        return 0

    def reset(self):
        self.events_executed = 0

    def __repr__(self):
        return "CoreWeave(%s)" % self.name


def assign_domains(components, num_tiles, num_domains):
    """Statically partition components into domains by tile (vertical
    slices).  Returns the list of :class:`Domain` objects."""
    if num_domains <= 0:
        num_domains = max(1, num_tiles)
    num_domains = min(num_domains, max(1, num_tiles))
    tiles_per_domain = max(1, (num_tiles + num_domains - 1) // num_domains)
    domains = [Domain(i) for i in range(num_domains)]
    for comp in components:
        comp.domain = min(comp.tile // tiles_per_domain, num_domains - 1)
    return domains
