"""The paper's primary contribution: the bound-weave simulation engine.

* :class:`~repro.core.simulator.ZSim` — the top-level simulator.
* :class:`~repro.core.bound.BoundPhase` — interval-barrier zero-load
  simulation.
* :class:`~repro.core.weave.WeaveEngine` — domain-partitioned
  event-driven contention simulation.
* :class:`~repro.core.interference.InterferenceProfiler` — Figure 2's
  path-altering interference profile.
* :class:`~repro.core.host.HostModel` — host-parallelism model (Fig. 8).
"""

from repro.core.bound import BoundPhase
from repro.core.domains import CoreWeave, Domain, assign_domains
from repro.core.events import EventPool, WeaveEvent
from repro.core.host import HostModel, makespan
from repro.core.interference import InterferenceProfiler
from repro.core.simulator import (
    CONTENTION_MODELS,
    SimulationResult,
    ZSim,
)
from repro.core.weave import WeaveEngine, WeaveStats

__all__ = [
    "BoundPhase",
    "CONTENTION_MODELS",
    "CoreWeave",
    "Domain",
    "EventPool",
    "HostModel",
    "InterferenceProfiler",
    "SimulationResult",
    "WeaveEngine",
    "WeaveEvent",
    "WeaveStats",
    "ZSim",
    "assign_domains",
    "makespan",
]
