"""The bound phase: parallel zero-load simulation with an interval barrier.

Each interval, every core is simulated (with its attached thread) until
its cycle reaches the interval limit, assuming zero-load memory latencies
and recording weave traces.  The interval barrier provides the three
properties of Section 3.2.1:

1. *Skew limiting* — no core runs past the interval limit.
2. *Moderated parallelism* — at most ``host_threads`` cores are "awake"
   at once; finishing a core wakes the next (the host model measures the
   resulting makespan, see :mod:`repro.core.host`).
3. *No systematic bias* — the wake-up order is reshuffled every interval,
   which also injects the non-determinism that makes results robust.

Blocking syscalls integrate through join/leave: a blocked thread leaves
the barrier (its core can pick up other work or idle to the limit) and
joins again once runnable.
"""

from __future__ import annotations

import random
import time

from repro.cpu.base import RunOutcome
from repro.obs.tracer import TID_CORE
from repro.virt.scheduler import SyscallResult
from repro.virt.syscalls import GetTime, Syscall


class BoundPhase:
    """Drives all cores through one interval at a time."""

    def __init__(self, cores, scheduler, shuffle=True, seed=0,
                 telemetry=None):
        self.cores = cores
        self.scheduler = scheduler
        self.shuffle = shuffle
        self.rng = random.Random(seed)
        self._order = list(range(len(cores)))
        self.intervals = 0
        self.syscalls = 0
        self._telem = telemetry

    def attach_telemetry(self, telemetry):
        self._telem = telemetry

    def _trace_core_run(self, core_id, start_s, end_s):
        """Emit one bound-phase per-core span (telemetry attached only)."""
        telem = self._telem
        if telem.tracer is not None:
            telem.tracer.complete_raw(
                "core%d" % core_id, "bound", start_s, end_s,
                TID_CORE + core_id, {"interval": self.intervals})
        if telem.metrics is not None:
            telem.metrics.histogram("bound.core_run_us").record(
                int((end_s - start_s) * 1e6))

    def run_interval(self, limit_cycle, backend=None):
        """Simulate every core up to ``limit_cycle``.  Returns the list of
        (core_id, host_seconds) in wake-up order for the host model.

        This method decides *what* to run — the shuffled wake order and
        the second-chance passes — while ``backend`` (an
        :class:`repro.exec.ExecutionBackend`) decides *how* each pass
        executes; ``None`` uses the inline reference pass.

        Cores whose thread blocks (or that start idle) are revisited
        after the first pass: threads woken mid-interval — by another
        core's futex wake, a released lock, a barrier, or a due sleep —
        rejoin the *current* interval on an idle core, like zsim's
        join/leave barrier.  Only cores still idle at the end of the
        interval skip to the limit.
        """
        self.intervals += 1
        order = self._order
        if self.shuffle:
            self.rng.shuffle(order)
        timings = []

        def run_pass(cores):
            if backend is None:
                return self.run_pass(cores, limit_cycle, timings)
            return backend.run_bound_pass(self, cores, limit_cycle,
                                          timings)

        outcomes = run_pass([self.cores[core_id] for core_id in order])
        idle = [core for core, ran in outcomes if not ran]
        # Second-chance passes: drain threads that became runnable
        # during this interval onto the idle cores.
        while idle:
            self.scheduler.wake_sleepers_until(limit_cycle)
            idle.sort(key=lambda c: c.cycle)
            outcomes = run_pass(idle)
            idle = [core for core, ran in outcomes if not ran]
            if len(idle) == len(outcomes):  # no progress
                break
        # Cores still idle keep their clocks frozen: they resume from a
        # thread's wake cycle when work appears, and the final cycle
        # count reflects work, not idle padding.
        return timings

    def run_pass(self, cores, limit_cycle, timings):
        """Inline reference executor for one bound pass: run ``cores``
        one after another in wake order on the calling thread.  Appends
        (core_id, host_seconds) to ``timings``; returns
        ``[(core, ran_to_limit)]``.  Backends that execute passes
        differently must preserve this effect order — cores share the
        scheduler and the memory hierarchy, so the order is simulated
        semantics, not an implementation detail."""
        telem = self._telem
        outcomes = []
        for core in cores:
            start = time.perf_counter()
            ran = self._run_core(core, limit_cycle)
            end = time.perf_counter()
            timings.append((core.core_id, end - start))
            if telem is not None:
                self._trace_core_run(core.core_id, start, end)
            outcomes.append((core, ran))
        return outcomes

    # ------------------------------------------------------------------

    def _run_core(self, core, limit_cycle):
        """Run one core toward the limit; returns True when the core
        consumed its interval (reached the limit), False when it went
        idle early — idle cores get second-chance passes so threads
        woken later in the interval can still run on them."""
        scheduler = self.scheduler
        core_id = core.core_id
        while core.cycle < limit_cycle:
            if not core.has_thread:
                thread = scheduler.pick_thread(core_id, core.cycle)
                if thread is None:
                    return False
                core.skip_to(thread.wake_cycle)
                core.attach(thread.stream)
            outcome = core.run_until(limit_cycle)
            if outcome == RunOutcome.LIMIT:
                return True
            thread = scheduler.deschedule(core_id, core.cycle)
            if outcome == RunOutcome.DONE:
                core.detach()
                if thread is not None:
                    scheduler.thread_done(thread)
                continue
            if outcome == RunOutcome.SYSCALL:
                self.syscalls += 1
                syscall = core.pending_syscall
                core.pending_syscall = None
                if not isinstance(syscall, Syscall):
                    syscall = GetTime()  # bare SYSCALL µop: non-blocking
                result = scheduler.handle_syscall(thread, syscall,
                                                  core.cycle)
                if result == SyscallResult.CONTINUE:
                    # Non-blocking syscalls appear instantaneous; keep
                    # running the same thread.
                    scheduler.reattach(core_id, thread)
                    continue
                # Blocked or exited: the thread leaves the barrier.
                core.detach()
                continue
            if outcome == RunOutcome.BLOCKED:
                return False
        return True

    def preempt(self, limit_cycle):
        """Round-robin preemption at the interval boundary."""
        for core in self.cores:
            if not core.has_thread:
                continue
            thread = self.scheduler.preempt_if_due(core.core_id, core.cycle)
            if thread is not None:
                core.detach()
