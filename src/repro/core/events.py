"""Weave-phase events: pre-specified dependencies with lower bounds.

Unlike conventional PDES, every weave event is created *before* the weave
phase runs, with (a) a lower bound on its execution cycle (its bound-phase
zero-load cycle) and (b) fully specified parent/child dependencies.  That
prior knowledge is what lets domains synchronize only when an actual
dependency crosses them (Section 3.2.2, Figure 4).

Events are pooled and recycled LIFO, mirroring zsim's per-core slab
allocators for trace events.
"""

from __future__ import annotations


class WeaveEvent:
    """One event in the weave phase.

    ``children`` holds ``(child_event, gap)`` edges: when this event
    finishes at cycle ``d``, the child may start no earlier than
    ``d + gap``, where ``gap`` is the zero-load transfer time between the
    two events.  ``parents_left`` counts unfinished parents.
    """

    __slots__ = ("component", "kind", "line", "min_cycle", "service",
                 "parents_left", "ready", "done", "children", "core_id",
                 "is_response")

    def __init__(self):
        self.children = []
        self.reset(None, "", 0, 0, 0, 0)

    def reset(self, component, kind, line, min_cycle, service, core_id):
        # ``children`` is deliberately left alone: the pool clears it in
        # place on free (invariant: a pooled event has an empty edge
        # list), so reset never reallocates.
        self.component = component
        self.kind = kind
        self.line = line
        self.min_cycle = min_cycle
        self.service = service
        self.core_id = core_id
        self.parents_left = 0
        self.ready = min_cycle
        self.done = None
        self.is_response = False
        return self

    def link(self, child):
        """Add a dependency edge to ``child`` with the zero-load gap
        implied by the two events' lower bounds."""
        gap = child.min_cycle - self.min_cycle - self.service
        if gap < 0:
            gap = 0
        self.children.append((child, gap))
        child.parents_left += 1

    @property
    def domain(self):
        return self.component.domain if self.component is not None else 0

    def __repr__(self):
        return ("WeaveEvent(%s@%s, min=%d, done=%s)"
                % (self.kind,
                   self.component.name if self.component else "?",
                   self.min_cycle, self.done))


class EventPool:
    """LIFO-recycled pool of :class:`WeaveEvent` (slab-allocator
    analogue: events for an interval are freed together as soon as the
    interval is fully simulated)."""

    def __init__(self):
        self._free = []
        self.allocated = 0
        self.recycled = 0

    def alloc(self, component, kind, line, min_cycle, service, core_id):
        if self._free:
            self.recycled += 1
            event = self._free.pop()
        else:
            self.allocated += 1
            event = WeaveEvent()
        return event.reset(component, kind, line, min_cycle, service,
                           core_id)

    def free_all(self, events):
        """Recycle a whole interval's events (LIFO order).  Edge lists
        are cleared in place — the paired reset() skips them — so a
        steady-state interval allocates no per-event lists at all."""
        free = self._free
        for event in events:
            event.children.clear()
            free.append(event)

    def __len__(self):
        return len(self._free)
