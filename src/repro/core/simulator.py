"""ZSim: the top-level bound-weave simulator.

Ties every subsystem together: the memory hierarchy (bound models +
weave components), core timing models, the scheduler and virtualization
layer, the interval barrier, and the weave engine.  Supports the four
model sets of the evaluation (IPC1/OOO cores x contention on/off) plus
the two alternative contention models of Figure 6 (M/D/1 queueing in the
bound phase, and the DRAMSim-style cycle-driven model in the weave
phase).
"""

from __future__ import annotations

import gc
import time

from repro.core.bound import BoundPhase
from repro.core.domains import CoreWeave
from repro.errors import (CheckpointError, DeadlockError, RunInterrupted,
                          WallClockExceeded)
from repro.core.host import HostModel
from repro.core.weave import WeaveEngine
from repro.cpu import make_core
from repro.exec import make_backend
from repro.exec.backend import ExecutionBackend
from repro.memory.contention import MD1Model
from repro.memory.dramsim import DRAMSimWeave
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.flight import FlightRecorder
from repro.obs.log import get_logger
from repro.obs.tracer import TID_MAIN
from repro.stats.counters import StatsNode
from repro.virt.process import SimThread
from repro.virt.scheduler import Scheduler
from repro.virt.sysview import SystemView

CONTENTION_MODELS = ("none", "md1", "weave", "dramsim")

_log = get_logger("core.simulator")


class _MD1Memory:
    """Hierarchy wrapper adding Graphite-style M/D/1 queueing latency to
    memory accesses in the bound phase (no weave phase)."""

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy
        self.config = hierarchy.config
        mem = hierarchy.config.memory
        ratio = max(1.0, hierarchy.config.core.freq_mhz / mem.bus_mhz)
        # The contended resource is each channel's data bus.
        service = max(2, int(round(4 * ratio)))
        channels = mem.controllers * mem.channels_per_controller
        self._models = [MD1Model(service) for _ in range(channels)]
        self._channels = channels

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        result = self.hierarchy.access(core_id, addr, write, cycle, ifetch)
        if result.missed_levels and self._reaches_memory(result):
            line = result.line
            model = self._models[line % self._channels]
            wait = model.latency(cycle) - model.service
            result.latency += int(wait)
        return result

    @staticmethod
    def _reaches_memory(result):
        levels = result.missed_levels
        return levels and (levels[-1] == "l3" or "l3" not in levels
                           and levels[-1] in ("l2", "l1d", "l1i"))

    def __getattr__(self, name):
        # Raise AttributeError (never recurse) for dunders and for
        # lookups that happen before __init__ ran — copy/pickle probe
        # for __deepcopy__/__reduce__ on half-built instances, which
        # execution-backend workers may trigger.
        if name.startswith("__") or "hierarchy" not in self.__dict__:
            raise AttributeError(
                "%s has no attribute %r" % (type(self).__name__, name))
        return getattr(self.hierarchy, name)


class SimulationResult:
    """Everything a harness needs from one simulation run."""

    def __init__(self, sim, wall_seconds):
        self.config = sim.config
        self.cores = sim.cores
        self.hierarchy = sim.hierarchy
        self.scheduler = sim.scheduler
        self.host_model = sim.host_model
        self.weave_stats = sim.weave.stats if sim.weave else None
        self.wall_seconds = wall_seconds
        self.stat_samples = list(sim.stat_samples)
        self.instrs = sum(core.instrs for core in sim.cores)
        self.uops = sum(core.uops for core in sim.cores)
        self.cycles = max((core.cycle for core in sim.cores), default=0)
        self.intervals = sim.bound.intervals
        supervisor = getattr(sim, "supervisor", None)
        self.resilience = (supervisor.summary()
                           if supervisor is not None else None)
        sentinel = getattr(sim, "integrity", None)
        self.integrity = (sentinel.summary()
                          if sentinel is not None else None)
        backend = getattr(sim, "backend", None)
        self.host_exec = (backend.host_stats()
                          if backend is not None else {})
        self.host_dbt = self._dbt_summary(sim)

    @staticmethod
    def _dbt_summary(sim):
        """Host-side data-plane amortization counters (ISSUE 7): how much
        per-instruction work the schedule-once descriptors, the L1 fast
        path, and the recycling slabs actually absorbed this run."""
        tcaches = {}
        for thread in sim.scheduler.threads:
            stream = getattr(thread, "stream", None)
            tcache = getattr(stream, "tcache", None)
            if tcache is not None:
                tcaches[id(tcache)] = tcache
        translations = sum(t.translations for t in tcaches.values())
        thits = sum(t.hits for t in tcaches.values())
        lookups = translations + thits
        hierarchy = sim.hierarchy
        fast = getattr(hierarchy, "fastpath_hits", 0)
        slow = getattr(hierarchy, "slow_accesses", 0)
        accesses = fast + slow
        summary = {
            "translations": translations,
            "translation_hits": thits,
            "translation_hit_rate": thits / lookups if lookups else 0.0,
            "translation_evictions": sum(t.evictions
                                         for t in tcaches.values()),
            "translation_invalidations": sum(t.invalidations
                                             for t in tcaches.values()),
            "fastpath_hits": fast,
            "l2_fastpath_hits": getattr(hierarchy, "l2_fastpath_hits", 0),
            "slow_accesses": slow,
            "fastpath_hit_rate": fast / accesses if accesses else 0.0,
            "dir_bitmask_ops": (
                sum(c.dir_ops for c in hierarchy.all_caches())
                + hierarchy.mainmem.dir_ops),
            "ctx_reuses": getattr(hierarchy, "ctx_reuses", 0),
            "result_reuses": getattr(hierarchy, "result_reuses", 0),
            "trace_recycles": getattr(sim, "trace_recycles", 0),
        }
        if sim.weave is not None:
            pool = sim.weave.pool
            summary["events_allocated"] = pool.allocated
            summary["events_recycled"] = pool.recycled
        return summary

    @property
    def mips(self):
        """Simulation speed in simulated MIPS (the paper's metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instrs / self.wall_seconds / 1e6

    @property
    def ipc(self):
        return self.instrs / self.cycles if self.cycles else 0.0

    @property
    def perf(self):
        """1/time performance metric for multithreaded validation
        (the paper measures perf = 1/time, not IPC)."""
        return 1.0 / self.cycles if self.cycles else 0.0

    def core_mpki(self, level):
        """Aggregate MPKI across cores at one cache level."""
        misses = sum({"l1i": c.l1i_misses, "l1d": c.l1d_misses,
                      "l2": c.l2_misses, "l3": c.l3_misses}[level]
                     for c in self.cores)
        if self.instrs == 0:
            return 0.0
        return 1000.0 * misses / self.instrs

    def branch_mpki(self):
        mispredicts = sum(getattr(c, "mispredicts", 0) for c in self.cores)
        if self.instrs == 0:
            return 0.0
        return 1000.0 * mispredicts / self.instrs

    def stats(self):
        root = StatsNode("sim")
        root.set("instrs", self.instrs)
        root.set("uops", self.uops)
        root.set("cycles", self.cycles)
        root.set("intervals", self.intervals)
        for core in self.cores:
            core.fill_stats(root.child("core%d" % core.core_id))
        self.hierarchy.fill_stats(root.child("mem"))
        host = root.child("host")
        self.host_model.fill_stats(host)
        if self.host_exec:
            # Backend pool counters (worker deaths, respawns,
            # speculation outcomes) are host-side too: under host/ they
            # never perturb simulated-result comparisons.
            node = host.child("exec")
            for key, value in sorted(self.host_exec.items()):
                node.set(key, value)
        if self.resilience:
            # Host-side supervision counters live under host/ so stats
            # comparisons that exclude host wall-clock noise exclude
            # recovery bookkeeping with it.
            node = host.child("resilience")
            for key, value in sorted(self.resilience.items()):
                node.set(key, value)
        if self.host_dbt:
            # Data-plane amortization (decode/schedule-once, L1 fast
            # path, slabs): host-side — hit rates depend on interval
            # sizing and wrappers, never on simulated results.
            node = host.child("dbt")
            for key, value in sorted(self.host_dbt.items()):
                node.set(key, value)
        if self.integrity:
            # Sentinel counters live under host/: a recovered run
            # fingerprints replayed intervals twice, so these may
            # legitimately differ from a fault-free run's.
            node = host.child("integrity")
            for key, value in sorted(self.integrity.items()):
                node.set(key, value)
        if self.weave_stats is not None:
            weave = root.child("weave")
            weave.set("intervals", self.weave_stats.intervals)
            weave.set("events", self.weave_stats.events)
            weave.set("crossings", self.weave_stats.crossings)
            weave.set("crossing_requeues",
                      self.weave_stats.crossing_requeues)
            weave.set("total_delay", self.weave_stats.total_delay)
        return root


class ZSim:
    """The simulator (one instance per simulation run)."""

    def __init__(self, config, threads=(), contention_model="weave",
                 profiler=None, host_threads=HostModel.DEFAULT_THREADS,
                 mem_wrapper=None, stats_period_intervals=0,
                 telemetry=None, backend=None, flight=None):
        if contention_model not in CONTENTION_MODELS:
            raise ValueError("Unknown contention model: %r"
                             % (contention_model,))
        config.validate()
        self.config = config
        self.contention_model = contention_model
        #: Optional repro.obs.Telemetry context; None = no-op telemetry.
        self._telem = telemetry
        build_weave = contention_model in ("weave", "dramsim")
        self.hierarchy = MemoryHierarchy(config, build_weave=build_weave,
                                         profiler=profiler,
                                         telemetry=telemetry)
        if contention_model == "dramsim":
            self._swap_in_dramsim()
        mem = self.hierarchy
        if contention_model == "md1":
            mem = _MD1Memory(self.hierarchy)
        if mem_wrapper is not None:
            mem = mem_wrapper(mem)
        self.mem = mem
        # Heterogeneous chips: per-core config overrides (e.g. a few
        # OOO cores plus many simple cores sharing the L3).
        overrides = config.hetero_cores or {}
        self.cores = [make_core(i, mem, overrides.get(i, config.core))
                      for i in range(config.num_cores)]
        self.scheduler = Scheduler(config.num_cores,
                                   system_view=SystemView(config),
                                   telemetry=telemetry)
        bw = config.boundweave
        self.bound = BoundPhase(self.cores, self.scheduler,
                                shuffle=bw.shuffle_wake_order, seed=bw.seed,
                                telemetry=telemetry)
        self.weave = None
        self.core_weaves = []
        if build_weave:
            self.core_weaves = [
                CoreWeave("core%d" % i, i, tile=config.core_tile(i))
                for i in range(config.num_cores)]
            mlp_window = {}
            for i in range(config.num_cores):
                model = overrides.get(i, config.core).model
                mlp_window[i] = (1 if model == "simple"
                                 else bw.ooo_mlp_window)
            self.weave = WeaveEngine(
                self.core_weaves, self.hierarchy.weave_components,
                config.num_tiles, bw.num_domains,
                crossing_deps=bw.crossing_dependencies,
                mlp_window=mlp_window, telemetry=telemetry)
        self.host_model = HostModel(host_threads)
        # Execution backend: how bound passes and weave intervals run on
        # the host (serial reference, worker pool, or two-stage
        # pipeline).  None defers to config.boundweave.backend.
        if backend is None:
            backend = getattr(bw, "backend", "serial") or "serial"
        if isinstance(backend, str):
            backend = make_backend(backend)
        elif not isinstance(backend, ExecutionBackend):
            raise TypeError("backend must be a name or an "
                            "ExecutionBackend, got %r" % (backend,))
        self.backend = backend
        self.backend.start(self)
        self.host_model.backend_name = self.backend.name
        if getattr(bw, "watchdog_budget_s", 0.0):
            self.backend.watchdog_budget = bw.watchdog_budget_s
        #: Flight recorder (see repro.obs.flight): an always-on bounded
        #: ring of run events, frozen into a post-mortem capsule on any
        #: crash.  Default-on because its per-event cost is a deque
        #: append; pass ``flight=False`` to disable (call sites guard on
        #: ``flight is not None``), or a configured FlightRecorder to
        #: set capacity/capsule_dir.
        if flight is None:
            flight = FlightRecorder()
        elif flight is False:
            flight = None
        self.flight = flight
        #: Optional live run monitor (repro.obs.monitor.RunMonitor),
        #: installed by the CLI's --status-file/--status-port flags.
        self.monitor = None
        #: State-integrity sentinel (repro.resilience.integrity):
        #: fingerprint chain at every barrier plus invariant audits at
        #: the configured stride.  Part of *simulated* state on purpose
        #: (it is not in checkpoint._detached): restores rewind the
        #: chain with the state it fingerprints.  None when
        #: boundweave.audit_every is 0 (CLI: --audit-every).
        self.integrity = None
        if getattr(bw, "audit_every", 0):
            from repro.resilience.integrity import IntegritySentinel
            self.integrity = IntegritySentinel(audit_every=bw.audit_every)
        #: Resilience layer hooks (see repro.resilience): a Supervisor
        #: attaches itself here; a Checkpointer/wall budget is installed
        #: by the harness.  All optional; None means unsupervised.
        self.supervisor = None
        self.checkpointer = None
        self.max_wall_seconds = None
        #: Cooperative stop: set by request_stop() (signal handlers);
        #: checked at each interval barrier, where state is consistent.
        self._stop_requested = None
        self._resume = None
        #: Periodic stats sampling (zsim's periodic HDF5 dumps): every
        #: N intervals a (cycle, instrs) sample is appended.
        self.stats_period_intervals = stats_period_intervals
        self.stat_samples = []
        #: Trace-list freelist: emptied list shells from past intervals,
        #: reinstalled on cores by _collect_traces (host-side only).
        self._trace_freelist = []
        self.trace_recycles = 0
        if telemetry is not None and telemetry.tracer is not None:
            self._name_tracks(telemetry.tracer)
        for thread in threads:
            self.add_thread(thread)

    # ------------------------------------------------------------------

    def add_thread(self, thread):
        if not isinstance(thread, SimThread):
            raise TypeError("add_thread expects a SimThread; wrap streams "
                            "with repro.virt.SimThread")
        self.scheduler.add_thread(thread)

    def _swap_in_dramsim(self):
        """Replace the native memory-controller weave models with the
        cycle-driven DRAMSim-style model (the 'glue code' experiment)."""
        mainmem = self.hierarchy.mainmem
        replaced = []
        for idx, weave in enumerate(mainmem.ctrl_weaves):
            dram = DRAMSimWeave("dramsim%d" % idx, self.config.memory,
                                self.config.core.freq_mhz,
                                tile=mainmem.controller_tile(idx))
            mainmem.ctrl_weaves[idx] = dram
            replaced.append((weave, dram))
        components = self.hierarchy.weave_components
        for old, new in replaced:
            if old in components:
                components[components.index(old)] = new

    # ------------------------------------------------------------------

    def run(self, max_instrs=None, max_cycles=None, max_intervals=None,
            telemetry=None):
        """Run to completion (all threads done) or to a limit.  Returns a
        :class:`SimulationResult`.  ``telemetry`` installs (or replaces)
        the observability context for this run."""
        if telemetry is not None:
            self.attach_telemetry(telemetry)
        telem = self._telem
        tracer = telem.tracer if telem is not None else None
        metrics = telem.metrics if telem is not None else None
        interval = self.config.boundweave.interval_cycles
        limit = interval
        _log.info("run start: %s, %d cores, %s contention, interval %d",
                  self.config.name, self.config.num_cores,
                  self.contention_model, interval)
        start_wall = time.perf_counter()
        intervals_run = 0
        if self._resume is not None:
            # Restored from a checkpoint: continue the interval loop
            # exactly where the checkpointed run left off.
            intervals_run, limit = self._resume
            self._resume = None
            _log.info("resuming at interval %d (limit cycle %d)",
                      intervals_run, limit)
        run_state = "done"
        # The hot loops recycle their objects through slab pools, so
        # gen-0 collections mostly scan survivors for nothing; raising
        # the thresholds for the run's duration trims that overhead
        # without changing observable behavior (restored in finally).
        gc_thresholds = gc.get_threshold()
        gc.set_threshold(200_000, 50, 50)
        try:
            # Always dereference self.scheduler inside the loop: a
            # resilience restore swaps the simulator's __dict__, so any
            # captured subsystem reference would go stale.
            while not self._done(self.scheduler, intervals_run,
                                 max_instrs, max_cycles, max_intervals):
                self._check_wall_budget(start_wall, intervals_run, limit)
                self._check_stop_request(intervals_run, limit)
                if self.supervisor is not None:
                    outcome = self.supervisor.run_interval(limit)
                else:
                    outcome = self._execute_interval(limit)
                bound_start, bound_end, weave_seconds, domain_events = \
                    outcome
                intervals_run += 1
                if (self.stats_period_intervals
                        and intervals_run % self.stats_period_intervals
                        == 0):
                    self.stat_samples.append(
                        (max(c.cycle for c in self.cores),
                         sum(c.instrs for c in self.cores)))
                if telem is not None:
                    self._record_interval_telemetry(
                        tracer, metrics, intervals_run, limit,
                        bound_start, bound_end, weave_seconds,
                        domain_events)
                # Interval-barrier observability (dereferenced per
                # iteration: restore() preserves these, but the objects
                # are host-side and could be swapped by a harness).
                flight = self.flight
                monitor = self.monitor
                if flight is not None or monitor is not None:
                    cycle = max(c.cycle for c in self.cores)
                    instrs = sum(c.instrs for c in self.cores)
                    if flight is not None:
                        flight.record("interval",
                                      interval=intervals_run,
                                      limit=limit, cycle=cycle,
                                      instrs=instrs)
                    if monitor is not None:
                        monitor.update(self, intervals_run, limit,
                                       cycle=cycle, instrs=instrs)
                limit = self._advance_limit(limit, interval)
                if self.checkpointer is not None:
                    # After _advance_limit so the capsule records the
                    # next interval's limit (what resume continues with).
                    self.checkpointer.maybe_save(self, intervals_run,
                                                 limit)
        except WallClockExceeded as exc:
            # Graceful stops (wall budget, SIGTERM/SIGINT): resumable
            # by design, but still worth a capsule — a stopped
            # multi-hour run should leave its final seconds behind.
            run_state = "stopped"
            if self.flight is not None:
                self.flight.capture(self, kind="stopped",
                                    message=str(exc),
                                    interval=intervals_run)
            raise
        except BaseException as exc:
            # Deadlocks, typed faults the supervisor could not absorb,
            # and plain crashes: dump the black box before unwinding.
            run_state = "failed"
            if self.flight is not None:
                self.flight.capture(self, kind=type(exc).__name__,
                                    message=str(exc),
                                    interval=intervals_run)
            raise
        finally:
            gc.set_threshold(*gc_thresholds)
            self.backend.shutdown()
            if self.monitor is not None:
                self.monitor.finish(self, run_state)
        wall = time.perf_counter() - start_wall
        result = SimulationResult(self, wall)
        _log.info("run done: %d instrs, %d cycles, %d intervals, "
                  "%.3f s wall (%.3f MIPS)", result.instrs, result.cycles,
                  intervals_run, wall, result.mips)
        return result

    def _execute_interval(self, limit, backend=None):
        """One interval of the bound-weave loop: bound passes to the
        limit cycle, weave phase with contention feedback, host-model
        accounting, and the barrier preemption sweep.  ``backend``
        overrides the configured backend (the resilience supervisor
        passes the serial reference for degraded re-runs).  Returns the
        ``(bound_start, bound_end, weave_seconds, domain_events)``
        telemetry tuple."""
        if backend is None:
            backend = self.backend
        bound_start = time.perf_counter()
        bound_times = self.bound.run_interval(limit, backend=backend)
        bound_end = time.perf_counter()
        # Silent-corruption seam: core-selector `corrupt` faults damage
        # architectural state between the phases — undetectable except
        # by the integrity sentinel (see FaultPlan.scribble).
        plan = getattr(backend, "fault_plan", None)
        if plan is not None:
            plan.scribble(self, self.bound.intervals)
        weave_seconds, domain_events = self._weave_interval(backend)
        self.host_model.record_interval(
            bound_times, domain_events, weave_seconds,
            measured_seconds=(bound_end - bound_start) + weave_seconds)
        self.bound.preempt(limit)
        # Fingerprint (and, on stride, audit) the barrier state; raises
        # IntegrityError for the supervisor's rollback-to-verified path.
        sentinel = self.integrity
        if sentinel is not None:
            sentinel.observe(self, self.bound.intervals)
        return bound_start, bound_end, weave_seconds, domain_events

    def _check_wall_budget(self, start_wall, intervals_run, limit):
        """Raise :class:`WallClockExceeded` when the run outlived its
        ``max_wall_seconds`` budget, writing a final checkpoint first
        when checkpointing is on (the run is resumable)."""
        budget = self.max_wall_seconds
        if budget is None:
            return
        elapsed = time.perf_counter() - start_wall
        if elapsed < budget:
            return
        path = None
        if self.checkpointer is not None:
            path = self.checkpointer.save(self, intervals_run, limit)
        raise WallClockExceeded(
            "wall-clock budget of %.1f s exhausted after %.1f s "
            "(%d intervals)%s"
            % (budget, elapsed, intervals_run,
               "; resume from %s" % path if path else ""),
            budget_s=budget, elapsed_s=elapsed, intervals=intervals_run,
            checkpoint_path=path)

    def request_stop(self, reason="stop requested"):
        """Ask the run to stop at the next interval barrier (safe to
        call from a signal handler: only sets a flag).  The run loop
        then writes a final checkpoint (when checkpointing is on) and
        raises :class:`~repro.errors.RunInterrupted` — the same
        resumable exit path as an exhausted wall-clock budget."""
        self._stop_requested = reason

    def _check_stop_request(self, intervals_run, limit):
        """Honor request_stop() at the interval barrier (a consistent
        global state, so the final checkpoint is sound)."""
        # getattr: checkpoints written by older builds predate the flag.
        reason = getattr(self, "_stop_requested", None)
        if reason is None:
            return
        path = None
        if self.checkpointer is not None:
            path = self.checkpointer.save(self, intervals_run, limit)
        raise RunInterrupted(
            "run interrupted (%s) after %d intervals%s"
            % (reason, intervals_run,
               "; resume from %s" % path if path else ""),
            reason=reason, intervals=intervals_run,
            checkpoint_path=path)

    def _done(self, scheduler, intervals_run, max_instrs, max_cycles,
              max_intervals):
        """Termination predicate of the interval loop."""
        if scheduler.all_done:
            return True
        if max_intervals is not None and intervals_run >= max_intervals:
            return True
        if max_instrs is not None and \
                sum(c.instrs for c in self.cores) >= max_instrs:
            return True
        return max_cycles is not None and \
            max(c.cycle for c in self.cores) >= max_cycles

    def _collect_traces(self):
        """Harvest the weave traces every core recorded this interval,
        handing each core a recycled list from the trace freelist."""
        traces = {}
        freelist = self._trace_freelist
        for core in self.cores:
            if core.trace:
                fresh = freelist.pop() if freelist else None
                traces[core.core_id] = core.take_trace(fresh)
        return traces

    def _weave_interval(self, backend=None):
        """Run the weave phase for the traces of the interval that just
        ended (through the execution backend) and apply the resulting
        contention delays.  Returns (weave_seconds, domain_events)."""
        if backend is None:
            backend = self.backend
        if self.weave is None:
            for core in self.cores:
                core.trace.clear()
            return 0.0, []
        traces = self._collect_traces()
        weave_start = time.perf_counter()
        delays = backend.run_weave(self.weave, traces)
        weave_seconds = time.perf_counter() - weave_start
        for core_id, delay in delays.items():
            self.cores[core_id].apply_delay(delay)
        # run_weave is the feedback barrier in every backend: once it
        # returns, nothing observes this interval's trace records again,
        # so both the AccessResults and the list shells go back to their
        # slabs.  Result recycling is gated on the cores talking to the
        # bare hierarchy — wrappers (_MD1Memory, test mem_wrappers) may
        # mutate or retain results, so they opt out.
        recycle = (self.hierarchy.recycle_results
                   if self.mem is self.hierarchy else None)
        freelist = self._trace_freelist
        for trace in traces.values():
            if recycle is not None:
                recycle(result for _cycle, result in trace)
            self.trace_recycles += len(trace)
            trace.clear()
            if len(freelist) < 64:
                freelist.append(trace)
        return weave_seconds, self.weave.last_interval_domain_events

    def attach_telemetry(self, telemetry):
        """Install an observability context on this simulator and every
        instrumented subsystem (bound phase, weave engine, hierarchy,
        scheduler).  Pass None to detach."""
        self._telem = telemetry
        self.bound.attach_telemetry(telemetry)
        self.scheduler.attach_telemetry(telemetry)
        self.hierarchy.attach_telemetry(telemetry)
        if self.weave is not None:
            self.weave.attach_telemetry(telemetry)
        if telemetry is not None and telemetry.tracer is not None:
            self._name_tracks(telemetry.tracer)

    def _name_tracks(self, tracer):
        from repro.obs.tracer import TID_CORE, TID_DOMAIN
        for core in self.cores:
            tracer.name_track(TID_CORE + core.core_id,
                              "bound core%d" % core.core_id)
        if self.weave is not None:
            for domain in self.weave.domains:
                tracer.name_track(TID_DOMAIN + domain.domain_id,
                                  "weave domain%d" % domain.domain_id)

    def _record_interval_telemetry(self, tracer, metrics, interval_no,
                                   limit, bound_start, bound_end,
                                   weave_seconds, domain_events):
        """One interval's worth of spans and metric samples (only called
        when telemetry is attached)."""
        cycle = max(c.cycle for c in self.cores)
        instrs = sum(c.instrs for c in self.cores)
        if tracer is not None:
            tracer.complete_raw("bound", "phase", bound_start, bound_end,
                                TID_MAIN, {"interval": interval_no,
                                           "limit_cycle": limit})
            if self.weave is not None:
                tracer.complete_raw("weave", "phase", bound_end,
                                    bound_end + weave_seconds, TID_MAIN,
                                    {"interval": interval_no,
                                     "events": sum(domain_events)})
            tracer.instant("barrier", "interval", TID_MAIN,
                           {"interval": interval_no, "cycle": cycle,
                            "instrs": instrs})
        if metrics is not None:
            self.backend.sample_idle(metrics)
            metrics.sample_interval(
                interval_no, cycle=cycle, instrs=instrs,
                bound_seconds=bound_end - bound_start,
                weave_seconds=weave_seconds,
                weave_events=sum(domain_events),
                runnable_threads=self.scheduler.runnable_count())
        _log.debug("interval %d: cycle %d, %d instrs, bound %.3f ms, "
                   "weave %.3f ms", interval_no, cycle, instrs,
                   (bound_end - bound_start) * 1e3, weave_seconds * 1e3)

    def _advance_limit(self, limit, interval):
        scheduler = self.scheduler
        min_cycle = min(core.cycle for core in self.cores)
        next_limit = max(limit, min_cycle) + interval
        if (not scheduler.all_done
                and scheduler.runnable_count(next_limit) == 0
                and not any(c.has_thread for c in self.cores)):
            wake = scheduler.next_wake_cycle()
            if wake is None:
                blocked = scheduler.blocked_report()
                raise DeadlockError(
                    "Deadlock: no runnable threads, no sleepers; "
                    "blocked threads: %s"
                    % ", ".join(t["thread"] for t in blocked),
                    blocked=blocked, next_wake=None,
                    interval=self.bound.intervals)
            next_limit = max(next_limit, wake + interval)
        return next_limit

    # ------------------------------------------------------------------
    # Checkpoint resume
    # ------------------------------------------------------------------

    @classmethod
    def resume(cls, capsule, threads, backend=None, telemetry=None,
               flight=None):
        """Reconstruct a simulator from a checkpoint capsule (see
        :func:`repro.resilience.read_checkpoint`).

        ``threads`` must be freshly built by the *same* workload recipe
        (spec, seed, thread count) as the checkpointed run: the saved
        streams carry only their position, and each is fast-forwarded
        over the matching fresh thread's generator — deterministic by
        the workload seeding contract.  The returned simulator's
        ``run()`` continues the interval loop where the checkpointed
        run stopped and produces the same final stats tree as an
        uninterrupted run.
        """
        sim = capsule["sim"]
        saved = sim.scheduler.threads
        threads = list(threads)
        if len(threads) != len(saved):
            raise CheckpointError(
                "checkpoint has %d threads but the workload built %d: "
                "resume needs the original workload recipe"
                % (len(saved), len(threads)))
        for saved_thread, fresh in zip(saved, threads):
            saved_thread.stream.resume_source(fresh.stream._stream)
        if backend is None:
            backend = capsule.get("backend") or "serial"
        if isinstance(backend, str):
            backend = make_backend(backend)
        sim.backend = backend
        backend.start(sim)
        sim.host_model.backend_name = backend.name
        bw = sim.config.boundweave
        if getattr(bw, "watchdog_budget_s", 0.0):
            backend.watchdog_budget = bw.watchdog_budget_s
        if telemetry is not None:
            sim.attach_telemetry(telemetry)
        # Checkpoints detach the host-side observers (see
        # resilience.checkpoint._detached); the resumed run gets fresh
        # ones — same semantics as ZSim.__init__'s flight parameter.
        if flight is None:
            flight = FlightRecorder()
        elif flight is False:
            flight = None
        sim.flight = flight
        sim.monitor = None
        # Checkpoints written by builds without the data-plane slabs
        # predate these host-side attributes.
        sim.__dict__.setdefault("_trace_freelist", [])
        sim.__dict__.setdefault("trace_recycles", 0)
        # Checkpoints written by builds without the integrity sentinel
        # predate the attribute; with a sentinel aboard, prove the
        # capsule restored exactly what was saved before running a
        # single interval on top of it.
        sim.__dict__.setdefault("integrity", None)
        record = (capsule.get("meta") or {}).get("integrity")
        if record and sim.integrity is not None:
            from repro.resilience.integrity import verify_state
            verify_state(sim, record, context="resume")
        sim._resume = (capsule["interval"], capsule["limit"])
        return sim
