"""ZSim: the top-level bound-weave simulator.

Ties every subsystem together: the memory hierarchy (bound models +
weave components), core timing models, the scheduler and virtualization
layer, the interval barrier, and the weave engine.  Supports the four
model sets of the evaluation (IPC1/OOO cores x contention on/off) plus
the two alternative contention models of Figure 6 (M/D/1 queueing in the
bound phase, and the DRAMSim-style cycle-driven model in the weave
phase).
"""

from __future__ import annotations

import time

from repro.core.bound import BoundPhase
from repro.core.domains import CoreWeave
from repro.core.host import HostModel
from repro.core.weave import WeaveEngine
from repro.cpu import make_core
from repro.memory.contention import MD1Model
from repro.memory.dramsim import DRAMSimWeave
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats.counters import StatsNode
from repro.virt.process import SimThread
from repro.virt.scheduler import Scheduler
from repro.virt.sysview import SystemView

CONTENTION_MODELS = ("none", "md1", "weave", "dramsim")


class _MD1Memory:
    """Hierarchy wrapper adding Graphite-style M/D/1 queueing latency to
    memory accesses in the bound phase (no weave phase)."""

    def __init__(self, hierarchy):
        self.hierarchy = hierarchy
        self.config = hierarchy.config
        mem = hierarchy.config.memory
        ratio = max(1.0, hierarchy.config.core.freq_mhz / mem.bus_mhz)
        # The contended resource is each channel's data bus.
        service = max(2, int(round(4 * ratio)))
        channels = mem.controllers * mem.channels_per_controller
        self._models = [MD1Model(service) for _ in range(channels)]
        self._channels = channels

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        result = self.hierarchy.access(core_id, addr, write, cycle, ifetch)
        if result.missed_levels and self._reaches_memory(result):
            line = result.line
            model = self._models[line % self._channels]
            wait = model.latency(cycle) - model.service
            result.latency += int(wait)
        return result

    @staticmethod
    def _reaches_memory(result):
        levels = result.missed_levels
        return levels and (levels[-1] == "l3" or "l3" not in levels
                           and levels[-1] in ("l2", "l1d", "l1i"))

    def __getattr__(self, name):
        return getattr(self.hierarchy, name)


class SimulationResult:
    """Everything a harness needs from one simulation run."""

    def __init__(self, sim, wall_seconds):
        self.config = sim.config
        self.cores = sim.cores
        self.hierarchy = sim.hierarchy
        self.scheduler = sim.scheduler
        self.host_model = sim.host_model
        self.weave_stats = sim.weave.stats if sim.weave else None
        self.wall_seconds = wall_seconds
        self.stat_samples = list(sim.stat_samples)
        self.instrs = sum(core.instrs for core in sim.cores)
        self.uops = sum(core.uops for core in sim.cores)
        self.cycles = max((core.cycle for core in sim.cores), default=0)
        self.intervals = sim.bound.intervals

    @property
    def mips(self):
        """Simulation speed in simulated MIPS (the paper's metric)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.instrs / self.wall_seconds / 1e6

    @property
    def ipc(self):
        return self.instrs / self.cycles if self.cycles else 0.0

    @property
    def perf(self):
        """1/time performance metric for multithreaded validation
        (the paper measures perf = 1/time, not IPC)."""
        return 1.0 / self.cycles if self.cycles else 0.0

    def core_mpki(self, level):
        """Aggregate MPKI across cores at one cache level."""
        misses = sum({"l1i": c.l1i_misses, "l1d": c.l1d_misses,
                      "l2": c.l2_misses, "l3": c.l3_misses}[level]
                     for c in self.cores)
        if self.instrs == 0:
            return 0.0
        return 1000.0 * misses / self.instrs

    def branch_mpki(self):
        mispredicts = sum(getattr(c, "mispredicts", 0) for c in self.cores)
        if self.instrs == 0:
            return 0.0
        return 1000.0 * mispredicts / self.instrs

    def stats(self):
        root = StatsNode("sim")
        root.set("instrs", self.instrs)
        root.set("uops", self.uops)
        root.set("cycles", self.cycles)
        root.set("intervals", self.intervals)
        for core in self.cores:
            core.fill_stats(root.child("core%d" % core.core_id))
        self.hierarchy.fill_stats(root.child("mem"))
        return root


class ZSim:
    """The simulator (one instance per simulation run)."""

    def __init__(self, config, threads=(), contention_model="weave",
                 profiler=None, host_threads=HostModel.DEFAULT_THREADS,
                 mem_wrapper=None, stats_period_intervals=0):
        if contention_model not in CONTENTION_MODELS:
            raise ValueError("Unknown contention model: %r"
                             % (contention_model,))
        config.validate()
        self.config = config
        self.contention_model = contention_model
        build_weave = contention_model in ("weave", "dramsim")
        self.hierarchy = MemoryHierarchy(config, build_weave=build_weave,
                                         profiler=profiler)
        if contention_model == "dramsim":
            self._swap_in_dramsim()
        mem = self.hierarchy
        if contention_model == "md1":
            mem = _MD1Memory(self.hierarchy)
        if mem_wrapper is not None:
            mem = mem_wrapper(mem)
        self.mem = mem
        # Heterogeneous chips: per-core config overrides (e.g. a few
        # OOO cores plus many simple cores sharing the L3).
        overrides = config.hetero_cores or {}
        self.cores = [make_core(i, mem, overrides.get(i, config.core))
                      for i in range(config.num_cores)]
        self.scheduler = Scheduler(config.num_cores,
                                   system_view=SystemView(config))
        bw = config.boundweave
        self.bound = BoundPhase(self.cores, self.scheduler,
                                shuffle=bw.shuffle_wake_order, seed=bw.seed)
        self.weave = None
        self.core_weaves = []
        if build_weave:
            self.core_weaves = [
                CoreWeave("core%d" % i, i, tile=config.core_tile(i))
                for i in range(config.num_cores)]
            mlp_window = {}
            for i in range(config.num_cores):
                model = overrides.get(i, config.core).model
                mlp_window[i] = (1 if model == "simple"
                                 else bw.ooo_mlp_window)
            self.weave = WeaveEngine(
                self.core_weaves, self.hierarchy.weave_components,
                config.num_tiles, bw.num_domains,
                crossing_deps=bw.crossing_dependencies,
                mlp_window=mlp_window)
        self.host_model = HostModel(host_threads)
        #: Periodic stats sampling (zsim's periodic HDF5 dumps): every
        #: N intervals a (cycle, instrs) sample is appended.
        self.stats_period_intervals = stats_period_intervals
        self.stat_samples = []
        for thread in threads:
            self.add_thread(thread)

    # ------------------------------------------------------------------

    def add_thread(self, thread):
        if not isinstance(thread, SimThread):
            raise TypeError("add_thread expects a SimThread; wrap streams "
                            "with repro.virt.SimThread")
        self.scheduler.add_thread(thread)

    def _swap_in_dramsim(self):
        """Replace the native memory-controller weave models with the
        cycle-driven DRAMSim-style model (the 'glue code' experiment)."""
        mainmem = self.hierarchy.mainmem
        replaced = []
        for idx, weave in enumerate(mainmem.ctrl_weaves):
            dram = DRAMSimWeave("dramsim%d" % idx, self.config.memory,
                                self.config.core.freq_mhz,
                                tile=mainmem.controller_tile(idx))
            mainmem.ctrl_weaves[idx] = dram
            replaced.append((weave, dram))
        components = self.hierarchy.weave_components
        for old, new in replaced:
            if old in components:
                components[components.index(old)] = new

    # ------------------------------------------------------------------

    def run(self, max_instrs=None, max_cycles=None, max_intervals=None):
        """Run to completion (all threads done) or to a limit.  Returns a
        :class:`SimulationResult`."""
        interval = self.config.boundweave.interval_cycles
        scheduler = self.scheduler
        limit = interval
        start_wall = time.perf_counter()
        intervals_run = 0
        while True:
            if scheduler.all_done:
                break
            if max_intervals is not None and intervals_run >= max_intervals:
                break
            if max_instrs is not None and \
                    sum(c.instrs for c in self.cores) >= max_instrs:
                break
            if max_cycles is not None and \
                    max(c.cycle for c in self.cores) >= max_cycles:
                break
            bound_times = self.bound.run_interval(limit)
            weave_seconds = 0.0
            domain_events = []
            if self.weave is not None:
                traces = {}
                for core in self.cores:
                    if core.trace:
                        traces[core.core_id] = core.take_trace()
                weave_start = time.perf_counter()
                delays = self.weave.run_interval(traces)
                weave_seconds = time.perf_counter() - weave_start
                domain_events = self.weave.last_interval_domain_events
                for core_id, delay in delays.items():
                    self.cores[core_id].apply_delay(delay)
            else:
                for core in self.cores:
                    core.trace.clear()
            self.host_model.record_interval(bound_times, domain_events,
                                            weave_seconds)
            self.bound.preempt(limit)
            intervals_run += 1
            if (self.stats_period_intervals
                    and intervals_run % self.stats_period_intervals == 0):
                self.stat_samples.append(
                    (max(c.cycle for c in self.cores),
                     sum(c.instrs for c in self.cores)))
            limit = self._advance_limit(limit, interval)
        return SimulationResult(self, time.perf_counter() - start_wall)

    def _advance_limit(self, limit, interval):
        scheduler = self.scheduler
        min_cycle = min(core.cycle for core in self.cores)
        next_limit = max(limit, min_cycle) + interval
        if (not scheduler.all_done
                and scheduler.runnable_count(next_limit) == 0
                and not any(c.has_thread for c in self.cores)):
            wake = scheduler.next_wake_cycle()
            if wake is None:
                blocked = [t.name for t in scheduler.live_threads]
                raise RuntimeError(
                    "Deadlock: no runnable threads, no sleepers; "
                    "blocked threads: %s" % blocked)
            next_limit = max(next_limit, wake + interval)
        return next_limit
