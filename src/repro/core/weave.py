"""The weave phase: parallel event-driven simulation of bound traces.

Takes the per-core traces recorded in the bound phase (accesses that
escaped the private cache levels, each with its chain of component visits
at zero-load offsets) and replays them through the weave timing models in
full order, computing the contention delays the bound phase ignored.

Event-graph construction follows Figure 4: per access, a core request
event, one event per component visited, and a core response event, all
serially linked.  Consecutive accesses of one core are chained through an
MLP window: access *i* cannot issue before the response of access
*i - mlp*, which serializes blocking (IPC1) cores and preserves overlap
for OOO cores.  Writebacks hang off the chain as side events.

Domains execute cooperatively: the engine always advances the domain with
the earliest pending event — a deterministic, conservative emulation of
zsim's one-thread-per-domain execution.  Cross-domain dependencies are
tracked as domain-crossing events with requeue accounting, including the
paper's crossing-dependency optimization (and its ablation).
"""

from __future__ import annotations

import time

from repro.core.events import EventPool
from repro.core.domains import assign_domains
from repro.obs.tracer import TID_DOMAIN


class _Crossing:
    """Premature-synchronization probe for a cross-domain edge (only
    materialized when the crossing-dependency optimization is off)."""

    __slots__ = ("parent", "gap")

    def __init__(self, parent, gap):
        self.parent = parent
        self.gap = gap


class WeaveStats:
    """Aggregate weave-phase statistics."""

    def __init__(self):
        self.intervals = 0
        self.events = 0
        self.crossings = 0
        self.crossing_requeues = 0
        self.total_delay = 0

    def __repr__(self):
        return ("WeaveStats(intervals=%d, events=%d, crossings=%d, "
                "requeues=%d, delay=%d)"
                % (self.intervals, self.events, self.crossings,
                   self.crossing_requeues, self.total_delay))


class WeaveEngine:
    """Builds and executes the weave-phase event graph per interval."""

    def __init__(self, core_weaves, components, num_tiles, num_domains=0,
                 crossing_deps=True, mlp_window=None, journal=None,
                 telemetry=None):
        self.core_weaves = core_weaves
        self.components = list(components)
        self.crossing_deps = crossing_deps
        #: Per-core MLP window: how many accesses may overlap.
        self.mlp_window = mlp_window or {}
        self.domains = assign_domains(
            list(core_weaves) + self.components, num_tiles, num_domains)
        self.pool = EventPool()
        self.stats = WeaveStats()
        self._telem = telemetry
        #: Optional list collecting (component, kind, min_cycle, start,
        #: done, core_id) per executed event — the Figure 4 trace, for
        #: debugging and structural tests.
        self.journal = journal
        #: Per-domain executed-event counts of the last interval, for the
        #: host-parallelism model.
        self.last_interval_domain_events = [0] * len(self.domains)

    # ------------------------------------------------------------------

    def run_interval(self, traces, executor=None):
        """Simulate one interval.  ``traces`` maps core_id -> list of
        (issue_cycle, AccessResult).  Returns {core_id: delay}.

        ``executor`` — a callable taking the built event list — replaces
        *how* the event graph executes (an execution backend's parallel
        drain); ``None`` uses the engine's earliest-first reference
        executor.  Any executor must produce the same per-component
        ``occupy`` order as the reference, which is the order simulated
        timing depends on."""
        self.stats.intervals += 1
        telem = self._telem
        start = time.perf_counter() if telem is not None else 0.0
        for domain in self.domains:
            domain.reset_interval_stats()
        events, last_resp = self._build_events(traces)
        if events:
            if executor is None:
                self._execute(events)
            else:
                executor(events)
        delays = {}
        for core_id, resp in last_resp.items():
            delay = (resp.done or resp.min_cycle) - resp.min_cycle
            delays[core_id] = max(0, delay)
            self.stats.total_delay += delays[core_id]
        self.last_interval_domain_events = [
            d.events_executed for d in self.domains]
        for domain in self.domains:
            self.stats.events += domain.events_executed
            self.stats.crossings += domain.crossings
            self.stats.crossing_requeues += domain.crossing_requeues
        self.pool.free_all(events)
        if telem is not None:
            self._record_interval_telemetry(telem, start,
                                            time.perf_counter(),
                                            len(events))
        return delays

    def attach_telemetry(self, telemetry):
        self._telem = telemetry

    def _record_interval_telemetry(self, telem, start_s, end_s,
                                   num_events):
        """Per-domain spans and queue/crossing histograms for one
        interval.  Domains execute cooperatively (interleaved on one host
        thread), so each domain's span is the interval's weave wall time
        apportioned by its share of executed events — the same model the
        host-parallelism estimate uses."""
        tracer = telem.tracer
        metrics = telem.metrics
        total = sum(d.events_executed for d in self.domains)
        wall = end_s - start_s
        if tracer is not None:
            cursor_us = (start_s - tracer._t0) * 1e6
            for domain in self.domains:
                if domain.events_executed == 0:
                    continue
                share_us = (wall * 1e6 * domain.events_executed / total
                            if total else 0.0)
                tracer.complete(
                    "domain%d" % domain.domain_id, "weave", cursor_us,
                    share_us, TID_DOMAIN + domain.domain_id,
                    {"interval": self.stats.intervals,
                     "events": domain.events_executed,
                     "crossings": domain.crossings,
                     "requeues": domain.crossing_requeues})
                cursor_us += share_us
        if metrics is not None:
            metrics.histogram("weave.events_per_interval").record(
                num_events)
            for domain in self.domains:
                metrics.histogram("weave.domain_queue_events").record(
                    domain.events_executed)
                metrics.histogram("weave.domain_crossings").record(
                    domain.crossings)
            metrics.inc("weave.intervals")
            metrics.inc("weave.events", num_events)

    # ------------------------------------------------------------------

    def _build_events(self, traces):
        pool = self.pool
        events = []
        last_resp = {}
        for core_id, trace in traces.items():
            if not trace:
                continue
            core_weave = self.core_weaves[core_id]
            mlp = self.mlp_window.get(core_id, 1)
            resp_history = []
            for issue_cycle, result in trace:
                req = pool.alloc(core_weave, "REQ", result.line,
                                 issue_cycle, 0, core_id)
                events.append(req)
                if len(resp_history) >= mlp:
                    resp_history[-mlp].link(req)
                prev = req
                for comp, offset, kind in result.steps:
                    ev = pool.alloc(comp, kind, result.line,
                                    issue_cycle + offset,
                                    comp.zero_load_service(kind), core_id)
                    events.append(ev)
                    prev.link(ev)
                    prev = ev
                resp = pool.alloc(core_weave, "RESP", result.line,
                                  issue_cycle + result.latency, 0, core_id)
                resp.is_response = True
                events.append(resp)
                prev.link(resp)
                anchor = events[-len(result.steps) - 1] if result.steps \
                    else req
                for comp, offset, kind in result.wbacks:
                    wb = pool.alloc(comp, kind, result.line,
                                    issue_cycle + offset,
                                    comp.zero_load_service(kind), core_id)
                    events.append(wb)
                    anchor.link(wb)
                resp_history.append(resp)
                if len(resp_history) > mlp + 64:
                    del resp_history[:32]
                last_resp[core_id] = resp
        return events, last_resp

    # ------------------------------------------------------------------

    def _execute(self, events):
        """Reference execution: seed the domain queues, then drain
        earliest-first.  Backends may replace the drain (via the
        ``executor`` hook of :meth:`run_interval`) but reuse
        :meth:`seed_queues`."""
        self.seed_queues(events)
        self._drain_earliest_first()

    def seed_queues(self, events):
        """Enqueue root events (no pending parents) into their domains.

        With the crossing-dependency optimization disabled (ablation:
        premature synchronization), every non-root event whose incoming
        edge crosses domains additionally gets an eager
        :class:`_Crossing` probe from the child's side — the delivery
        itself still comes from the parent when it finishes."""
        domains = self.domains
        for event in events:
            if event.parents_left == 0:
                domains[event.domain].push(event.min_cycle, event)
        if not self.crossing_deps:
            for event in events:
                for child, gap in event.children:
                    if child.domain != event.domain:
                        probe = _Crossing(event, gap)
                        domains[child.domain].push(child.min_cycle, probe)

    def _drain_earliest_first(self):
        """Always advance the domain with the earliest pending event —
        a deterministic, conservative emulation of zsim's
        thread-per-domain execution (see module docs)."""
        domains = self.domains
        while True:
            best = None
            best_cycle = None
            for domain in domains:
                head = domain.head_cycle()
                if head is not None and (best_cycle is None
                                         or head < best_cycle):
                    best_cycle = head
                    best = domain
            if best is None:
                break
            cycle, item = best.pop()
            if isinstance(item, _Crossing):
                self._run_crossing(best, cycle, item)
            else:
                self._run_event(best, cycle, item)

    def _run_event(self, domain, cycle, event):
        start = cycle if cycle >= event.ready else event.ready
        event.done = event.component.occupy(start, event.kind, event.line)
        domain.events_executed += 1
        if self.journal is not None:
            self.journal.append((event.component.name, event.kind,
                                 event.min_cycle, start, event.done,
                                 event.core_id))
        for child, gap in event.children:
            child.parents_left -= 1
            candidate = event.done + gap
            if candidate > child.ready:
                child.ready = candidate
            if child.parents_left == 0:
                target = self.domains[child.domain]
                if child.domain != event.domain:
                    target.crossings += 1
                enqueue_at = child.ready if child.ready > child.min_cycle \
                    else child.min_cycle
                target.push(enqueue_at, child)

    def _run_crossing(self, domain, cycle, crossing):
        parent = crossing.parent
        if parent.done is not None:
            return  # parent finished; the real delivery already happened
        # Premature synchronization: requeue at the parent domain's
        # current cycle plus the parent->child delay (Section 3.2.2).
        parent_domain = self.domains[parent.domain]
        requeue = max(cycle + 1,
                      parent_domain.current_cycle + max(1, crossing.gap))
        domain.crossing_requeues += 1
        domain.push(requeue, crossing)

    # ------------------------------------------------------------------

    def reset(self):
        for comp in self.components:
            comp.reset()
        for core_weave in self.core_weaves:
            core_weave.reset()
        self.stats = WeaveStats()
