"""The weave phase: parallel event-driven simulation of bound traces.

Takes the per-core traces recorded in the bound phase (accesses that
escaped the private cache levels, each with its chain of component visits
at zero-load offsets) and replays them through the weave timing models in
full order, computing the contention delays the bound phase ignored.

Event-graph construction follows Figure 4: per access, a core request
event, one event per component visited, and a core response event, all
serially linked.  Consecutive accesses of one core are chained through an
MLP window: access *i* cannot issue before the response of access
*i - mlp*, which serializes blocking (IPC1) cores and preserves overlap
for OOO cores.  Writebacks hang off the chain as side events.

Domains execute cooperatively: the engine always advances the domain with
the earliest pending event — a deterministic, conservative emulation of
zsim's one-thread-per-domain execution.  Cross-domain dependencies are
tracked as domain-crossing events with requeue accounting, including the
paper's crossing-dependency optimization (and its ablation).
"""

from __future__ import annotations

import heapq
import time

from repro.core.events import EventPool, WeaveEvent
from repro.core.domains import CoreWeave, assign_domains
from repro.errors import HorizonViolation
from repro.obs.tracer import TID_DOMAIN


class _Crossing:
    """Premature-synchronization probe for a cross-domain edge (only
    materialized when the crossing-dependency optimization is off)."""

    __slots__ = ("parent", "gap")

    def __init__(self, parent, gap):
        self.parent = parent
        self.gap = gap


class WeaveStats:
    """Aggregate weave-phase statistics."""

    def __init__(self):
        self.intervals = 0
        self.events = 0
        self.crossings = 0
        self.crossing_requeues = 0
        self.total_delay = 0

    def __repr__(self):
        return ("WeaveStats(intervals=%d, events=%d, crossings=%d, "
                "requeues=%d, delay=%d)"
                % (self.intervals, self.events, self.crossings,
                   self.crossing_requeues, self.total_delay))


class WeaveEngine:
    """Builds and executes the weave-phase event graph per interval."""

    def __init__(self, core_weaves, components, num_tiles, num_domains=0,
                 crossing_deps=True, mlp_window=None, journal=None,
                 telemetry=None):
        self.core_weaves = core_weaves
        self.components = list(components)
        self.crossing_deps = crossing_deps
        #: Per-core MLP window: how many accesses may overlap.
        self.mlp_window = mlp_window or {}
        self.domains = assign_domains(
            list(core_weaves) + self.components, num_tiles, num_domains)
        self.pool = EventPool()
        self.stats = WeaveStats()
        #: (component, kind) -> zero-load service cycles.  Service times
        #: are pure per key, so one call each is enough for the run.
        self._svc_cache = {}
        self._telem = telemetry
        #: Optional list collecting (component, kind, min_cycle, start,
        #: done, core_id) per executed event — the Figure 4 trace, for
        #: debugging and structural tests.
        self.journal = journal
        #: Per-domain executed-event counts of the last interval, for the
        #: host-parallelism model.
        self.last_interval_domain_events = [0] * len(self.domains)

    # ------------------------------------------------------------------

    def run_interval(self, traces, executor=None):
        """Simulate one interval.  ``traces`` maps core_id -> list of
        (issue_cycle, AccessResult).  Returns {core_id: delay}.

        ``executor`` — a callable taking the built event list — replaces
        *how* the event graph executes (an execution backend's parallel
        drain); ``None`` uses the engine's earliest-first reference
        executor.  Any executor must produce the same per-component
        ``occupy`` order as the reference, which is the order simulated
        timing depends on."""
        self.stats.intervals += 1
        telem = self._telem
        start = time.perf_counter() if telem is not None else 0.0
        for domain in self.domains:
            domain.reset_interval_stats()
        events, last_resp = self._build_events(traces)
        if events:
            if executor is None:
                self._execute(events)
            else:
                executor(events)
        delays = {}
        for core_id, resp in last_resp.items():
            delay = (resp.done or resp.min_cycle) - resp.min_cycle
            delays[core_id] = max(0, delay)
            self.stats.total_delay += delays[core_id]
        self.last_interval_domain_events = [
            d.events_executed for d in self.domains]
        for domain in self.domains:
            self.stats.events += domain.events_executed
            self.stats.crossings += domain.crossings
            self.stats.crossing_requeues += domain.crossing_requeues
        self.pool.free_all(events)
        if telem is not None:
            self._record_interval_telemetry(telem, start,
                                            time.perf_counter(),
                                            len(events))
        return delays

    def attach_telemetry(self, telemetry):
        self._telem = telemetry

    def _record_interval_telemetry(self, telem, start_s, end_s,
                                   num_events):
        """Per-domain spans and queue/crossing histograms for one
        interval.  Domains execute cooperatively (interleaved on one host
        thread), so each domain's span is the interval's weave wall time
        apportioned by its share of executed events — the same model the
        host-parallelism estimate uses."""
        tracer = telem.tracer
        metrics = telem.metrics
        total = sum(d.events_executed for d in self.domains)
        wall = end_s - start_s
        if tracer is not None:
            cursor_us = (start_s - tracer._t0) * 1e6
            for domain in self.domains:
                if domain.events_executed == 0:
                    continue
                share_us = (wall * 1e6 * domain.events_executed / total
                            if total else 0.0)
                tracer.complete(
                    "domain%d" % domain.domain_id, "weave", cursor_us,
                    share_us, TID_DOMAIN + domain.domain_id,
                    {"interval": self.stats.intervals,
                     "events": domain.events_executed,
                     "crossings": domain.crossings,
                     "requeues": domain.crossing_requeues})
                cursor_us += share_us
        if metrics is not None:
            metrics.histogram("weave.events_per_interval").record(
                num_events)
            for domain in self.domains:
                metrics.histogram("weave.domain_queue_events").record(
                    domain.events_executed)
                metrics.histogram("weave.domain_crossings").record(
                    domain.crossings)
            metrics.inc("weave.intervals")
            metrics.inc("weave.events", num_events)

    # ------------------------------------------------------------------

    def _build_events(self, traces):
        # Allocation and linking are inlined (the slab pop, the reset,
        # and the gap arithmetic of WeaveEvent.link) — this runs once per
        # traced access per interval and the call overhead dominates the
        # work.  Chain/resp/wback events always have exactly one parent,
        # so their parents_left is assigned, not incremented; only REQ
        # events can pick up a second (MLP-window) edge.
        pool = self.pool
        free_list = pool._free
        svc_cache = self.__dict__.get("_svc_cache")
        if svc_cache is None:  # engine restored from an older capsule
            svc_cache = self._svc_cache = {}
        svc_get = svc_cache.get
        events = []
        events_append = events.append
        last_resp = {}
        mlp_get = self.mlp_window.get
        core_weaves = self.core_weaves
        for core_id, trace in traces.items():
            if not trace:
                continue
            core_weave = core_weaves[core_id]
            mlp = mlp_get(core_id, 1)
            resp_history = []
            resp_append = resp_history.append
            for issue_cycle, result in trace:
                line = result.line
                if free_list:
                    pool.recycled += 1
                    req = free_list.pop()
                else:
                    pool.allocated += 1
                    req = WeaveEvent()
                # WeaveEvent.reset, inlined at each allocation site
                # below: plain field stores, children left alone (the
                # pool cleared them on free).
                req.component = core_weave
                req.kind = "REQ"
                req.line = line
                req.min_cycle = issue_cycle
                req.service = 0
                req.core_id = core_id
                req.parents_left = 0
                req.ready = issue_cycle
                req.done = None
                req.is_response = False
                events_append(req)
                if len(resp_history) >= mlp:
                    parent = resp_history[-mlp]
                    gap = issue_cycle - parent.min_cycle - parent.service
                    parent.children.append((req, gap if gap > 0 else 0))
                    req.parents_left += 1
                prev = req
                prev_base = issue_cycle    # prev.min_cycle + prev.service
                steps = result.steps
                for comp, offset, kind in steps:
                    min_cycle = issue_cycle + offset
                    service = svc_get((comp, kind))
                    if service is None:
                        service = svc_cache[(comp, kind)] = \
                            comp.zero_load_service(kind)
                    if free_list:
                        pool.recycled += 1
                        ev = free_list.pop()
                    else:
                        pool.allocated += 1
                        ev = WeaveEvent()
                    ev.component = comp
                    ev.kind = kind
                    ev.line = line
                    ev.min_cycle = min_cycle
                    ev.service = service
                    ev.core_id = core_id
                    ev.ready = min_cycle
                    ev.done = None
                    ev.is_response = False
                    events_append(ev)
                    gap = min_cycle - prev_base
                    prev.children.append((ev, gap if gap > 0 else 0))
                    ev.parents_left = 1
                    prev = ev
                    prev_base = min_cycle + service
                resp_cycle = issue_cycle + result.latency
                if free_list:
                    pool.recycled += 1
                    resp = free_list.pop()
                else:
                    pool.allocated += 1
                    resp = WeaveEvent()
                resp.component = core_weave
                resp.kind = "RESP"
                resp.line = line
                resp.min_cycle = resp_cycle
                resp.service = 0
                resp.core_id = core_id
                resp.ready = resp_cycle
                resp.done = None
                resp.is_response = True
                events_append(resp)
                gap = resp_cycle - prev_base
                prev.children.append((resp, gap if gap > 0 else 0))
                resp.parents_left = 1
                anchor = events[-len(steps) - 1] if steps else req
                anchor_base = anchor.min_cycle + anchor.service
                for comp, offset, kind in result.wbacks:
                    min_cycle = issue_cycle + offset
                    if free_list:
                        pool.recycled += 1
                        wb = free_list.pop()
                    else:
                        pool.allocated += 1
                        wb = WeaveEvent()
                    service = svc_get((comp, kind))
                    if service is None:
                        service = svc_cache[(comp, kind)] = \
                            comp.zero_load_service(kind)
                    wb.component = comp
                    wb.kind = kind
                    wb.line = line
                    wb.min_cycle = min_cycle
                    wb.service = service
                    wb.core_id = core_id
                    wb.ready = min_cycle
                    wb.done = None
                    wb.is_response = False
                    events_append(wb)
                    gap = min_cycle - anchor_base
                    anchor.children.append((wb, gap if gap > 0 else 0))
                    wb.parents_left = 1
                resp_append(resp)
                if len(resp_history) > mlp + 64:
                    del resp_history[:32]
            last_resp[core_id] = resp
        return events, last_resp

    # ------------------------------------------------------------------

    def _execute(self, events):
        """Reference execution: seed the domain queues, then drain
        earliest-first.  Backends may replace the drain (via the
        ``executor`` hook of :meth:`run_interval`) but reuse
        :meth:`seed_queues`.

        The single-domain case inlines the seeding as well: every event
        lands in domain 0 with the same incrementing-seq heap entries
        :meth:`Domain.push` would build, skipping the per-event
        ``domain`` property and push call."""
        domains = self.domains
        if len(domains) == 1 and self.journal is None:
            domain = domains[0]
            queue = domain._queue
            seq = domain._seq
            heappush = heapq.heappush
            for event in events:
                if event.parents_left == 0:
                    seq += 1
                    heappush(queue, (event.min_cycle, seq, event))
            domain._seq = seq
            self._drain_single(domain)
            return
        self.seed_queues(events)
        self._drain_earliest_first()

    def seed_queues(self, events):
        """Enqueue root events (no pending parents) into their domains.

        With the crossing-dependency optimization disabled (ablation:
        premature synchronization), every non-root event whose incoming
        edge crosses domains additionally gets an eager
        :class:`_Crossing` probe from the child's side — the delivery
        itself still comes from the parent when it finishes."""
        domains = self.domains
        for event in events:
            if event.parents_left == 0:
                domains[event.domain].push(event.min_cycle, event)
        if not self.crossing_deps:
            for event in events:
                for child, gap in event.children:
                    if child.domain != event.domain:
                        probe = _Crossing(event, gap)
                        domains[child.domain].push(child.min_cycle, probe)

    def _drain_earliest_first(self):
        """Always advance the domain with the earliest pending event —
        a deterministic, conservative emulation of zsim's
        thread-per-domain execution (see module docs)."""
        domains = self.domains
        if len(domains) == 1 and self.journal is None:
            # With one domain there is nothing to arbitrate between and
            # no edge can cross domains (so no crossings and, even with
            # the optimization ablated, no probes): the generic scan
            # collapses to a plain heap drain.
            self._drain_single(domains[0])
            return
        while True:
            best = None
            best_cycle = None
            for domain in domains:
                head = domain.head_cycle()
                if head is not None and (best_cycle is None
                                         or head < best_cycle):
                    best_cycle = head
                    best = domain
            if best is None:
                break
            cycle, item = best.pop()
            if isinstance(item, _Crossing):
                self._run_crossing(best, cycle, item)
            else:
                self._run_event(best, cycle, item)

    def _drain_single(self, domain):
        """Inlined drain for the single-domain case: identical pop order
        ((cycle, seq) heap discipline), identical per-component ``occupy``
        order, and the same horizon-floor invariant as
        :meth:`Domain.pop` + :meth:`_run_event`, with the queue and
        bookkeeping held in locals.  Domain counters are written back on
        every exit so an aborted interval still reports honestly."""
        queue = domain._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        floor = domain._pop_floor
        seq = domain._seq
        executed = 0
        try:
            while queue:
                cycle, _s, event = heappop(queue)
                if floor is not None and cycle < floor:
                    raise HorizonViolation(
                        "domain %d popped an event at cycle %d below its "
                        "interval floor %d: corrupt event timestamp or "
                        "broken horizon discipline"
                        % (domain.domain_id, cycle, floor),
                        cycle=cycle, floor=floor, phase="weave",
                        domain=domain.domain_id)
                floor = cycle
                start = event.ready
                if cycle > start:
                    start = cycle
                comp = event.component
                if type(comp) is CoreWeave:
                    # CoreWeave.occupy, inlined: REQ/RESP events (about
                    # half of all events) have no occupancy state.
                    comp.events_executed += 1
                    done = start
                else:
                    done = comp.occupy(start, event.kind, event.line)
                event.done = done
                executed += 1
                for child, gap in event.children:
                    left = child.parents_left - 1
                    child.parents_left = left
                    candidate = done + gap
                    if candidate > child.ready:
                        child.ready = candidate
                    if left == 0:
                        ready = child.ready
                        min_cycle = child.min_cycle
                        seq += 1
                        heappush(queue,
                                 (ready if ready > min_cycle
                                  else min_cycle, seq, child))
        finally:
            domain._pop_floor = floor
            domain._seq = seq
            domain.events_executed += executed
            if floor is not None and floor > domain.current_cycle:
                domain.current_cycle = floor

    def _run_event(self, domain, cycle, event):
        start = cycle if cycle >= event.ready else event.ready
        event.done = event.component.occupy(start, event.kind, event.line)
        domain.events_executed += 1
        if self.journal is not None:
            self.journal.append((event.component.name, event.kind,
                                 event.min_cycle, start, event.done,
                                 event.core_id))
        for child, gap in event.children:
            child.parents_left -= 1
            candidate = event.done + gap
            if candidate > child.ready:
                child.ready = candidate
            if child.parents_left == 0:
                target = self.domains[child.domain]
                if child.domain != event.domain:
                    target.crossings += 1
                enqueue_at = child.ready if child.ready > child.min_cycle \
                    else child.min_cycle
                target.push(enqueue_at, child)

    def _run_crossing(self, domain, cycle, crossing):
        parent = crossing.parent
        if parent.done is not None:
            return  # parent finished; the real delivery already happened
        # Premature synchronization: requeue at the parent domain's
        # current cycle plus the parent->child delay (Section 3.2.2).
        parent_domain = self.domains[parent.domain]
        requeue = max(cycle + 1,
                      parent_domain.current_cycle + max(1, crossing.gap))
        domain.crossing_requeues += 1
        domain.push(requeue, crossing)

    # ------------------------------------------------------------------

    def reset(self):
        for comp in self.components:
            comp.reset()
        for core_weave in self.core_weaves:
            core_weave.reset()
        self.stats = WeaveStats()
