"""Path-altering interference profiler (the paper's Figure 2 machinery).

Two concurrent accesses suffer *path-altering* interference if simulating
them out of order changes their paths through the memory hierarchy —
same-line accesses (unless both are read hits), or an out-of-order access
evicting the other's line.  The bound phase only reorders accesses within
one interval, so interference is a function of the interval length.

The profiler tracks two counts per interval length of interest:

* ``interfering`` — accesses with *potential* path-altering interference:
  another core touched the same line in the same window and the pair is
  not two read hits.  This is what Figure 2 plots: it upper-bounds the
  error any wake-up order could introduce, and grows with the window.
* ``reordered`` — accesses *actually simulated out of order* (an
  earlier-simulated same-line access has a later bound cycle).  This is
  the runtime profile zsim uses: "we also profile accesses with
  path-altering interference that are incorrectly reordered.  If this
  count is not negligible, we select a shorter interval."

The hierarchy calls :meth:`record` on every access in simulation order;
several interval lengths can be profiled in one run.  With
``track_evictions=True`` the second interference class — an access whose
shared-cache fill evicts a line another core touched in the window — is
profiled too; the paper measures it to be negligible except for shared
caches with 1-2 ways, which the tests reproduce.
"""

from __future__ import annotations


class InterferenceProfiler:
    """Counts path-altering interference per candidate interval length."""

    def __init__(self, interval_lengths=(1_000, 10_000, 100_000),
                 track_evictions=False):
        self.interval_lengths = tuple(sorted(interval_lengths))
        self.track_evictions = track_evictions
        self.total_accesses = 0
        self.interfering = {n: 0 for n in self.interval_lengths}
        self.reordered = {n: 0 for n in self.interval_lengths}
        #: Eviction-driven path-altering interference: an access whose
        #: shared-cache fill evicted a line another core touched in the
        #: same window (the paper: "extremely rare unless we use shared
        #: caches with unrealistically low associativity").
        self.eviction_interfering = {n: 0 for n in self.interval_lengths}
        # Per interval length: ({line: [(bound_cycle, core, read_hit)]},
        # current interval index).
        self._state = {n: ({}, -1) for n in self.interval_lengths}

    def record(self, result, cycle):
        """Register one access (simulation order) at bound cycle
        ``cycle``."""
        self.total_accesses += 1
        pure_read_hit = (not result.write
                         and not result.missed_levels
                         and result.invalidations == 0)
        line = result.line
        core = result.core_id
        evictions = (result.shared_evictions
                     if self.track_evictions else ())
        for length in self.interval_lengths:
            lines, current = self._state[length]
            interval = cycle // length
            if interval != current:
                lines = {}
                self._state[length] = (lines, interval)
            if evictions:
                for victim in evictions:
                    victim_history = lines.get(victim)
                    if victim_history and any(
                            prev_core != core
                            for _c, prev_core, _p in victim_history):
                        self.eviction_interfering[length] += 1
                        break
            history = lines.get(line)
            if history is None:
                lines[line] = [(cycle, core, pure_read_hit)]
                continue
            interferes = False
            out_of_order = False
            for prev_cycle, prev_core, prev_prh in history:
                if prev_core == core or (prev_prh and pure_read_hit):
                    continue
                interferes = True
                if prev_cycle > cycle:
                    out_of_order = True
                    break
            if interferes:
                self.interfering[length] += 1
            if out_of_order:
                self.reordered[length] += 1
            history.append((cycle, core, pure_read_hit))

    def fraction(self, interval_length):
        """Fraction of accesses with potential path-altering
        interference (the Figure 2 metric)."""
        if self.total_accesses == 0:
            return 0.0
        return self.interfering[interval_length] / self.total_accesses

    def reordered_fraction(self, interval_length):
        """Fraction actually simulated out of order (zsim's runtime
        interval-length check)."""
        if self.total_accesses == 0:
            return 0.0
        return self.reordered[interval_length] / self.total_accesses

    def fractions(self):
        return {n: self.fraction(n) for n in self.interval_lengths}

    def eviction_fraction(self, interval_length):
        """Fraction of accesses whose shared-cache eviction interferes
        (requires ``track_evictions=True``)."""
        if self.total_accesses == 0:
            return 0.0
        return (self.eviction_interfering[interval_length]
                / self.total_accesses)

    def reset(self):
        self.total_accesses = 0
        self.interfering = {n: 0 for n in self.interval_lengths}
        self.reordered = {n: 0 for n in self.interval_lengths}
        self.eviction_interfering = {n: 0
                                     for n in self.interval_lengths}
        self._state = {n: ({}, -1) for n in self.interval_lengths}
