"""Host-parallelism model for the deterministic execution.

Python's GIL makes wall-clock thread scaling meaningless, so bound and
weave phases execute cooperatively and this model answers Figure 8's
question — how would the run scale with host threads? — from measured
work: per-interval per-core bound-phase times (in barrier wake-up order)
and per-domain weave-phase event counts.

Parallel time for H host threads follows the barrier's moderation policy
exactly: the first H cores start; each finishing core wakes the next in
wake-up order; the interval ends at the makespan.  The weave phase is
scheduled the same way over domains.  This is a *model of the algorithm's
parallelism*, not of a specific host's memory system (see DESIGN.md).
"""

from __future__ import annotations

import heapq


def makespan(work_items, workers):
    """Makespan of scheduling ``work_items`` (in wake order) onto
    ``workers`` identical workers, each finishing item waking the next."""
    if not work_items:
        return 0.0
    if workers <= 1:
        return sum(work_items)
    free = [0.0] * min(workers, len(work_items))
    for item in work_items:
        start = heapq.heappop(free)
        heapq.heappush(free, start + item)
    return max(free)


class HostModel:
    """Accumulates per-interval work and models speedup vs host threads."""

    DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)

    def __init__(self, host_threads=DEFAULT_THREADS):
        self.host_threads = tuple(host_threads)
        self.bound_serial = 0.0
        self.weave_serial = 0.0
        self.other_serial = 0.0
        self._bound_parallel = {h: 0.0 for h in self.host_threads}
        self._weave_parallel = {h: 0.0 for h in self.host_threads}
        self.intervals = 0
        #: Wall time actually spent per interval by the execution
        #: backend (measured makespans, reported next to the modeled
        #: ones) and which backend produced it.
        self.measured_wall = 0.0
        self.backend_name = None

    def record_interval(self, bound_times, weave_domain_events,
                        weave_seconds, other_seconds=0.0,
                        measured_seconds=None):
        """``bound_times``: [(core_id, seconds)] in wake order.
        ``weave_domain_events``: executed events per domain.
        ``weave_seconds``: measured wall time of the weave phase.
        ``measured_seconds``: the interval's actual wall time under the
        active execution backend (bound + weave makespan as executed,
        including handoff overhead)."""
        self.intervals += 1
        if measured_seconds is not None:
            self.measured_wall += measured_seconds
        times = [t for _cid, t in bound_times]
        self.bound_serial += sum(times)
        self.weave_serial += weave_seconds
        self.other_serial += other_seconds
        total_events = sum(weave_domain_events)
        if total_events > 0:
            per_event = weave_seconds / total_events
            domain_times = [n * per_event for n in weave_domain_events
                            if n > 0]
        else:
            domain_times = []
        for h in self.host_threads:
            self._bound_parallel[h] += makespan(times, h)
            self._weave_parallel[h] += makespan(domain_times, h)

    def serial_time(self):
        return self.bound_serial + self.weave_serial + self.other_serial

    def parallel_time(self, host_threads):
        """Modeled wall time with ``host_threads`` workers."""
        if host_threads not in self._bound_parallel:
            raise KeyError("host thread count %d was not tracked"
                           % host_threads)
        return (self._bound_parallel[host_threads]
                + self._weave_parallel[host_threads]
                + self.other_serial)

    def speedup(self, host_threads):
        par = self.parallel_time(host_threads)
        if par <= 0:
            return 1.0
        return self.serial_time() / par

    def speedup_curve(self):
        return [(h, self.speedup(h)) for h in self.host_threads]

    # The paper's stated future work: "we will pipeline the bound and
    # weave phases".  With pipelining, interval k's weave overlaps
    # interval k+1's bound, so steady-state wall time per interval is
    # max(bound, weave) instead of their sum.
    def pipelined_parallel_time(self, host_threads):
        if host_threads not in self._bound_parallel:
            raise KeyError("host thread count %d was not tracked"
                           % host_threads)
        return (max(self._bound_parallel[host_threads],
                    self._weave_parallel[host_threads])
                + self.other_serial)

    def pipelined_speedup(self, host_threads):
        par = self.pipelined_parallel_time(host_threads)
        if par <= 0:
            return 1.0
        return self.serial_time() / par

    # Measured makespans: what the active execution backend actually
    # achieved, reported next to the modeled curves so measured-vs-
    # modeled gaps (e.g. the GIL) are visible in one stats tree.
    def measured_speedup(self):
        """Measured speedup of the active backend over the serial work
        time (sum of per-core bound times + weave wall): ~1x for the
        serial backend, >1x only when the backend achieves real
        overlap."""
        if self.measured_wall <= 0:
            return 1.0
        return self.serial_time() / self.measured_wall

    def fill_stats(self, node):
        """Dump the measured phase costs, measured backend makespan, and
        modeled speedup curves into a :class:`~repro.stats.StatsNode`
        (Figure 8's raw material)."""
        node.set("intervals", self.intervals)
        node.set("backend", self.backend_name or "serial")
        node.set("bound_serial_seconds", self.bound_serial)
        node.set("weave_serial_seconds", self.weave_serial)
        node.set("other_serial_seconds", self.other_serial)
        node.set("measured_wall_seconds", self.measured_wall)
        node.set("measured_speedup", self.measured_speedup())
        speedup = node.child("speedup")
        pipelined = node.child("pipelined_speedup")
        for h in self.host_threads:
            speedup.set("x%d" % h, self.speedup(h))
            pipelined.set("x%d" % h, self.pipelined_speedup(h))
