"""MESI coherence state definitions and invariant helpers."""

from __future__ import annotations


class MESI:
    """MESI line states.  ``I`` is represented by absence from the array
    in most of the code; the constant exists for reporting."""

    I = 0
    S = 1
    E = 2
    M = 3

    NAMES = {0: "I", 1: "S", 2: "E", 3: "M"}


def is_exclusive(state):
    """True if the state grants write permission without upgrade."""
    return state in (MESI.E, MESI.M)


def check_single_writer(states):
    """Invariant check: at most one copy in M/E, and if one exists there
    are no S copies.  ``states`` is an iterable of MESI states of all the
    copies of one line at one level.  Returns True when legal."""
    states = [s for s in states if s != MESI.I]
    exclusive = sum(1 for s in states if is_exclusive(s))
    if exclusive > 1:
        return False
    if exclusive == 1 and len(states) > 1:
        return False
    return True
