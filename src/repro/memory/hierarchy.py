"""Memory hierarchy builder: wires cores, caches, NoC, and controllers.

Builds the arbitrarily configurable hierarchies the paper supports from a
:class:`~repro.config.SystemConfig`: per-core split L1s, an optional
private-per-core or shared-per-tile L2, a banked fully-shared inclusive
L3, a zero-load NoC, and per-tile memory controllers.  Shared levels get
weave timing models; private levels are bound-phase only (contention in
private levels is predominantly due to the core itself, Section 3.2.1).
"""

from __future__ import annotations

from repro.memory.access import AccessContext, AccessResult
from repro.memory.cache import Cache, MainMemory
from repro.memory.coherence import MESI
from repro.memory.network import Network
from repro.memory.weave import CacheBankWeave, MemCtrlWeave
from repro.obs.histogram import Log2Histogram

_HASH_MULT = 0x9E3779B1

_MESI_E = MESI.E
_MESI_M = MESI.M

#: Upper bound on pooled AccessResults; beyond this, recycled results are
#: simply dropped to the GC (an interval with a pathological miss storm
#: must not pin memory forever).
_RESULT_POOL_CAP = 4096


def hash_line(line):
    """Cheap address hash used to spread lines across banks (Table 2's
    "hashed" shared L3)."""
    return ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8


class MemoryHierarchy:
    """The full memory system for one simulated chip."""

    def __init__(self, config, build_weave=True, profiler=None,
                 telemetry=None):
        config.validate()
        self.config = config
        self.profiler = profiler
        #: Zero-load latency distribution of every access (log-2
        #: buckets); always on — recording is one list increment — and
        #: dumped as the ``access_latency`` histogram in fill_stats.
        self.access_latency = Log2Histogram("access_latency")
        self._metrics_latency = None
        self.attach_telemetry(telemetry)
        self.line_bits = config.l1d.line_bytes.bit_length() - 1
        num_tiles = config.num_tiles
        num_cores = config.num_cores
        self.network = Network(config.network, num_tiles)
        self.mainmem = MainMemory(config.memory, self.network, num_tiles)
        self.weave_components = []

        # Optional weave-phase NoC (the paper's future work, see
        # repro.memory.noc_weave): one route component per tile pair.
        self.noc_fabric = None
        self.noc_routes = None
        if build_weave and config.network.weave_model \
                and config.network.topology != "ideal" and num_tiles > 1:
            from repro.memory.noc_weave import NocFabric, NocRouteWeave
            self.noc_fabric = NocFabric(self.network, num_tiles,
                                        config.network.link_occupancy)
            self.noc_routes = {}
            for src in range(num_tiles):
                for dst in range(num_tiles):
                    if src != dst:
                        route = NocRouteWeave(self.noc_fabric, src, dst)
                        self.noc_routes[(src, dst)] = route
                        self.weave_components.append(route)
            self.mainmem.noc_routes = self.noc_routes

        if build_weave:
            for ctrl in range(config.memory.controllers):
                weave = MemCtrlWeave("memctrl%d" % ctrl, config.memory,
                                     config.core.freq_mhz,
                                     tile=self.mainmem.controller_tile(ctrl))
                self.mainmem.ctrl_weaves[ctrl] = weave
                self.weave_components.append(weave)

        # --- L3: banked, fully shared, inclusive ----------------------
        self.l3_banks = []
        if config.l3 is not None:
            l3 = config.l3
            for bank in range(l3.banks):
                cache = Cache("l3b%d" % bank, "l3", l3.num_sets, l3.ways,
                              l3.latency, repl=l3.repl,
                              tile=bank % num_tiles, seed=bank,
                              hash_sets=l3.hash_sets)
                cache.down_latency = (self.network.round_trip(0, 0)
                                      + config.l1d.latency)
                if build_weave:
                    weave = CacheBankWeave(
                        cache.name, l3.latency, ports=l3.ports,
                        mshrs=l3.mshrs,
                        miss_hold_cycles=config.memory.zero_load_latency,
                        tile=cache.tile)
                    cache.weave = weave
                    self.weave_components.append(weave)
                self.l3_banks.append(cache)

        # --- L2: private per core, or shared per tile -----------------
        self.l2s = []
        if config.l2 is not None:
            l2 = config.l2
            count = num_tiles if config.l2_shared_per_tile else num_cores
            for idx in range(count):
                tile = idx if config.l2_shared_per_tile \
                    else config.core_tile(idx)
                cache = Cache("l2-%d" % idx, "l2", l2.num_sets, l2.ways,
                              l2.latency, repl=l2.repl, tile=tile,
                              seed=1000 + idx, hash_sets=l2.hash_sets)
                cache.down_latency = config.l1d.latency
                cache.noc_routes = self.noc_routes
                if build_weave and config.l2_shared_per_tile:
                    weave = CacheBankWeave(
                        cache.name, l2.latency, ports=l2.ports,
                        mshrs=l2.mshrs,
                        miss_hold_cycles=config.memory.zero_load_latency,
                        tile=tile)
                    cache.weave = weave
                    self.weave_components.append(weave)
                self.l2s.append(cache)

        # --- L1s: per core, split I/D ---------------------------------
        # --- L2 stride prefetchers (one per core) ----------------------
        self.prefetchers = []
        if config.l2 is not None and config.l2.prefetch_degree > 0:
            from repro.memory.prefetcher import StridePrefetcher
            self.prefetchers = [
                StridePrefetcher(config.l2.prefetch_degree)
                for _ in range(num_cores)]

        self.l1i = []
        self.l1d = []
        for core in range(num_cores):
            tile = config.core_tile(core)
            for level, cfg, caches in (("l1i", config.l1i, self.l1i),
                                       ("l1d", config.l1d, self.l1d)):
                cache = Cache("%s-%d" % (level, core), level, cfg.num_sets,
                              cfg.ways, cfg.latency, repl=cfg.repl,
                              tile=tile, seed=2000 + core,
                              hash_sets=cfg.hash_sets)
                if config.l2 is None:
                    cache.noc_routes = self.noc_routes
                caches.append(cache)

        self._wire_children()
        self._rewire_parents()

        # --- Data-plane slabs and the L1-hit fast path ----------------
        #: Tests may clear this to force every access down the full
        #: coherence walk (used to prove fast-path equivalence).  The
        #: fast path is only legal while L1s carry no weave component,
        #: which the builder guarantees (private levels are bound-phase
        #: only); recomputed here in case a config ever changes that.
        self.enable_fastpath = all(
            c.weave is None for c in self.l1i + self.l1d)
        self._ctx_pool = []
        self._result_pool = []
        self.fastpath_hits = 0
        self.slow_accesses = 0
        self.ctx_reuses = 0
        self.result_reuses = 0

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _link_to_memory(self, cache):
        mainmem = self.mainmem

        def select(line):
            return mainmem, 0  # memory adds its own network latency
        return select

    def _link_to_l3_or_mem(self, cache):
        if not self.l3_banks:
            return self._link_to_memory(cache)
        banks = self.l3_banks
        network = self.network
        hashed = self.config.l3.hash_banks
        src_tile = cache.tile

        def select(line):
            key = hash_line(line) if hashed else line
            bank = banks[key % len(banks)]
            return bank, network.latency(src_tile, bank.tile)
        return select

    def _link_l1(self, core, cache):
        if self.l2s:
            if self.config.l2_shared_per_tile:
                parent = self.l2s[self.config.core_tile(core)]
            else:
                parent = self.l2s[core]
            return lambda line: (parent, 0)
        return self._link_to_l3_or_mem(cache)

    def _rewire_parents(self):
        """(Re)install the parent-routing closures on every cache.

        The closures capture live objects (banks, the network, main
        memory), so they cannot be pickled; ``Cache.__getstate__`` drops
        them and :meth:`__setstate__` re-runs this pass after a
        checkpoint load.  Idempotent by construction."""
        for cache in self.l3_banks:
            cache.parent_select = self._link_to_memory(cache)
        for cache in self.l2s:
            cache.parent_select = self._link_to_l3_or_mem(cache)
        for core in range(self.config.num_cores):
            for cache in (self.l1i[core], self.l1d[core]):
                cache.parent_select = self._link_l1(core, cache)

    def __getstate__(self):
        """Telemetry and the profiler are host-side observers, never
        simulated state; the routing closures are rebuilt on load.  The
        recycling slabs hold only dead scratch objects, so checkpoints
        ship them empty."""
        state = self.__dict__.copy()
        state["_telem"] = None
        state["_metrics_latency"] = None
        state["profiler"] = None
        state["_ctx_pool"] = []
        state["_result_pool"] = []
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Checkpoints written by builds without the data-plane slabs
        # lack these attributes; default them rather than crash.
        d = self.__dict__
        d.setdefault("enable_fastpath", all(
            c.weave is None for c in self.l1i + self.l1d))
        d.setdefault("_ctx_pool", [])
        d.setdefault("_result_pool", [])
        d.setdefault("fastpath_hits", 0)
        d.setdefault("slow_accesses", 0)
        d.setdefault("ctx_reuses", 0)
        d.setdefault("result_reuses", 0)
        self._rewire_parents()

    def _wire_children(self):
        """Populate children lists so directories know their subtrees."""
        for cache in self.l3_banks:
            self.mainmem.children.append(cache)
        if self.l2s:
            for core in range(self.config.num_cores):
                if self.config.l2_shared_per_tile:
                    parent = self.l2s[self.config.core_tile(core)]
                else:
                    parent = self.l2s[core]
                parent.children.append(self.l1i[core])
                parent.children.append(self.l1d[core])
            uppers = self.l2s
        else:
            uppers = self.l1i + self.l1d
        target = self.l3_banks if self.l3_banks else [self.mainmem]
        for upper in uppers:
            for cache in target:
                if cache is not self.mainmem:
                    cache.children.append(upper)

    # ------------------------------------------------------------------
    # Access entry points (bound phase)
    # ------------------------------------------------------------------

    def line_of(self, addr):
        return addr >> self.line_bits

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        """One core access; returns an :class:`AccessResult` whose latency
        is the zero-load bound and whose steps feed the weave phase.

        The dominant case — a private-L1 hit with no coherence side
        effects — is served by a fast path that allocates no
        :class:`AccessContext` at all: it peeks the array, touches the
        replacement state once (exactly like the slow path's single
        ``lookup``), bumps the same counters, and fills a slab-recycled
        result.  A write hit needs the line in E or M; a write hit in S
        requires an upgrade and falls through to the coherence walk."""
        line = addr >> self.line_bits
        l1 = self.l1i[core_id] if ifetch else self.l1d[core_id]
        if self.enable_fastpath:
            array = l1.array
            # Private L1 arrays are unhashed in every shipped config;
            # inline that set-index case.
            idx = (line % array.num_sets if not array.hash_sets
                   else array.set_index(line))
            entry = array._lines[idx].get(line)
            if entry is not None and (not write or entry[1] >= _MESI_E):
                way = entry[0]
                array._repl[idx].touch(way)
                l1.accesses += 1
                l1.hits += 1
                if write:
                    array._lines[idx][line] = (way, _MESI_M)
                self.fastpath_hits += 1
                pool = self._result_pool
                if pool:
                    result = pool.pop()
                    self.result_reuses += 1
                else:
                    result = AccessResult.__new__(AccessResult)
                latency = l1.latency
                result.latency = latency
                result.missed_levels = ()
                result.hit_level = l1.level
                result.steps = ()
                result.wbacks = ()
                result.line = line
                result.write = write
                result.core_id = core_id
                result.invalidations = 0
                result.shared_evictions = ()
                self.access_latency.record(latency)
                if self._metrics_latency is not None:
                    self._metrics_latency.record(latency)
                if self.profiler is not None:
                    self.profiler.record(result, cycle)
                return result
        self.slow_accesses += 1
        ctx_pool = self._ctx_pool
        if ctx_pool:
            ctx = ctx_pool.pop()
            ctx.reset(core_id, line, write, ifetch)
            self.ctx_reuses += 1
        else:
            ctx = AccessContext(core_id, line, write, ifetch)
        l1.handle_access(line, write, None, ctx)
        if (self.prefetchers and not ifetch
                and "l1d" in ctx.missed_levels):
            self._prefetch(core_id, line, ctx)
        pool = self._result_pool
        if pool:
            result = pool.pop()
            result.refill(ctx)
            self.result_reuses += 1
        else:
            result = AccessResult(ctx)
        ctx_pool.append(ctx)
        self.access_latency.record(result.latency)
        if self._metrics_latency is not None:
            self._metrics_latency.record(result.latency)
            if result.missed_levels:
                self._telem.metrics.inc("mem.misses.%s"
                                        % result.missed_levels[-1])
        if self.profiler is not None:
            self.profiler.record(result, cycle)
        return result

    def recycle_results(self, results):
        """Return dead :class:`AccessResult` objects to the slab.

        Callers must guarantee nothing observes the objects afterwards —
        in practice the simulator hands back an interval's trace results
        once the weave phase (the last consumer) has run."""
        pool = self._result_pool
        for result in results:
            if len(pool) >= _RESULT_POOL_CAP:
                break
            pool.append(result)

    def attach_telemetry(self, telemetry):
        """Install (or detach, with None) the observability context; the
        metrics-side latency histogram is cached so the hot path pays a
        single identity check when telemetry is off."""
        self._telem = telemetry
        self._metrics_latency = (
            telemetry.metrics.histogram("mem.access_latency")
            if telemetry is not None and telemetry.metrics is not None
            else None)

    def _prefetch(self, core_id, line, ctx):
        """Train the core's stride prefetcher on the L2 access stream
        and issue fills.  Prefetch traffic is off the demand access's
        critical path; its weave events ride along as side events."""
        if self.config.l2_shared_per_tile:
            l2 = self.l2s[self.config.core_tile(core_id)]
        else:
            l2 = self.l2s[core_id]
        for pf_line in self.prefetchers[core_id].observe(line):
            pf_ctx = AccessContext(core_id, pf_line, False)
            if l2.prefetch_fill(pf_line, pf_ctx):
                for comp, offset, kind in pf_ctx.steps:
                    ctx.wbacks.append((comp, offset, kind))
                ctx.wbacks.extend(pf_ctx.wbacks)

    # ------------------------------------------------------------------
    # Stats and invariants
    # ------------------------------------------------------------------

    def all_caches(self):
        return list(self.l1i) + list(self.l1d) + list(self.l2s) \
            + list(self.l3_banks)

    def fill_stats(self, node):
        for cache in self.all_caches():
            cache.fill_stats(node.child(cache.name))
        self.mainmem.fill_stats(node.child("mem"))
        node.histogram("access_latency").merge(self.access_latency)

    def reset_weave(self):
        for comp in self.weave_components:
            comp.reset()
        if self.noc_fabric is not None:
            self.noc_fabric.reset()

    def check_inclusion(self):
        """Invariant: every line in a child is present in its parent.
        Returns a list of violations (empty when the invariant holds)."""
        violations = []
        for cache in self.all_caches():
            if cache.parent_select is None:
                continue
            for line, _state in cache.array.resident_lines():
                parent, _ = cache.parent_select(line)
                if isinstance(parent, MainMemory):
                    continue
                if parent.line_state(line) == 0:  # MESI.I
                    violations.append((cache.name, parent.name, line))
        return violations

    def check_coherence(self):
        """Invariant: single-writer — for every line present anywhere in
        the L1s, at most one L1 holds it in M/E, and if one does, no other
        L1 holds it at all.  Returns violations."""
        from repro.memory.coherence import check_single_writer
        lines = {}
        for cache in list(self.l1i) + list(self.l1d):
            for line, state in cache.array.resident_lines():
                lines.setdefault(line, []).append((cache.name, state))
        violations = []
        for line, copies in lines.items():
            # Copies in the same core's L1I/L1D are fine; group by core.
            by_core = {}
            for name, state in copies:
                core = name.split("-")[1]
                by_core.setdefault(core, []).append(state)
            states = [max(v) for v in by_core.values()]
            if not check_single_writer(states):
                violations.append((line, copies))
        return violations
