"""Memory hierarchy builder: wires cores, caches, NoC, and controllers.

Builds the arbitrarily configurable hierarchies the paper supports from a
:class:`~repro.config.SystemConfig`: per-core split L1s, an optional
private-per-core or shared-per-tile L2, a banked fully-shared inclusive
L3, a zero-load NoC, and per-tile memory controllers.  Shared levels get
weave timing models; private levels are bound-phase only (contention in
private levels is predominantly due to the core itself, Section 3.2.1).
"""

from __future__ import annotations

from repro.memory.access import AccessContext, AccessResult, StepKind
from repro.memory.cache import Cache, MainMemory
from repro.memory.coherence import MESI
from repro.memory.network import Network
from repro.memory.replacement import LRU as _LRU
from repro.memory.weave import CacheBankWeave, MemCtrlWeave
from repro.obs.histogram import Log2Histogram

_HASH_MULT = 0x9E3779B1

_MESI_S = MESI.S
_MESI_E = MESI.E
_MESI_M = MESI.M

_SK_HIT = StepKind.HIT
_SK_MISS = StepKind.MISS
_SK_READ = StepKind.READ
_SK_NOC = StepKind.NOC
_SK_WBACK = StepKind.WBACK

#: Scratch depth for the flattened walk: strictly more cache levels than
#: any buildable hierarchy has (L1 -> L2 -> L3 is the deepest).
_WALK_DEPTH = 8

#: Upper bound on pooled AccessResults; beyond this, recycled results are
#: simply dropped to the GC (an interval with a pathological miss storm
#: must not pin memory forever).
_RESULT_POOL_CAP = 4096


def hash_line(line):
    """Cheap address hash used to spread lines across banks (Table 2's
    "hashed" shared L3)."""
    return ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8


class MemoryHierarchy:
    """The full memory system for one simulated chip."""

    def __init__(self, config, build_weave=True, profiler=None,
                 telemetry=None):
        config.validate()
        self.config = config
        self.profiler = profiler
        #: Zero-load latency distribution of every access (log-2
        #: buckets); always on — recording is one list increment — and
        #: dumped as the ``access_latency`` histogram in fill_stats.
        self.access_latency = Log2Histogram("access_latency")
        self._metrics_latency = None
        self.attach_telemetry(telemetry)
        self.line_bits = config.l1d.line_bytes.bit_length() - 1
        num_tiles = config.num_tiles
        num_cores = config.num_cores
        self.network = Network(config.network, num_tiles)
        self.mainmem = MainMemory(config.memory, self.network, num_tiles)
        self.weave_components = []

        # Optional weave-phase NoC (the paper's future work, see
        # repro.memory.noc_weave): one route component per tile pair.
        self.noc_fabric = None
        self.noc_routes = None
        if build_weave and config.network.weave_model \
                and config.network.topology != "ideal" and num_tiles > 1:
            from repro.memory.noc_weave import NocFabric, NocRouteWeave
            self.noc_fabric = NocFabric(self.network, num_tiles,
                                        config.network.link_occupancy)
            self.noc_routes = {}
            for src in range(num_tiles):
                for dst in range(num_tiles):
                    if src != dst:
                        route = NocRouteWeave(self.noc_fabric, src, dst)
                        self.noc_routes[(src, dst)] = route
                        self.weave_components.append(route)
            self.mainmem.noc_routes = self.noc_routes

        if build_weave:
            for ctrl in range(config.memory.controllers):
                weave = MemCtrlWeave("memctrl%d" % ctrl, config.memory,
                                     config.core.freq_mhz,
                                     tile=self.mainmem.controller_tile(ctrl))
                self.mainmem.ctrl_weaves[ctrl] = weave
                self.weave_components.append(weave)

        # --- L3: banked, fully shared, inclusive ----------------------
        self.l3_banks = []
        if config.l3 is not None:
            l3 = config.l3
            for bank in range(l3.banks):
                cache = Cache("l3b%d" % bank, "l3", l3.num_sets, l3.ways,
                              l3.latency, repl=l3.repl,
                              tile=bank % num_tiles, seed=bank,
                              hash_sets=l3.hash_sets)
                cache.down_latency = (self.network.round_trip(0, 0)
                                      + config.l1d.latency)
                if build_weave:
                    weave = CacheBankWeave(
                        cache.name, l3.latency, ports=l3.ports,
                        mshrs=l3.mshrs,
                        miss_hold_cycles=config.memory.zero_load_latency,
                        tile=cache.tile)
                    cache.weave = weave
                    self.weave_components.append(weave)
                self.l3_banks.append(cache)

        # --- L2: private per core, or shared per tile -----------------
        self.l2s = []
        if config.l2 is not None:
            l2 = config.l2
            count = num_tiles if config.l2_shared_per_tile else num_cores
            for idx in range(count):
                tile = idx if config.l2_shared_per_tile \
                    else config.core_tile(idx)
                cache = Cache("l2-%d" % idx, "l2", l2.num_sets, l2.ways,
                              l2.latency, repl=l2.repl, tile=tile,
                              seed=1000 + idx, hash_sets=l2.hash_sets)
                cache.down_latency = config.l1d.latency
                cache.noc_routes = self.noc_routes
                if build_weave and config.l2_shared_per_tile:
                    weave = CacheBankWeave(
                        cache.name, l2.latency, ports=l2.ports,
                        mshrs=l2.mshrs,
                        miss_hold_cycles=config.memory.zero_load_latency,
                        tile=tile)
                    cache.weave = weave
                    self.weave_components.append(weave)
                self.l2s.append(cache)

        # --- L1s: per core, split I/D ---------------------------------
        # --- L2 stride prefetchers (one per core) ----------------------
        self.prefetchers = []
        if config.l2 is not None and config.l2.prefetch_degree > 0:
            from repro.memory.prefetcher import StridePrefetcher
            self.prefetchers = [
                StridePrefetcher(config.l2.prefetch_degree)
                for _ in range(num_cores)]

        self.l1i = []
        self.l1d = []
        for core in range(num_cores):
            tile = config.core_tile(core)
            for level, cfg, caches in (("l1i", config.l1i, self.l1i),
                                       ("l1d", config.l1d, self.l1d)):
                cache = Cache("%s-%d" % (level, core), level, cfg.num_sets,
                              cfg.ways, cfg.latency, repl=cfg.repl,
                              tile=tile, seed=2000 + core,
                              hash_sets=cfg.hash_sets)
                if config.l2 is None:
                    cache.noc_routes = self.noc_routes
                caches.append(cache)

        self._wire_children()
        self._rewire_parents()

        # --- Data-plane slabs and the L1-hit fast path ----------------
        #: Tests may clear this to force every access down the full
        #: coherence walk (used to prove fast-path equivalence).  The
        #: fast path is only legal while L1s carry no weave component,
        #: which the builder guarantees (private levels are bound-phase
        #: only); recomputed here in case a config ever changes that.
        self.enable_fastpath = all(
            c.weave is None for c in self.l1i + self.l1d)
        #: The one-level-down fast path (L1 miss, parent read hit with
        #: no downgrade needed; see access()).  Separately switchable so
        #: tests can prove each path invisible on its own.
        self.enable_l2_fastpath = self.enable_fastpath
        #: The flattened walk (ISSUE 10): demand accesses that leave the
        #: fast paths run in one iterative frame (_walk_access) instead
        #: of recursing through Cache.handle_access.  Tests flip this
        #: off to prove the two walks byte-identical; the recursive walk
        #: also still serves prefetch fills and subtree coherence.
        self.enable_flat_walk = True
        self._walk_caches = [None] * _WALK_DEPTH
        self._walk_idx = [0] * _WALK_DEPTH
        self._ctx_pool = []
        self._result_pool = []
        self.fastpath_hits = 0
        self.l2_fastpath_hits = 0
        self.slow_accesses = 0
        self.ctx_reuses = 0
        self.result_reuses = 0

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def _route_to_l3_or_mem(self, cache):
        """Routing-table triple for a cache whose parent level is the
        L3 (banked, per-bank net latency precomputed) or, absent an L3,
        main memory (which adds its own network latency)."""
        if not self.l3_banks:
            return (self.mainmem,), (0,), False
        banks = tuple(self.l3_banks)
        net = tuple(self.network.latency(cache.tile, bank.tile)
                    for bank in banks)
        return banks, net, self.config.l3.hash_banks

    def _rewire_parents(self):
        """(Re)install the parent routing tables on every cache.

        The tables hold references *up* the hierarchy (banks, main
        memory); ``Cache.__getstate__`` drops them to keep capsules
        cycle-free and :meth:`__setstate__` re-runs this pass after a
        checkpoint load.  Idempotent by construction.  This replaced
        the per-cache ``parent_select`` closures: the per-line bank
        arithmetic (hash mult + mask included) is inlined at the walk's
        call sites, and nothing unpickleable is installed anywhere."""
        # Controller routing tables for the flattened walk's terminal
        # level: the tile of every controller and the zero-load network
        # latency from every source tile to it (both pure functions of
        # the static topology).
        mem = self.mainmem
        num_tiles = self.config.num_tiles
        mem._num_ctrls = mem.config.controllers
        mem._zero_load = mem.config.zero_load_latency
        mem._ctrl_tiles = tuple(mem.controller_tile(ctrl)
                                for ctrl in range(mem.config.controllers))
        mem._net_to_ctrl = tuple(
            tuple(self.network.latency(src, ctrl_tile)
                  for ctrl_tile in mem._ctrl_tiles)
            for src in range(num_tiles))
        for cache in self.l3_banks:
            cache._parent_banks = (self.mainmem,)
            cache._parent_net = (0,)
            cache._parent_hashed = False
        for cache in self.l2s:
            (cache._parent_banks, cache._parent_net,
             cache._parent_hashed) = self._route_to_l3_or_mem(cache)
        for core in range(self.config.num_cores):
            for cache in (self.l1i[core], self.l1d[core]):
                if self.l2s:
                    if self.config.l2_shared_per_tile:
                        parent = self.l2s[self.config.core_tile(core)]
                    else:
                        parent = self.l2s[core]
                    cache._parent_banks = (parent,)
                    cache._parent_net = (0,)
                    cache._parent_hashed = False
                else:
                    (cache._parent_banks, cache._parent_net,
                     cache._parent_hashed) = self._route_to_l3_or_mem(cache)

    def __getstate__(self):
        """Telemetry and the profiler are host-side observers, never
        simulated state; the routing closures are rebuilt on load.  The
        recycling slabs hold only dead scratch objects, so checkpoints
        ship them empty."""
        state = self.__dict__.copy()
        state["_telem"] = None
        state["_metrics_latency"] = None
        state["profiler"] = None
        state["_ctx_pool"] = []
        state["_result_pool"] = []
        state["_walk_caches"] = [None] * _WALK_DEPTH
        state["_walk_idx"] = [0] * _WALK_DEPTH
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Checkpoints written by builds without the data-plane slabs
        # lack these attributes; default them rather than crash.
        d = self.__dict__
        d.setdefault("enable_fastpath", all(
            c.weave is None for c in self.l1i + self.l1d))
        d.setdefault("enable_l2_fastpath", d["enable_fastpath"])
        d.setdefault("enable_flat_walk", True)
        d.setdefault("_walk_caches", [None] * _WALK_DEPTH)
        d.setdefault("_walk_idx", [0] * _WALK_DEPTH)
        d.setdefault("_ctx_pool", [])
        d.setdefault("_result_pool", [])
        d.setdefault("fastpath_hits", 0)
        d.setdefault("l2_fastpath_hits", 0)
        d.setdefault("slow_accesses", 0)
        d.setdefault("ctx_reuses", 0)
        d.setdefault("result_reuses", 0)
        # Legacy capsules (pre-bitmask directories) ship main memory's
        # children empty when there is no L3; rebuild the requester
        # list in _wire_children order, restamp child ids, and finish
        # any directory conversion Cache.__setstate__ had to defer.
        if not self.l3_banks and not self.mainmem.children:
            self.mainmem.children.extend(
                self.l2s if self.l2s else self.l1i + self.l1d)
        self._assign_child_ids()
        self.mainmem._migrate_directory()
        self._rewire_parents()

    def _wire_children(self):
        """Populate children lists so directories know their subtrees.

        ``MainMemory.children`` holds every potential requester — the
        L3 banks, or the whole top cache level when there is no L3 —
        so its bitmask directory always has a child index to grant to.
        Child ids are assigned from these lists by
        :meth:`_assign_child_ids`; all banks of a level share one
        children order, so ids are stable across banks."""
        for cache in self.l3_banks:
            self.mainmem.children.append(cache)
        if self.l2s:
            for core in range(self.config.num_cores):
                if self.config.l2_shared_per_tile:
                    parent = self.l2s[self.config.core_tile(core)]
                else:
                    parent = self.l2s[core]
                parent.children.append(self.l1i[core])
                parent.children.append(self.l1d[core])
            uppers = self.l2s
        else:
            uppers = self.l1i + self.l1d
        if self.l3_banks:
            for upper in uppers:
                for cache in self.l3_banks:
                    cache.children.append(upper)
        else:
            self.mainmem.children.extend(uppers)
        self._assign_child_ids()

    def _assign_child_ids(self):
        """Stamp every cache's ``child_id`` — its index in its parent
        level's children list.  Each cache has exactly one parent
        level, and banks of a level share one children order, so the
        assignment is unambiguous and idempotent."""
        for parent in ([self.mainmem] + self.l3_banks + self.l2s):
            for idx, child in enumerate(parent.children):
                child.child_id = idx

    # ------------------------------------------------------------------
    # Access entry points (bound phase)
    # ------------------------------------------------------------------

    def line_of(self, addr):
        return addr >> self.line_bits

    def access(self, core_id, addr, write, cycle=0, ifetch=False):
        """One core access; returns an :class:`AccessResult` whose latency
        is the zero-load bound and whose steps feed the weave phase.

        The dominant case — a private-L1 hit with no coherence side
        effects — is served by a fast path that allocates no
        :class:`AccessContext` at all: it peeks the array, touches the
        replacement state once (exactly like the slow path's single
        ``lookup``), bumps the same counters, and fills a slab-recycled
        result.  A write hit needs the line in E or M; a write hit in S
        requires an upgrade and falls through to the coherence walk.

        One level down (ISSUE 10), an L1 *read* miss whose parent holds
        the line with no owner to downgrade is served by
        :meth:`_shared_hit_fastpath` without recursing into
        ``handle_access``."""
        line = addr >> self.line_bits
        l1 = self.l1i[core_id] if ifetch else self.l1d[core_id]
        l1_idx = -1
        entry = None
        if self.enable_fastpath or self.enable_l2_fastpath:
            array = l1.array
            # Private L1 arrays are unhashed in every shipped config;
            # inline that set-index case.
            idx = (line % array.num_sets if not array.hash_sets
                   else array.set_index(line))
            l1_idx = idx
            entry = array._lines[idx].get(line)
            if entry is not None:
                if self.enable_fastpath and \
                        (not write or entry[1] >= _MESI_E):
                    way = entry[0]
                    repl = array._repl[idx]
                    if type(repl) is _LRU:
                        # LRU.touch, inlined (one stamp store).
                        repl._stamp[way] = repl._clock
                        repl._clock += 1
                    else:
                        repl.touch(way)
                    l1.accesses += 1
                    l1.hits += 1
                    if write:
                        array._lines[idx][line] = (way, _MESI_M)
                    self.fastpath_hits += 1
                    pool = self._result_pool
                    if pool:
                        result = pool.pop()
                        self.result_reuses += 1
                    else:
                        result = AccessResult.__new__(AccessResult)
                    latency = l1.latency
                    result.latency = latency
                    result.missed_levels = ()
                    result.hit_level = l1.level
                    result.steps = ()
                    result.wbacks = ()
                    result.line = line
                    result.write = write
                    result.core_id = core_id
                    result.invalidations = 0
                    result.shared_evictions = ()
                    # Log2Histogram.record, inlined (latency is a
                    # non-negative int, so the guards drop out).
                    hist = self.access_latency
                    b = latency.bit_length()
                    hist._counts[b if b < 64 else 63] += 1
                    hist.count += 1
                    hist.total += latency
                    if hist.min is None or latency < hist.min:
                        hist.min = latency
                    if hist.max is None or latency > hist.max:
                        hist.max = latency
                    if self._metrics_latency is not None:
                        self._metrics_latency.record(latency)
                    if self.profiler is not None:
                        self.profiler.record(result, cycle)
                    return result
            elif not write and self.enable_l2_fastpath \
                    and (ifetch or not self.prefetchers):
                result = self._shared_hit_fastpath(l1, line, core_id,
                                                   cycle)
                if result is not None:
                    return result
        self.slow_accesses += 1
        ctx_pool = self._ctx_pool
        if ctx_pool:
            ctx = ctx_pool.pop()
            ctx.reset(core_id, line, write, ifetch)
            self.ctx_reuses += 1
        else:
            ctx = AccessContext(core_id, line, write, ifetch)
        if self.enable_flat_walk:
            self._walk_access(l1, line, write, ctx, l1_idx, entry)
        else:
            l1.handle_access(line, write, None, ctx)
        if (self.prefetchers and not ifetch
                and "l1d" in ctx.missed_levels):
            self._prefetch(core_id, line, ctx)
        pool = self._result_pool
        if pool:
            result = pool.pop()
            result.refill(ctx)
            self.result_reuses += 1
        else:
            result = AccessResult(ctx)
        ctx_pool.append(ctx)
        latency = result.latency
        hist = self.access_latency
        b = latency.bit_length()
        hist._counts[b if b < 64 else 63] += 1
        hist.count += 1
        hist.total += latency
        if hist.min is None or latency < hist.min:
            hist.min = latency
        if hist.max is None or latency > hist.max:
            hist.max = latency
        if self._metrics_latency is not None:
            self._metrics_latency.record(result.latency)
            if result.missed_levels:
                self._telem.metrics.inc("mem.misses.%s"
                                        % result.missed_levels[-1])
        if self.profiler is not None:
            self.profiler.record(result, cycle)
        return result

    def _shared_hit_fastpath(self, l1, line, core_id, cycle):
        """Serve an L1 read miss that hits in the (single) parent with no
        owner to downgrade, without recursing into ``handle_access``.

        Every condition is checked on peeked state before any effect, so
        a ``None`` return leaves zero side effects and the caller falls
        through to the full walk.  The effects replicate the slow path
        exactly — same counters, single repl touch at the parent, same
        directory grant, same weave step at the same arrival offset —
        which is what keeps fast-path on/off byte-identical."""
        banks = l1._parent_banks
        if banks is None or len(banks) != 1 or l1.noc_routes is not None:
            return None
        p = banks[0]
        if p.level == "mem":
            return None
        parray = p.array
        pidx = (line % parray.num_sets if not parray.hash_sets
                else parray.set_index(line))
        pentry = parray._lines[pidx].get(line)
        if pentry is None:
            return None
        cid = l1.child_id
        owner = p._owner.get(line)
        if owner is not None and owner != cid:
            return None
        # Conditions hold — apply the slow walk's effects in its order.
        l1.accesses += 1
        l1.misses += 1
        p.accesses += 1
        p.hits += 1
        p.dir_ops += 1
        prepl = parray._repl[pidx]
        if type(prepl) is _LRU:
            prepl._stamp[pentry[0]] = prepl._clock
            prepl._clock += 1
        else:
            prepl.touch(pentry[0])
        rbit = 1 << cid
        mask = p._sharers.get(line, 0) | rbit
        p._sharers[line] = mask
        if mask == rbit and pentry[1] >= _MESI_E:
            p._owner[line] = cid
            granted = _MESI_E
        else:
            granted = _MESI_S
        victim, vstate = l1.array.fill(line, granted)
        if victim is not None:
            # L1s have no children, so the eviction needs no context:
            # no shared_evictions, and Cache.child_evicted ignores ctx.
            l1._evict(victim, vstate, None)
        net = l1._parent_net[0]
        arrival = l1.latency + net
        latency = arrival + p.latency
        self.l2_fastpath_hits += 1
        pool = self._result_pool
        if pool:
            result = pool.pop()
            self.result_reuses += 1
        else:
            result = AccessResult.__new__(AccessResult)
        result.latency = latency
        result.missed_levels = (l1.level,)
        result.hit_level = p.level
        weave = p.weave
        result.steps = (() if weave is None
                        else ((weave, arrival, StepKind.HIT),))
        result.wbacks = ()
        result.line = line
        result.write = False
        result.core_id = core_id
        result.invalidations = 0
        result.shared_evictions = ()
        hist = self.access_latency
        b = latency.bit_length()
        hist._counts[b if b < 64 else 63] += 1
        hist.count += 1
        hist.total += latency
        if hist.min is None or latency < hist.min:
            hist.min = latency
        if hist.max is None or latency > hist.max:
            hist.max = latency
        if self._metrics_latency is not None:
            self._metrics_latency.record(latency)
            self._telem.metrics.inc("mem.misses.%s" % l1.level)
        if self.profiler is not None:
            self.profiler.record(result, cycle)
        return result

    def _walk_access(self, l1, line, write, ctx, l1_idx=-1,
                     l1_entry=None):
        """The demand coherence walk, flattened into one iterative frame
        (ISSUE 10).

        Byte-identical in effects *and effect order* to the recursive
        walk (``Cache.handle_access`` -> ``_fetch_and_fill`` ->
        ``_grant_to_child`` -> ``_evict``), which remains in place as
        the reference implementation (``enable_flat_walk=False``), for
        prefetch fills, and for subtree coherence.  The recursion is
        replaced by two loops over a preallocated path scratch — descend
        recording misses until a hit or main memory, then unwind
        granting and filling — with the latency accumulator, step list,
        and routing tables bound to locals.  Rare coherence fan-out
        (subtree invalidation/downgrade, upgrade acquires) still
        dispatches into the recursive helpers; of those only
        ``acquire_exclusive`` and main memory's ``child_evicted`` read
        or write ``ctx.latency``, so the local accumulator is synced
        around exactly those calls."""
        latency = ctx.latency
        steps = ctx.steps
        missed = ctx.missed_levels
        caches = self._walk_caches
        idxs = self._walk_idx
        depth = 0
        c = l1
        state = _MESI_S
        # -- Descend: record misses until a hit or main memory ---------
        while True:
            c.accesses += 1
            arrival = latency
            latency = arrival + c.latency
            array = c.array
            lines = array._lines
            if depth or l1_idx < 0:
                ns = array.num_sets
                if array.hash_sets:
                    idx = (line ^ line // ns ^ line // (ns * ns)) % ns
                else:
                    idx = line % ns
                entry = lines[idx].get(line)
            else:
                # The caller's fast-path prologue already peeked L1.
                idx = l1_idx
                entry = l1_entry
            if entry is not None:
                break
            c.misses += 1
            missed.append(c.level)
            if c.weave is not None:
                steps.append((c.weave, arrival, _SK_MISS))
            banks = c._parent_banks
            if len(banks) == 1:
                parent = banks[0]
                net = c._parent_net[0]
            else:
                key = ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8 \
                    if c._parent_hashed else line
                bank = key % len(banks)
                parent = banks[bank]
                net = c._parent_net[bank]
            if c.noc_routes is not None:
                route = c.noc_routes.get(
                    (c.tile, getattr(parent, "tile", c.tile)))
                if route is not None:
                    steps.append((route, latency, _SK_NOC))
            latency += net
            caches[depth] = c
            idxs[depth] = idx
            depth += 1
            if parent.level != "mem":
                c = parent
                continue
            # -- Terminal level: MainMemory.handle_access, inlined -----
            m = parent
            m.reads += 1
            ctrl = line % m._num_ctrls
            src_tile = c.tile
            ctrl_tile = m._ctrl_tiles[ctrl]
            if m.noc_routes is not None and src_tile != ctrl_tile:
                route = m.noc_routes.get((src_tile, ctrl_tile))
                if route is not None:
                    steps.append((route, latency, _SK_NOC))
            latency += m._net_to_ctrl[src_tile][ctrl]
            arrival = latency
            latency += m._zero_load
            weave = m.ctrl_weaves[ctrl]
            if weave is not None:
                steps.append((weave, arrival, _SK_READ))
            rid = c.child_id
            rbit = 1 << rid
            sharers = m._sharers
            mask = sharers.get(line, 0)
            m.dir_ops += 1
            if write:
                others = mask & ~rbit
                if others:
                    children = m.children
                    while others:
                        low = others & -others
                        others ^= low
                        children[low.bit_length() - 1] \
                            .invalidate_subtree(line, ctx)
                        ctx.invalidations += 1
                sharers[line] = rbit
                m._owner[line] = rid
                state = _MESI_E
            else:
                owner = m._owner.get(line)
                if owner is not None and owner != rid:
                    m.children[owner].downgrade_subtree(line, ctx)
                    del m._owner[line]
                mask |= rbit
                sharers[line] = mask
                if mask == rbit:
                    m._owner[line] = rid
                    state = _MESI_E
                else:
                    state = _MESI_S
            entry = None
            grantor = None
            break
        # -- Hit bookkeeping (cache ``c``; main memory handled above) --
        if entry is not None:
            repl = array._repl[idx]
            if type(repl) is _LRU:
                repl._stamp[entry[0]] = repl._clock
                repl._clock += 1
            else:
                repl.touch(entry[0])
            state = entry[1]
            c.hits += 1
            if ctx.hit_level is None:
                ctx.hit_level = c.level
            if c.weave is not None:
                steps.append((c.weave, arrival, _SK_HIT))
            if write and state == _MESI_S:
                # Upgrade: gain exclusivity from the parent level.
                c.upgrades += 1
                banks = c._parent_banks
                if len(banks) == 1:
                    parent = banks[0]
                    net = c._parent_net[0]
                else:
                    key = ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8 \
                        if c._parent_hashed else line
                    bank = key % len(banks)
                    parent = banks[bank]
                    net = c._parent_net[bank]
                latency += net
                ctx.latency = latency
                parent.acquire_exclusive(line, c, ctx)
                latency = ctx.latency
                state = _MESI_E
                lines[idx][line] = (entry[0], _MESI_E)
            if depth == 0:
                # L1 hit: apply the access to our own copy.
                if write:
                    lines[idx][line] = (lines[idx][line][0], _MESI_M)
                    state = _MESI_M
                ctx.latency = latency
                return state
            grantor = c
        # -- Unwind: grant downward-walk order, fill, evict victims ----
        i = depth - 1
        while i >= 0:
            cc = caches[i]
            if grantor is not None:
                # Cache._grant_to_child, inlined.
                rid = cc.child_id
                rbit = 1 << rid
                sharers = grantor._sharers
                mask = sharers.get(line, 0)
                grantor.dir_ops += 1
                if write:
                    dirty = False
                    others = mask & ~rbit
                    if others:
                        children = grantor.children
                        down = grantor.down_latency
                        while others:
                            low = others & -others
                            others ^= low
                            dirty |= children[low.bit_length() - 1] \
                                .invalidate_subtree(line, ctx)
                            latency += down
                            ctx.invalidations += 1
                    sharers[line] = rbit
                    grantor._owner[line] = rid
                    if dirty:
                        grantor.array.update_state(line, _MESI_M)
                    state = _MESI_E
                else:
                    owner = grantor._owner.get(line)
                    if owner is not None and owner != rid:
                        dirty = grantor.children[owner] \
                            .downgrade_subtree(line, ctx)
                        latency += grantor.down_latency
                        del grantor._owner[line]
                        if dirty:
                            grantor.array.update_state(line, _MESI_M)
                            state = _MESI_M
                    mask |= rbit
                    sharers[line] = mask
                    if mask == rbit and state >= _MESI_E:
                        grantor._owner[line] = rid
                        state = _MESI_E
                    else:
                        state = _MESI_S
            # CacheArray.fill, inlined (the walk guarantees a miss here).
            carray = cc.array
            cidx = idxs[i]
            clines = carray._lines[cidx]
            cways = carray._ways[cidx]
            crepl = carray._repl[cidx]
            cfree = carray._free
            crepl_lru = type(crepl) is _LRU
            if cfree[cidx]:
                way = cways.index(None)
                cfree[cidx] -= 1
                victim = None
            elif crepl_lru:
                # LRU.victim, inlined: smallest stamp.
                cstamp = crepl._stamp
                way = cstamp.index(min(cstamp))
                victim = cways[way]
                vstate = clines[victim][1]
                del clines[victim]
            else:
                way = crepl.victim()
                victim = cways[way]
                vstate = clines[victim][1]
                del clines[victim]
            cways[way] = line
            clines[line] = (way, state)
            if crepl_lru:
                crepl._stamp[way] = crepl._clock
                crepl._clock += 1
            else:
                crepl.touch(way)
            if victim is not None:
                # Cache._evict, inlined (inclusive: purge below first).
                cc.evictions += 1
                if cc.children:
                    ctx.shared_evictions += (victim,)
                dirty = vstate == _MESI_M
                cc._owner.pop(victim, None)
                vmask = cc._sharers.pop(victim, 0)
                if vmask:
                    children = cc.children
                    while vmask:
                        low = vmask & -vmask
                        vmask ^= low
                        dirty |= children[low.bit_length() - 1] \
                            .invalidate_subtree(victim, ctx)
                vbanks = cc._parent_banks
                if len(vbanks) == 1:
                    vparent = vbanks[0]
                else:
                    key = ((victim * _HASH_MULT) & 0xFFFFFFFF) >> 8 \
                        if cc._parent_hashed else victim
                    vparent = vbanks[key % len(vbanks)]
                if type(vparent) is Cache:
                    # Cache.child_evicted, inlined (never reads ctx).
                    vparent.dir_ops += 1
                    psharers = vparent._sharers
                    pmask = psharers.get(victim)
                    if pmask is not None:
                        pmask &= ~(1 << cc.child_id)
                        if pmask:
                            psharers[victim] = pmask
                        else:
                            del psharers[victim]
                    if vparent._owner.get(victim) == cc.child_id:
                        del vparent._owner[victim]
                    if dirty:
                        parray = vparent.array
                        plines = parray._lines[
                            victim % parray.num_sets
                            if not parray.hash_sets
                            else parray.set_index(victim)]
                        pentry = plines.get(victim)
                        if pentry is not None:
                            plines[victim] = (pentry[0], _MESI_M)
                elif type(vparent) is MainMemory:
                    # MainMemory.child_evicted, inlined; the writeback
                    # step is timestamped from the local accumulator.
                    vparent.dir_ops += 1
                    psharers = vparent._sharers
                    pmask = psharers.get(victim)
                    if pmask is not None:
                        pmask &= ~(1 << cc.child_id)
                        if pmask:
                            psharers[victim] = pmask
                        else:
                            del psharers[victim]
                    if vparent._owner.get(victim) == cc.child_id:
                        del vparent._owner[victim]
                    if dirty:
                        vparent.writebacks += 1
                        wb_weave = vparent.ctrl_weaves[
                            victim % vparent._num_ctrls]
                        if wb_weave is not None:
                            ctx.wbacks.append(
                                (wb_weave, latency, _SK_WBACK))
                else:
                    ctx.latency = latency
                    vparent.child_evicted(victim, cc, dirty, ctx)
                if dirty:
                    cc.writebacks += 1
            grantor = cc
            i -= 1
        if write:
            # Leaf (L1): apply the access to our own copy.
            clines[line] = (way, _MESI_M)
            state = _MESI_M
        ctx.latency = latency
        return state

    def recycle_results(self, results):
        """Return dead :class:`AccessResult` objects to the slab.

        Callers must guarantee nothing observes the objects afterwards —
        in practice the simulator hands back an interval's trace results
        once the weave phase (the last consumer) has run."""
        pool = self._result_pool
        for result in results:
            if len(pool) >= _RESULT_POOL_CAP:
                break
            pool.append(result)

    def attach_telemetry(self, telemetry):
        """Install (or detach, with None) the observability context; the
        metrics-side latency histogram is cached so the hot path pays a
        single identity check when telemetry is off."""
        self._telem = telemetry
        self._metrics_latency = (
            telemetry.metrics.histogram("mem.access_latency")
            if telemetry is not None and telemetry.metrics is not None
            else None)

    def _prefetch(self, core_id, line, ctx):
        """Train the core's stride prefetcher on the L2 access stream
        and issue fills.  Prefetch traffic is off the demand access's
        critical path; its weave events ride along as side events."""
        if self.config.l2_shared_per_tile:
            l2 = self.l2s[self.config.core_tile(core_id)]
        else:
            l2 = self.l2s[core_id]
        ctx_pool = self._ctx_pool
        wbacks = ctx.wbacks
        for pf_line in self.prefetchers[core_id].observe(line):
            if ctx_pool:
                pf_ctx = ctx_pool.pop()
                pf_ctx.reset(core_id, pf_line, False)
                self.ctx_reuses += 1
            else:
                pf_ctx = AccessContext(core_id, pf_line, False)
            if l2.prefetch_fill(pf_line, pf_ctx):
                wbacks.extend(pf_ctx.steps)
                wbacks.extend(pf_ctx.wbacks)
            ctx_pool.append(pf_ctx)

    # ------------------------------------------------------------------
    # Stats and invariants
    # ------------------------------------------------------------------

    def all_caches(self):
        return list(self.l1i) + list(self.l1d) + list(self.l2s) \
            + list(self.l3_banks)

    def fill_stats(self, node):
        for cache in self.all_caches():
            cache.fill_stats(node.child(cache.name))
        self.mainmem.fill_stats(node.child("mem"))
        node.histogram("access_latency").merge(self.access_latency)

    def reset_weave(self):
        for comp in self.weave_components:
            comp.reset()
        if self.noc_fabric is not None:
            self.noc_fabric.reset()

    def check_inclusion(self):
        """Invariant: every line in a child is present in its parent.
        Returns a list of violations (empty when the invariant holds)."""
        violations = []
        for cache in self.all_caches():
            if cache._parent_banks is None:
                continue
            for line, _state in cache.array.resident_lines():
                parent, _ = cache.parent_select(line)
                if isinstance(parent, MainMemory):
                    continue
                if parent.line_state(line) == 0:  # MESI.I
                    violations.append((cache.name, parent.name, line))
        return violations

    def check_coherence(self):
        """Invariant: single-writer — for every line present anywhere in
        the L1s, at most one L1 holds it in M/E, and if one does, no other
        L1 holds it at all.  Returns violations."""
        from repro.memory.coherence import check_single_writer
        lines = {}
        for cache in list(self.l1i) + list(self.l1d):
            for line, state in cache.array.resident_lines():
                lines.setdefault(line, []).append((cache.name, state))
        violations = []
        for line, copies in lines.items():
            # Copies in the same core's L1I/L1D are fine; group by core.
            by_core = {}
            for name, state in copies:
                core = name.split("-")[1]
                by_core.setdefault(core, []).append(state)
            states = [max(v) for v in by_core.values()]
            if not check_single_writer(states):
                violations.append((line, copies))
        return violations
