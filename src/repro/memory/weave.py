"""Weave-phase timing models for contended memory-system components.

The bound phase records, for every access that escapes the private cache
levels, the chain of components it touched with zero-load offsets.  The
weave phase replays those chains through these models, which add the
*contention* the bound phase ignored:

* :class:`CacheBankWeave` — pipelined cache banks with limited address/
  data port occupancy and limited MSHRs (Section 3.2.2: "pipelined caches
  (including address and data port contention, and limited MSHRs)").
* :class:`MemCtrlWeave` — a detailed DDR3 memory controller: FCFS
  scheduling, closed-page policy, bank/command/data-bus conflicts, and
  the fast-powerdown exit penalty of Table 2.

Occupancy is tracked with busy-interval timelines
(:mod:`repro.memory.timeline`) rather than next-free frontiers: events
from differently-delayed cores arrive out of strict time order, and a
request must be able to claim a hole the resource still has at its own
arrival cycle.

Every model is *conservative in one direction*: the finish cycle it
returns is always >= the event's lower-bound cycle, the property the
bound-weave algorithm relies on.
"""

from __future__ import annotations

import heapq

from repro.memory.access import StepKind
from repro.memory.timeline import MultiTimeline, Timeline

_MISS = StepKind.MISS
_WBACK = StepKind.WBACK


class WeaveComponent:
    """Base class: a component that retimes weave events."""

    def __init__(self, name, tile=0):
        self.name = name
        self.tile = tile
        self.domain = 0          # assigned by the weave engine
        self.events_executed = 0

    def occupy(self, cycle, kind, line=0):
        """Admit an event arriving at ``cycle``; return its finish cycle
        (>= cycle + zero-load service)."""
        raise NotImplementedError

    def zero_load_service(self, kind):
        """Service time assumed by the bound phase for this component."""
        raise NotImplementedError

    def reset(self):
        """Clear all occupancy state (between independent simulations)."""
        self.events_executed = 0

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)


class CacheBankWeave(WeaveComponent):
    """Pipelined cache bank: port occupancy plus limited MSHRs."""

    #: Cycles an access occupies a bank port (address + data slots).
    PORT_OCCUPANCY = 2

    def __init__(self, name, latency, ports=1, mshrs=16,
                 miss_hold_cycles=100, tile=0):
        super().__init__(name, tile)
        self.latency = latency
        self.ports = max(1, ports)
        self.mshrs = max(1, mshrs)
        self.miss_hold_cycles = miss_hold_cycles
        self._port_timeline = MultiTimeline(self.ports)
        self._mshr_release = []      # min-heap of release cycles
        self.port_stall_cycles = 0
        self.mshr_stall_cycles = 0

    def occupy(self, cycle, kind, line=0):
        self.events_executed += 1
        start = cycle
        if kind == _MISS:
            # A miss allocates an MSHR; when all are busy the access
            # stalls until the oldest outstanding miss completes.
            release = self._mshr_release
            while release and release[0] <= start:
                heapq.heappop(release)
            if len(release) >= self.mshrs:
                earliest = heapq.heappop(release)
                if earliest > start:
                    self.mshr_stall_cycles += earliest - start
                    start = earliest
            heapq.heappush(release, start + self.miss_hold_cycles)
        timelines = self._port_timeline._timelines
        if len(timelines) == 1:
            granted = timelines[0].reserve(start, self.PORT_OCCUPANCY)
        else:
            granted = self._port_timeline.reserve(start,
                                                  self.PORT_OCCUPANCY)
        self.port_stall_cycles += granted - start
        return granted + self.latency

    def zero_load_service(self, kind):
        return self.latency

    def reset(self):
        super().reset()
        self._port_timeline = MultiTimeline(self.ports)
        self._mshr_release = []
        self.port_stall_cycles = 0
        self.mshr_stall_cycles = 0


class MemCtrlWeave(WeaveComponent):
    """DDR3 memory controller: FCFS, closed page, bank conflicts.

    All bookkeeping is done in core cycles; DDR parameters (given in
    memory-bus cycles) are scaled by ``ratio`` = core MHz / bus MHz.
    """

    #: Data burst length (BL8 over a DDR bus), bus cycles.
    BURST_CYCLES = 4

    def __init__(self, name, mem_config, core_mhz, tile=0):
        super().__init__(name, tile)
        self.cfg = mem_config
        t = mem_config.timing
        self.ratio = max(1.0, core_mhz / mem_config.bus_mhz)
        self.num_banks = t.banks_per_rank * t.ranks_per_channel
        self.channels = mem_config.channels_per_controller
        # Closed-page access: ACT -> CAS -> burst; the precharge tail
        # only occupies the bank.
        self.access_cycles = int(round(
            (t.tRCD + t.tCL + self.BURST_CYCLES) * self.ratio))
        self.bank_busy_cycles = int(round(
            max(t.tRAS + t.tRP,
                t.tRCD + t.tCL + self.BURST_CYCLES + t.tRP) * self.ratio))
        self.burst_core_cycles = max(1, int(round(
            self.BURST_CYCLES * self.ratio)))
        # Controller frontend overhead chosen so the zero-load service
        # matches the bound phase's configured zero-load latency.
        self.overhead = max(0, mem_config.zero_load_latency
                            - self.access_cycles)
        # Powerdown constants, core cycles (occupy runs once per event).
        self._pd_threshold = mem_config.powerdown_threshold * self.ratio
        self._pd_exit = int(round(
            mem_config.powerdown_exit_cycles * self.ratio))
        self._banks = [[Timeline() for _ in range(self.num_banks)]
                       for _ in range(self.channels)]
        self._data_bus = [Timeline() for _ in range(self.channels)]
        self._last_activity = [0] * self.channels
        self.bank_conflict_cycles = 0
        self.bus_conflict_cycles = 0
        self.powerdown_exits = 0

    def _map(self, line):
        channel = (line >> 4) % self.channels
        bank = (line >> 1) % self.num_banks
        return channel, bank

    def __setstate__(self, state):
        # Capsules written before the precomputed powerdown constants
        # lack them; re-derive from the pickled config.
        self.__dict__.update(state)
        if "_pd_threshold" not in state:
            self._pd_threshold = self.cfg.powerdown_threshold * self.ratio
            self._pd_exit = int(round(
                self.cfg.powerdown_exit_cycles * self.ratio))

    def occupy(self, cycle, kind, line=0):
        self.events_executed += 1
        channel = (line >> 4) % self.channels
        bank = (line >> 1) % self.num_banks
        start = cycle
        # Fast powerdown: if the channel idled past the threshold, pay
        # the exit latency (Table 2: threshold timer = 15 mem cycles).
        # Stragglers arriving before the last activity are not charged.
        last_activity = self._last_activity
        if start - last_activity[channel] > self._pd_threshold:
            self.powerdown_exits += 1
            start += self._pd_exit
        # Bank occupancy (ACT..PRE), then the data burst on the channel.
        bank_start = self._banks[channel][bank].reserve(
            start, self.bank_busy_cycles)
        self.bank_conflict_cycles += bank_start - start
        burst = self.burst_core_cycles
        bus_start = self._data_bus[channel].reserve(bank_start, burst)
        self.bus_conflict_cycles += bus_start - bank_start
        if bus_start + burst > last_activity[channel]:
            last_activity[channel] = bus_start + burst
        if kind == _WBACK:
            # Writebacks occupy the bank and bus but need no response.
            return bus_start + burst
        return bus_start + self.overhead + self.access_cycles

    def zero_load_service(self, kind):
        if kind == StepKind.WBACK:
            return self.burst_core_cycles
        return self.cfg.zero_load_latency

    def reset(self):
        super().reset()
        self._banks = [[Timeline() for _ in range(self.num_banks)]
                       for _ in range(self.channels)]
        self._data_bus = [Timeline() for _ in range(self.channels)]
        self._last_activity = [0] * self.channels
        self.bank_conflict_cycles = 0
        self.bus_conflict_cycles = 0
        self.powerdown_exits = 0
