"""A DRAMSim2-like cycle-driven DRAM model, plus weave-phase glue.

The paper integrates zsim with DRAMSim2 ("110 lines of glue code") to
show that existing cycle-driven timing models drop into the weave phase
unmodified — at a simulation-speed cost, since cycle-driven models tick
every cycle.  We reproduce that with an independent cycle-driven DRAM
implementation: an *open-page* FCFS controller (DRAMSim2's default
policy, deliberately different from our native closed-page model) whose
internal state advances one memory cycle at a time.

:class:`DRAMSimWeave` is the glue: it adapts the tick-based model to the
weave component interface in a few dozen lines, mirroring the paper's
integration.
"""

from __future__ import annotations

from repro.memory.access import StepKind
from repro.memory.weave import WeaveComponent


class _Bank:
    __slots__ = ("open_row", "ready_at", "precharged_at")

    def __init__(self):
        self.open_row = None
        self.ready_at = 0        # mem cycle the bank can accept a command
        self.precharged_at = 0


class CycleDrivenDRAM:
    """Open-page, FCFS, cycle-driven DRAM channel model.

    All times are in memory-bus cycles.  Requests are processed strictly
    in order (FCFS); the model is advanced with :meth:`tick`, one cycle at
    a time, exactly like DRAMSim2's update loop.
    """

    BURST_CYCLES = 4

    def __init__(self, timing):
        self.t = timing
        self.num_banks = timing.banks_per_rank * timing.ranks_per_channel
        self.banks = [_Bank() for _ in range(self.num_banks)]
        self.now = 0
        self._queue = []            # (req_id, bank, row) FCFS order
        self._done = {}             # req_id -> completion mem cycle
        self._next_req_id = 0
        self._data_bus_free = 0
        self.row_hits = 0
        self.row_misses = 0

    def enqueue(self, bank, row):
        """Add a request; returns a request id to poll for completion."""
        req_id = self._next_req_id
        self._next_req_id += 1
        self._queue.append((req_id, bank % self.num_banks, row))
        return req_id

    def completed(self, req_id):
        """Completion cycle of a finished request, else None."""
        return self._done.get(req_id)

    def tick(self):
        """Advance one memory cycle, issuing the head request if its bank
        and the data bus allow (FCFS: later requests never bypass)."""
        self.now += 1
        if not self._queue:
            return
        req_id, bank_idx, row = self._queue[0]
        bank = self.banks[bank_idx]
        t = self.t
        if bank.ready_at > self.now or self._data_bus_free > self.now:
            return
        if bank.open_row == row:
            # Row hit: CAS only.
            self.row_hits += 1
            done = self.now + t.tCL + self.BURST_CYCLES
            bank.ready_at = self.now + t.tCCD
        elif bank.open_row is None:
            # Bank precharged: ACT + CAS.
            self.row_misses += 1
            done = self.now + t.tRCD + t.tCL + self.BURST_CYCLES
            bank.open_row = row
            bank.ready_at = self.now + t.tRCD + t.tCCD
        else:
            # Row conflict: PRE + ACT + CAS.
            self.row_misses += 1
            done = self.now + t.tRP + t.tRCD + t.tCL + self.BURST_CYCLES
            bank.open_row = row
            bank.ready_at = self.now + t.tRP + t.tRCD + t.tCCD
        self._data_bus_free = done
        self._done[req_id] = done
        self._queue.pop(0)

    def run_until_done(self, req_id, max_cycles=1_000_000):
        """Tick until ``req_id`` completes; returns its completion cycle."""
        for _ in range(max_cycles):
            done = self._done.get(req_id)
            if done is not None:
                return done
            self.tick()
        raise RuntimeError("DRAM request never completed")

    def reset(self):
        self.__init__(self.t)


class DRAMSimWeave(WeaveComponent):
    """Weave-phase glue around :class:`CycleDrivenDRAM`.

    Converts core cycles to memory cycles, feeds the cycle-driven model,
    and ticks it forward until the request completes — the direct
    analogue of zsim's DRAMSim2 glue.
    """

    def __init__(self, name, mem_config, core_mhz, tile=0):
        super().__init__(name, tile)
        self.cfg = mem_config
        self.ratio = max(1.0, core_mhz / mem_config.bus_mhz)
        self.channels = mem_config.channels_per_controller
        self.drams = [CycleDrivenDRAM(mem_config.timing)
                      for _ in range(self.channels)]
        t = mem_config.timing
        zero_load_mem = t.tRCD + t.tCL + CycleDrivenDRAM.BURST_CYCLES
        self.overhead = max(0, mem_config.zero_load_latency
                            - int(round(zero_load_mem * self.ratio)))

    def occupy(self, cycle, kind, line=0):
        self.events_executed += 1
        dram = self.drams[(line >> 4) % self.channels]
        mem_cycle = int(cycle / self.ratio)
        # Catch the model up to the arrival cycle (draining older work).
        while dram.now < mem_cycle:
            dram.tick()
        bank = (line >> 1) % dram.num_banks
        row = line >> 7
        issue_mem = dram.now
        req = dram.enqueue(bank, row)
        done_mem = dram.run_until_done(req)
        # Charge the request the service time it measured *inside* the
        # model, relative to its own arrival: events from differently
        # delayed cores arrive out of strict order, and the model's
        # monotone clock must not leak absolute skew into latencies.
        service = int(round((done_mem - issue_mem) * self.ratio))
        if kind == StepKind.WBACK:
            return cycle + max(0, service)
        return cycle + max(0, service) + self.overhead

    def zero_load_service(self, kind):
        if kind == StepKind.WBACK:
            return int(round(CycleDrivenDRAM.BURST_CYCLES * self.ratio))
        return self.cfg.zero_load_latency

    def reset(self):
        super().reset()
        for dram in self.drams:
            dram.reset()
