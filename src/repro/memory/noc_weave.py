"""Weave-phase NoC contention model (the paper's stated future work).

Section 3.2.2: "The only component without a weave phase model is the
network, since well-provisioned NoCs can be implemented at modest cost,
and zero-load latencies model most of their performance impact in real
workloads.  We leave weave phase NoC models to future work."

This module implements that future work as an optional extension
(``NetworkConfig.weave_model = True``).  The fabric's inter-tile links
are single-server resources (busy-interval timelines); a message
reserves every link on its deterministic route in order (shortest
direction on rings, X-Y with a partial-row fallback on meshes).  One
weave component exists per (source, destination) tile pair, sharing the
link fabric; components live in the *source* tile's weave domain.

Accesses that cross tiles get a NOC step in their weave chain, so link
contention delays propagate into core clocks exactly like cache-bank or
DRAM contention.
"""

from __future__ import annotations

from repro.memory.access import StepKind
from repro.memory.timeline import Timeline
from repro.memory.weave import WeaveComponent


class NocFabric:
    """The shared link fabric: one timeline per directed link."""

    #: Cycles a message occupies each link (head + body flits).
    DEFAULT_LINK_OCCUPANCY = 2

    def __init__(self, network, num_tiles,
                 link_occupancy=DEFAULT_LINK_OCCUPANCY):
        self.network = network
        self.num_tiles = num_tiles
        self.link_occupancy = link_occupancy
        self._links = {}
        self.link_stall_cycles = 0

    def link(self, src, dst):
        timeline = self._links.get((src, dst))
        if timeline is None:
            timeline = Timeline()
            self._links[(src, dst)] = timeline
        return timeline

    def route(self, src, dst):
        """Deterministic route as (from_tile, to_tile) hops."""
        if src == dst:
            return
        config = self.network.config
        tiles = self.num_tiles
        if config.topology == "ideal":
            return
        if config.topology == "ring":
            forward = (dst - src) % tiles
            step = 1 if forward <= tiles - forward else -1
            current = src
            while current != dst:
                nxt = (current + step) % tiles
                yield current, nxt
                current = nxt
            return
        # Mesh: X then Y; fall back to Y-first when the X-first corner
        # tile does not exist (non-square tile counts).
        side = self.network._side
        sx, sy = src % side, src // side
        dx, dy = dst % side, dst // side
        corner_xy = sy * side + dx
        x_first = corner_xy < tiles
        legs = ((("x", dx), ("y", dy)) if x_first
                else (("y", dy), ("x", dx)))
        cx, cy = sx, sy
        current = src
        for axis, target in legs:
            while (cx if axis == "x" else cy) != target:
                if axis == "x":
                    cx += 1 if target > cx else -1
                else:
                    cy += 1 if target > cy else -1
                nxt = cy * side + cx
                yield current, nxt
                current = nxt

    def traverse(self, start_cycle, src, dst):
        """Reserve the route's links in order; returns delivery cycle."""
        config = self.network.config
        per_hop = config.hop_latency
        if config.topology == "mesh":
            per_hop += config.router_stages
        now = start_cycle + config.injection_latency
        for hop_src, hop_dst in self.route(src, dst):
            granted = self.link(hop_src, hop_dst).reserve(
                now, self.link_occupancy)
            self.link_stall_cycles += granted - now
            now = granted + per_hop
        return now

    def reset(self):
        self._links.clear()
        self.link_stall_cycles = 0


class NocRouteWeave(WeaveComponent):
    """Weave component for one (src, dst) tile route."""

    def __init__(self, fabric, src_tile, dst_tile):
        super().__init__("noc%d-%d" % (src_tile, dst_tile),
                         tile=src_tile)
        self.fabric = fabric
        self.src_tile = src_tile
        self.dst_tile = dst_tile

    def occupy(self, cycle, kind, line=0):
        self.events_executed += 1
        return self.fabric.traverse(cycle, self.src_tile, self.dst_tile)

    def zero_load_service(self, kind):
        return self.fabric.network.latency(self.src_tile, self.dst_tile)

    def reset(self):
        super().reset()
        # The shared fabric is reset once by whoever owns it; resetting
        # per-route would clear links mid-iteration, so route components
        # only clear their own counters.


NOC_STEP = StepKind.NOC
