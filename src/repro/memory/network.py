"""Zero-load on-chip network latency model.

The paper models the NoC with zero-load latencies only (no weave model):
"well-provisioned NoCs can be implemented at modest cost, and zero-load
latencies model most of their performance impact in real workloads".
Endpoints are tiles; shared L3 banks and memory controllers are placed on
tiles round-robin.
"""

from __future__ import annotations

import math


class Network:
    """Computes one-way zero-load latencies between tiles."""

    def __init__(self, config, num_tiles):
        self.config = config
        self.num_tiles = num_tiles
        if config.topology == "mesh":
            self._side = max(1, int(math.ceil(math.sqrt(num_tiles))))
        elif config.topology not in ("ring", "ideal"):
            raise ValueError("Unknown topology: %r" % (config.topology,))

    def hops(self, src_tile, dst_tile):
        """Hop count between two tiles."""
        if src_tile == dst_tile:
            return 0
        topo = self.config.topology
        if topo == "ideal":
            return 0
        if topo == "ring":
            dist = abs(src_tile - dst_tile)
            return min(dist, self.num_tiles - dist)
        # Mesh: Manhattan distance on a near-square grid.
        sx, sy = src_tile % self._side, src_tile // self._side
        dx, dy = dst_tile % self._side, dst_tile // self._side
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src_tile, dst_tile):
        """One-way latency in core cycles."""
        cfg = self.config
        hops = self.hops(src_tile, dst_tile)
        per_hop = cfg.hop_latency
        if cfg.topology == "mesh":
            per_hop += cfg.router_stages
        return cfg.injection_latency + hops * per_hop

    def round_trip(self, src_tile, dst_tile):
        return 2 * self.latency(src_tile, dst_tile)
