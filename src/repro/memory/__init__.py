"""Memory-system substrate: caches, coherence, NoC, DRAM, contention."""

from repro.memory.access import AccessContext, AccessResult, StepKind
from repro.memory.cache import Cache, MainMemory
from repro.memory.cache_array import CacheArray
from repro.memory.coherence import MESI, check_single_writer
from repro.memory.contention import MD1Model
from repro.memory.dramsim import CycleDrivenDRAM, DRAMSimWeave
from repro.memory.hierarchy import MemoryHierarchy, hash_line
from repro.memory.network import Network
from repro.memory.noc_weave import NocFabric, NocRouteWeave
from repro.memory.prefetcher import StridePrefetcher
from repro.memory.timeline import MultiTimeline, Timeline
from repro.memory.replacement import LRU, RandomRepl, TreePLRU, make_policy
from repro.memory.weave import CacheBankWeave, MemCtrlWeave, WeaveComponent

__all__ = [
    "AccessContext",
    "AccessResult",
    "Cache",
    "CacheArray",
    "CacheBankWeave",
    "CycleDrivenDRAM",
    "DRAMSimWeave",
    "LRU",
    "MD1Model",
    "MESI",
    "MainMemory",
    "MemCtrlWeave",
    "MemoryHierarchy",
    "MultiTimeline",
    "Network",
    "NocFabric",
    "NocRouteWeave",
    "StridePrefetcher",
    "Timeline",
    "RandomRepl",
    "StepKind",
    "TreePLRU",
    "WeaveComponent",
    "check_single_writer",
    "hash_line",
    "make_policy",
]
