"""Coherent cache models: MESI, inclusive, with in-cache directories.

Mirrors zsim's cache design (Section 3.2.1): each cache composes a fully
decoupled associative array, replacement policy, and coherence controller,
plus an optional weave timing model.  Accesses travel *up* the hierarchy
(fetches, writebacks) and *down* (invalidations, downgrades); coherence is
maintained in the order accesses are simulated in the bound phase, which
is inaccurate only for same-line races — exactly the rare path-altering
interference the bound-weave algorithm tolerates.

Shared caches are banked: each bank is its own :class:`Cache` instance;
all banks of a level share one children list so child identities are
stable across banks.
"""

from __future__ import annotations

from repro.memory.access import StepKind
from repro.memory.cache_array import CacheArray
from repro.memory.coherence import MESI


class Cache:
    """One coherent cache (a private cache or one bank of a shared one)."""

    def __init__(self, name, level, num_sets, ways, latency, repl="lru",
                 tile=0, seed=0, hash_sets=False):
        self.name = name
        self.level = level            # "l1i" | "l1d" | "l2" | "l3"
        self.latency = latency
        self.tile = tile
        self.array = CacheArray(num_sets, ways, repl=repl, seed=seed,
                                hash_sets=hash_sets)
        #: Wired by the hierarchy builder:
        self.children = []            # caches below (empty for L1s)
        self.parent_select = None     # line -> (parent, net_latency)
        self.down_latency = 0         # cost of inv/downgrade round trip
        self.weave = None             # weave component, shared caches only
        self.noc_routes = None        # (src,dst) -> NoC weave component
        # In-cache directory over children.
        self._sharers = {}            # line -> set of child caches
        self._owner = {}              # line -> child cache holding E/M
        # Stats (plain attributes: these are hot counters).
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0           # dirty evictions sent to parent
        self.invalidations = 0        # lines invalidated from above
        self.downgrades = 0
        self.upgrades = 0             # S->E transitions requested
        self.prefetch_fills = 0

    def __getstate__(self):
        """``parent_select`` is a routing closure installed by the
        hierarchy builder; it is dropped here and re-created by
        ``MemoryHierarchy.__setstate__`` (checkpoint support)."""
        state = self.__dict__.copy()
        state["parent_select"] = None
        return state

    # ------------------------------------------------------------------
    # Requests from below (the "up" path)
    # ------------------------------------------------------------------

    def handle_access(self, line, write, requester, ctx):
        """Serve a GETS/GETX from ``requester`` (a child cache, or None
        when this is an L1 being accessed by a core).  Returns the MESI
        state granted to the requester."""
        self.accesses += 1
        arrival = ctx.latency
        ctx.latency += self.latency
        state = self.array.lookup(line)
        if state is None:
            self.misses += 1
            ctx.record_miss(self.level)
            if self.weave is not None:
                ctx.add_step_at(self.weave, arrival, StepKind.MISS)
            state = self._fetch_and_fill(line, write, ctx)
        else:
            self.hits += 1
            ctx.record_hit(self.level)
            if self.weave is not None:
                ctx.add_step_at(self.weave, arrival, StepKind.HIT)
            if write and state == MESI.S:
                # Upgrade: gain exclusivity from the parent level.
                self.upgrades += 1
                parent, net = self.parent_select(line)
                ctx.latency += net
                parent.acquire_exclusive(line, self, ctx)
                state = MESI.E
                self.array.update_state(line, state)
        if self.children:
            return self._grant_to_child(line, write, requester, state, ctx)
        # Leaf (L1): apply the access to our own copy.
        if write:
            state = MESI.M
            self.array.update_state(line, state)
        return state

    def _fetch_and_fill(self, line, write, ctx):
        """Miss path: fetch from parent, fill, handle the victim."""
        parent, net = self.parent_select(line)
        if self.noc_routes is not None:
            route = self.noc_routes.get(
                (self.tile, getattr(parent, "tile", self.tile)))
            if route is not None:
                ctx.add_step_at(route, ctx.latency, StepKind.NOC)
        ctx.latency += net
        granted = parent.handle_access(line, write, self, ctx)
        victim, vstate = self.array.fill(line, granted)
        if victim is not None:
            self._evict(victim, vstate, ctx)
        return granted

    def prefetch_fill(self, line, ctx):
        """Bring ``line`` into this cache without a requesting child
        (hardware prefetch).  No directory entry is created — the first
        demand access installs sharers as usual.  Returns True if a fill
        happened (False on a prefetch hit)."""
        if self.array.lookup(line, touch=False) is not None:
            return False
        self.prefetch_fills += 1
        self._fetch_and_fill(line, False, ctx)
        return True

    def acquire_exclusive(self, line, requester, ctx):
        """Upgrade request from ``requester``: invalidate every other copy
        below this level and ensure this level itself is exclusive."""
        dirty = False
        for child in list(self._sharers.get(line, ())):
            if child is not requester:
                dirty |= child.invalidate_subtree(line, ctx)
                ctx.latency += self.down_latency
                ctx.invalidations += 1
        state = self.array.lookup(line, touch=False)
        if state == MESI.S:
            parent, net = self.parent_select(line)
            ctx.latency += net
            parent.acquire_exclusive(line, self, ctx)
            state = MESI.E
        if dirty and state == MESI.E:
            state = MESI.M
        if state is not None:
            self.array.update_state(line, state)
        self._sharers[line] = {requester}
        self._owner[line] = requester

    def child_evicted(self, line, child, dirty, ctx):
        """A child evicted its copy (writeback if dirty)."""
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(child)
            if not sharers:
                del self._sharers[line]
        if self._owner.get(line) is child:
            del self._owner[line]
        if dirty:
            # Dirty data lands in this cache; inclusion guarantees the
            # line is resident.
            state = self.array.lookup(line, touch=False)
            if state is not None:
                self.array.update_state(line, MESI.M)

    # ------------------------------------------------------------------
    # Coherence actions from above (the "down" path)
    # ------------------------------------------------------------------

    def invalidate_subtree(self, line, ctx=None):
        """Invalidate this cache's copy and every copy below.  Returns
        True if any invalidated copy was dirty."""
        dirty = False
        for child in self._clear_directory(line):
            dirty |= child.invalidate_subtree(line, ctx)
        state = self.array.invalidate(line)
        if state is not None:
            self.invalidations += 1
            dirty |= state == MESI.M
        return dirty

    def downgrade_subtree(self, line, ctx=None):
        """Downgrade this cache's copy (and the owning subtree) to S.
        Returns True if dirty data was flushed."""
        dirty = False
        owner = self._owner.pop(line, None)
        if owner is not None:
            dirty |= owner.downgrade_subtree(line, ctx)
        state = self.array.lookup(line, touch=False)
        if state is not None and state != MESI.S:
            self.downgrades += 1
            dirty |= state == MESI.M
            self.array.update_state(line, MESI.S)
        return dirty

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grant_to_child(self, line, write, requester, own_state, ctx):
        """Directory bookkeeping: decide the child's granted state and
        invalidate/downgrade other children as needed."""
        sharers = self._sharers.setdefault(line, set())
        if write:
            dirty = False
            for child in list(sharers):
                if child is not requester:
                    dirty |= child.invalidate_subtree(line, ctx)
                    ctx.latency += self.down_latency
                    ctx.invalidations += 1
            sharers.clear()
            sharers.add(requester)
            self._owner[line] = requester
            if dirty:
                self.array.update_state(line, MESI.M)
            return MESI.E
        owner = self._owner.get(line)
        if owner is not None and owner is not requester:
            dirty = owner.downgrade_subtree(line, ctx)
            ctx.latency += self.down_latency
            del self._owner[line]
            if dirty:
                self.array.update_state(line, MESI.M)
                own_state = MESI.M
        sharers.add(requester)
        if len(sharers) == 1 and own_state in (MESI.E, MESI.M):
            self._owner[line] = requester
            return MESI.E
        return MESI.S

    def _evict(self, line, state, ctx):
        """Evict ``line`` (inclusive: purge the subtree below first)."""
        self.evictions += 1
        if ctx is not None and self.children:
            # Shared-cache victims feed the interference profiler's
            # eviction-driven path-altering class (Figure 2).
            ctx.shared_evictions += (line,)
        dirty = state == MESI.M
        for child in self._clear_directory(line):
            dirty |= child.invalidate_subtree(line, ctx)
        parent, _net = self.parent_select(line)
        parent.child_evicted(line, self, dirty, ctx)
        if dirty:
            self.writebacks += 1

    def _clear_directory(self, line):
        """Drop all directory state for ``line``; returns prior sharers."""
        sharers = self._sharers.pop(line, set())
        self._owner.pop(line, None)
        return sharers

    # ------------------------------------------------------------------
    # Introspection (tests, stats)
    # ------------------------------------------------------------------

    def line_state(self, line):
        """MESI state of ``line`` here (MESI.I if absent); no LRU touch."""
        state = self.array.lookup(line, touch=False)
        return MESI.I if state is None else state

    def sharers_of(self, line):
        return set(self._sharers.get(line, ()))

    def integrity_items(self, deep=False):
        """Digest items for the integrity sentinel: name, hot counters,
        directory sizes, and the array summary; ``deep`` adds the full
        directory contents (children named, never repr'd — object reprs
        would leak host addresses into the digest)."""
        yield self.name
        yield (self.accesses, self.hits, self.misses, self.evictions,
               self.writebacks, self.invalidations, self.downgrades,
               self.upgrades, self.prefetch_fills)
        yield (len(self._sharers), len(self._owner))
        yield from self.array.integrity_items(deep=deep)
        if deep:
            yield tuple(sorted(
                (line, tuple(sorted(child.name for child in children)))
                for line, children in self._sharers.items()))
            yield tuple(sorted((line, owner.name)
                               for line, owner in self._owner.items()))

    def fill_stats(self, node):
        """Dump counters into a :class:`~repro.stats.StatsNode`."""
        node.set("accesses", self.accesses)
        node.set("hits", self.hits)
        node.set("misses", self.misses)
        node.set("evictions", self.evictions)
        node.set("writebacks", self.writebacks)
        node.set("invalidations", self.invalidations)
        node.set("downgrades", self.downgrades)
        node.set("upgrades", self.upgrades)
        node.set("prefetch_fills", self.prefetch_fills)

    def __repr__(self):
        return "Cache(%s)" % self.name


class MainMemory:
    """Terminal level: memory controllers with a directory over the top
    cache level.  The directory is only exercised when the top level is
    not a single shared cache (e.g., multiple per-tile L2s and no L3)."""

    def __init__(self, config, network, num_tiles):
        self.config = config
        self.network = network
        self.num_tiles = num_tiles
        self.level = "mem"
        self.name = "mem"
        self.children = []
        self.down_latency = 0
        #: One weave component per controller, set by the hierarchy.
        self.ctrl_weaves = [None] * config.controllers
        self.noc_routes = None
        self._sharers = {}
        self._owner = {}
        self.reads = 0
        self.writebacks = 0

    def controller_of(self, line):
        return line % self.config.controllers

    def controller_tile(self, ctrl):
        if self.config.controllers >= self.num_tiles:
            return ctrl % self.num_tiles
        stride = self.num_tiles // self.config.controllers
        return (ctrl * stride) % self.num_tiles

    def handle_access(self, line, write, requester, ctx):
        self.reads += 1
        ctrl = self.controller_of(line)
        src_tile = getattr(requester, "tile", 0)
        ctrl_tile = self.controller_tile(ctrl)
        if self.noc_routes is not None and src_tile != ctrl_tile:
            route = self.noc_routes.get((src_tile, ctrl_tile))
            if route is not None:
                ctx.add_step_at(route, ctx.latency, StepKind.NOC)
        ctx.latency += self.network.latency(src_tile, ctrl_tile)
        arrival = ctx.latency
        ctx.latency += self.config.zero_load_latency
        ctx.add_step_at(self.ctrl_weaves[ctrl], arrival, StepKind.READ)
        # Directory over top-level caches (same policy as Cache).
        sharers = self._sharers.setdefault(line, set())
        if write:
            for child in list(sharers):
                if child is not requester:
                    child.invalidate_subtree(line, ctx)
                    ctx.invalidations += 1
            sharers.clear()
            sharers.add(requester)
            self._owner[line] = requester
            return MESI.E
        owner = self._owner.get(line)
        if owner is not None and owner is not requester:
            owner.downgrade_subtree(line, ctx)
            del self._owner[line]
        sharers.add(requester)
        if len(sharers) == 1:
            self._owner[line] = requester
            return MESI.E
        return MESI.S

    def acquire_exclusive(self, line, requester, ctx):
        for child in list(self._sharers.get(line, ())):
            if child is not requester:
                child.invalidate_subtree(line, ctx)
                ctx.invalidations += 1
        self._sharers[line] = {requester}
        self._owner[line] = requester

    def child_evicted(self, line, child, dirty, ctx):
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(child)
            if not sharers:
                del self._sharers[line]
        if self._owner.get(line) is child:
            del self._owner[line]
        if dirty:
            self.writebacks += 1
            ctrl = self.controller_of(line)
            if ctx is not None:
                ctx.add_wback(self.ctrl_weaves[ctrl])

    def integrity_items(self, deep=False):
        """Digest items for the integrity sentinel (same shape as
        :meth:`Cache.integrity_items`, minus the array)."""
        yield self.name
        yield (self.reads, self.writebacks)
        yield (len(self._sharers), len(self._owner))
        if deep:
            yield tuple(sorted(
                (line, tuple(sorted(child.name for child in children)))
                for line, children in self._sharers.items()))
            yield tuple(sorted((line, owner.name)
                               for line, owner in self._owner.items()))

    def fill_stats(self, node):
        node.set("reads", self.reads)
        node.set("writebacks", self.writebacks)

    def __repr__(self):
        return "MainMemory(%d controllers)" % self.config.controllers
