"""Coherent cache models: MESI, inclusive, with in-cache directories.

Mirrors zsim's cache design (Section 3.2.1): each cache composes a fully
decoupled associative array, replacement policy, and coherence controller,
plus an optional weave timing model.  Accesses travel *up* the hierarchy
(fetches, writebacks) and *down* (invalidations, downgrades); coherence is
maintained in the order accesses are simulated in the bound phase, which
is inaccurate only for same-line races — exactly the rare path-altering
interference the bound-weave algorithm tolerates.

Shared caches are banked: each bank is its own :class:`Cache` instance;
all banks of a level share one children list so child identities are
stable across banks.

The coherence walk runs on integers (ISSUE 10): every cache carries a
stable ``child_id`` — its index in its parent level's shared children
list — and directories store **bitmasks over child indices** instead of
sets of cache objects.  Sharer updates are single OR/AND-NOT int ops,
owner lookups are dict-of-int reads, and invalidation/downgrade fan-out
iterates set bits.  Parent routing is a precomputed table
(``_parent_banks`` / ``_parent_net`` / ``_parent_hashed``) installed by
the hierarchy builder — the per-line bank arithmetic is inlined at the
call sites, and the old unpickleable ``parent_select`` closures are gone
(a compatible :meth:`parent_select` method remains for introspection).
"""

from __future__ import annotations

from repro.memory.access import StepKind
from repro.memory.cache_array import CacheArray
from repro.memory.coherence import MESI

_MESI_S = MESI.S
_MESI_E = MESI.E
_MESI_M = MESI.M

_HASH_MULT = 0x9E3779B1


class Cache:
    """One coherent cache (a private cache or one bank of a shared one)."""

    def __init__(self, name, level, num_sets, ways, latency, repl="lru",
                 tile=0, seed=0, hash_sets=False):
        self.name = name
        self.level = level            # "l1i" | "l1d" | "l2" | "l3"
        self.latency = latency
        self.tile = tile
        self.array = CacheArray(num_sets, ways, repl=repl, seed=seed,
                                hash_sets=hash_sets)
        #: Wired by the hierarchy builder:
        self.children = []            # caches below (empty for L1s)
        self.child_id = 0             # index in the parent's children list
        self.down_latency = 0         # cost of inv/downgrade round trip
        self.weave = None             # weave component, shared caches only
        self.noc_routes = None        # (src,dst) -> NoC weave component
        # Routing table (replaces the old parent_select closure): the
        # candidate parent banks, the per-bank zero-load net latency,
        # and whether the line is hashed across banks.  Dropped from
        # pickles (parent references point *up* the hierarchy) and
        # reinstalled by MemoryHierarchy._rewire_parents.
        self._parent_banks = None     # tuple of parent objects
        self._parent_net = None       # tuple of ints, same order
        self._parent_hashed = False
        # In-cache directory over children (bitmasks of child indices).
        self._sharers = {}            # line -> int bitmask of child ids
        self._owner = {}              # line -> child id holding E/M
        # Stats (plain attributes: these are hot counters).
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0           # dirty evictions sent to parent
        self.invalidations = 0        # lines invalidated from above
        self.downgrades = 0
        self.upgrades = 0             # S->E transitions requested
        self.prefetch_fills = 0
        #: Host-side odometer: bitmask directory reads/updates (one per
        #: grant / upgrade / eviction bookkeeping op).  Surfaced under
        #: stats()["host"]["dbt"]["dir_bitmask_ops"]; never digested.
        self.dir_ops = 0

    def __getstate__(self):
        """The routing table points *up* the hierarchy; shipping it
        would put reference cycles in every capsule.  It is dropped
        here and re-created by ``MemoryHierarchy.__setstate__``
        (checkpoint support), exactly like the closures it replaced."""
        state = self.__dict__.copy()
        state["_parent_banks"] = None
        state["_parent_net"] = None
        state.pop("parent_select", None)  # legacy instance attribute
        return state

    def __setstate__(self, state):
        """Restore, migrating legacy capsules (ISSUE 10): checkpoints
        written before the bitmask directories hold ``_sharers`` as
        line -> set-of-child-Cache and ``_owner`` as line -> Cache;
        both convert to child-index form via the pickled children list
        (the same order the ids are assigned from)."""
        state.pop("parent_select", None)  # pre-table capsules store None
        self.__dict__.update(state)
        d = self.__dict__
        d.setdefault("child_id", 0)
        d.setdefault("dir_ops", 0)
        d.setdefault("_parent_banks", None)
        d.setdefault("_parent_net", None)
        d.setdefault("_parent_hashed", False)
        sharers = self._sharers
        if any(not isinstance(mask, int) for mask in sharers.values()):
            index = {id(child): i for i, child in enumerate(self.children)}
            self._sharers = {
                line: sum(1 << index[id(child)] for child in members)
                for line, members in sharers.items()}
            self._owner = {line: index[id(owner)]
                           for line, owner in self._owner.items()}

    # ------------------------------------------------------------------
    # Requests from below (the "up" path)
    # ------------------------------------------------------------------

    def parent_select(self, line):
        """Route ``line`` to its parent: returns ``(parent, net_latency)``.

        Introspection-friendly wrapper over the routing table; the hot
        walk inlines the same arithmetic (see ``_fetch_and_fill``)."""
        banks = self._parent_banks
        if banks is None:
            return None, 0
        if len(banks) == 1:
            return banks[0], self._parent_net[0]
        key = ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8 \
            if self._parent_hashed else line
        idx = key % len(banks)
        return banks[idx], self._parent_net[idx]

    def handle_access(self, line, write, requester, ctx):
        """Serve a GETS/GETX from ``requester`` (a child cache, or None
        when this is an L1 being accessed by a core).  Returns the MESI
        state granted to the requester."""
        self.accesses += 1
        arrival = ctx.latency
        ctx.latency = arrival + self.latency
        array = self.array
        idx = (line % array.num_sets if not array.hash_sets
               else array.set_index(line))
        entry = array._lines[idx].get(line)
        if entry is None:
            self.misses += 1
            ctx.missed_levels.append(self.level)
            if self.weave is not None:
                ctx.steps.append((self.weave, arrival, StepKind.MISS))
            state = self._fetch_and_fill(line, write, ctx)
        else:
            array._repl[idx].touch(entry[0])
            state = entry[1]
            self.hits += 1
            if ctx.hit_level is None:
                ctx.hit_level = self.level
            if self.weave is not None:
                ctx.steps.append((self.weave, arrival, StepKind.HIT))
            if write and state == _MESI_S:
                # Upgrade: gain exclusivity from the parent level.
                self.upgrades += 1
                parent, net = self.parent_select(line)
                ctx.latency += net
                parent.acquire_exclusive(line, self, ctx)
                state = _MESI_E
                array._lines[idx][line] = (entry[0], state)
        if self.children:
            return self._grant_to_child(line, write, requester, state, ctx)
        # Leaf (L1): apply the access to our own copy.
        if write:
            state = _MESI_M
            array._lines[idx][line] = (array._lines[idx][line][0], state)
        return state

    def _fetch_and_fill(self, line, write, ctx):
        """Miss path: fetch from parent, fill, handle the victim."""
        banks = self._parent_banks
        if len(banks) == 1:
            parent = banks[0]
            net = self._parent_net[0]
        else:
            key = ((line * _HASH_MULT) & 0xFFFFFFFF) >> 8 \
                if self._parent_hashed else line
            bank = key % len(banks)
            parent = banks[bank]
            net = self._parent_net[bank]
        if self.noc_routes is not None:
            route = self.noc_routes.get(
                (self.tile, getattr(parent, "tile", self.tile)))
            if route is not None:
                ctx.steps.append((route, ctx.latency, StepKind.NOC))
        ctx.latency += net
        granted = parent.handle_access(line, write, self, ctx)
        victim, vstate = self.array.fill(line, granted)
        if victim is not None:
            self._evict(victim, vstate, ctx)
        return granted

    def prefetch_fill(self, line, ctx):
        """Bring ``line`` into this cache without a requesting child
        (hardware prefetch).  No directory entry is created — the first
        demand access installs sharers as usual.  Returns True if a fill
        happened (False on a prefetch hit)."""
        if self.array.lookup(line, touch=False) is not None:
            return False
        self.prefetch_fills += 1
        self._fetch_and_fill(line, False, ctx)
        return True

    def acquire_exclusive(self, line, requester, ctx):
        """Upgrade request from ``requester``: invalidate every other copy
        below this level and ensure this level itself is exclusive."""
        rid = requester.child_id
        self.dir_ops += 1
        dirty = False
        others = self._sharers.get(line, 0) & ~(1 << rid)
        if others:
            children = self.children
            down = self.down_latency
            while others:
                low = others & -others
                others ^= low
                dirty |= children[low.bit_length() - 1] \
                    .invalidate_subtree(line, ctx)
                ctx.latency += down
                ctx.invalidations += 1
        state = self.array.lookup(line, touch=False)
        if state == _MESI_S:
            parent, net = self.parent_select(line)
            ctx.latency += net
            parent.acquire_exclusive(line, self, ctx)
            state = _MESI_E
        if dirty and state == _MESI_E:
            state = _MESI_M
        if state is not None:
            self.array.update_state(line, state)
        self._sharers[line] = 1 << rid
        self._owner[line] = rid

    def child_evicted(self, line, child, dirty, ctx):
        """A child evicted its copy (writeback if dirty)."""
        self.dir_ops += 1
        sharers = self._sharers
        mask = sharers.get(line)
        if mask is not None:
            mask &= ~(1 << child.child_id)
            if mask:
                sharers[line] = mask
            else:
                del sharers[line]
        if self._owner.get(line) == child.child_id:
            del self._owner[line]
        if dirty:
            # Dirty data lands in this cache; inclusion guarantees the
            # line is resident.
            state = self.array.lookup(line, touch=False)
            if state is not None:
                self.array.update_state(line, _MESI_M)

    # ------------------------------------------------------------------
    # Coherence actions from above (the "down" path)
    # ------------------------------------------------------------------

    def invalidate_subtree(self, line, ctx=None):
        """Invalidate this cache's copy and every copy below.  Returns
        True if any invalidated copy was dirty."""
        dirty = False
        mask = self._clear_directory(line)
        if mask:
            children = self.children
            while mask:
                low = mask & -mask
                mask ^= low
                dirty |= children[low.bit_length() - 1] \
                    .invalidate_subtree(line, ctx)
        state = self.array.invalidate(line)
        if state is not None:
            self.invalidations += 1
            dirty |= state == _MESI_M
        return dirty

    def downgrade_subtree(self, line, ctx=None):
        """Downgrade this cache's copy (and the owning subtree) to S.
        Returns True if dirty data was flushed."""
        dirty = False
        owner = self._owner.pop(line, None)
        if owner is not None:
            dirty |= self.children[owner].downgrade_subtree(line, ctx)
        state = self.array.lookup(line, touch=False)
        if state is not None and state != _MESI_S:
            self.downgrades += 1
            dirty |= state == _MESI_M
            self.array.update_state(line, _MESI_S)
        return dirty

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grant_to_child(self, line, write, requester, own_state, ctx):
        """Directory bookkeeping: decide the child's granted state and
        invalidate/downgrade other children as needed."""
        rid = requester.child_id
        rbit = 1 << rid
        sharers = self._sharers
        mask = sharers.get(line, 0)
        self.dir_ops += 1
        if write:
            dirty = False
            others = mask & ~rbit
            if others:
                children = self.children
                down = self.down_latency
                while others:
                    low = others & -others
                    others ^= low
                    dirty |= children[low.bit_length() - 1] \
                        .invalidate_subtree(line, ctx)
                    ctx.latency += down
                    ctx.invalidations += 1
            sharers[line] = rbit
            self._owner[line] = rid
            if dirty:
                self.array.update_state(line, _MESI_M)
            return _MESI_E
        owner = self._owner.get(line)
        if owner is not None and owner != rid:
            dirty = self.children[owner].downgrade_subtree(line, ctx)
            ctx.latency += self.down_latency
            del self._owner[line]
            if dirty:
                self.array.update_state(line, _MESI_M)
                own_state = _MESI_M
        mask |= rbit
        sharers[line] = mask
        if mask == rbit and own_state >= _MESI_E:
            self._owner[line] = rid
            return _MESI_E
        return _MESI_S

    def _evict(self, line, state, ctx):
        """Evict ``line`` (inclusive: purge the subtree below first)."""
        self.evictions += 1
        if ctx is not None and self.children:
            # Shared-cache victims feed the interference profiler's
            # eviction-driven path-altering class (Figure 2).
            ctx.shared_evictions += (line,)
        dirty = state == _MESI_M
        mask = self._clear_directory(line)
        if mask:
            children = self.children
            while mask:
                low = mask & -mask
                mask ^= low
                dirty |= children[low.bit_length() - 1] \
                    .invalidate_subtree(line, ctx)
        parent, _net = self.parent_select(line)
        parent.child_evicted(line, self, dirty, ctx)
        if dirty:
            self.writebacks += 1

    def _clear_directory(self, line):
        """Drop all directory state for ``line``; returns the prior
        sharer bitmask."""
        self._owner.pop(line, None)
        return self._sharers.pop(line, 0)

    # ------------------------------------------------------------------
    # Introspection (tests, stats)
    # ------------------------------------------------------------------

    def line_state(self, line):
        """MESI state of ``line`` here (MESI.I if absent); no LRU touch."""
        state = self.array.lookup(line, touch=False)
        return MESI.I if state is None else state

    def sharers_of(self, line):
        """Sharing children of ``line`` as a set of cache objects
        (bitmask decoded; introspection only)."""
        mask = self._sharers.get(line, 0)
        children = self.children
        members = set()
        while mask:
            low = mask & -mask
            mask ^= low
            members.add(children[low.bit_length() - 1])
        return members

    def owner_of(self, line):
        """Owning child of ``line`` (the one granted E/M), or None."""
        owner = self._owner.get(line)
        return None if owner is None else self.children[owner]

    def integrity_items(self, deep=False):
        """Digest items for the integrity sentinel: name, hot counters,
        directory sizes, and the array summary; ``deep`` adds the full
        directory contents (children named, never repr'd — object reprs
        would leak host addresses into the digest).  The named form also
        keeps deep digests identical across the bitmask migration:
        a converted legacy capsule digests to the same values."""
        yield self.name
        yield (self.accesses, self.hits, self.misses, self.evictions,
               self.writebacks, self.invalidations, self.downgrades,
               self.upgrades, self.prefetch_fills)
        yield (len(self._sharers), len(self._owner))
        yield from self.array.integrity_items(deep=deep)
        if deep:
            yield tuple(sorted(
                (line, tuple(sorted(child.name for child in
                                    self.sharers_of(line))))
                for line in self._sharers))
            children = self.children
            yield tuple(sorted((line, children[owner].name)
                               for line, owner in self._owner.items()))

    def fill_stats(self, node):
        """Dump counters into a :class:`~repro.stats.StatsNode`."""
        node.set("accesses", self.accesses)
        node.set("hits", self.hits)
        node.set("misses", self.misses)
        node.set("evictions", self.evictions)
        node.set("writebacks", self.writebacks)
        node.set("invalidations", self.invalidations)
        node.set("downgrades", self.downgrades)
        node.set("upgrades", self.upgrades)
        node.set("prefetch_fills", self.prefetch_fills)

    def __repr__(self):
        return "Cache(%s)" % self.name


class MainMemory:
    """Terminal level: memory controllers with a directory over the top
    cache level.  The directory is only exercised when the top level is
    not a single shared cache (e.g., multiple per-tile L2s and no L3);
    like :class:`Cache` it is bitmask-over-children (``children`` holds
    every potential requester — the L3 banks, or the top private level
    when there is no L3)."""

    def __init__(self, config, network, num_tiles):
        self.config = config
        self.network = network
        self.num_tiles = num_tiles
        self.level = "mem"
        self.name = "mem"
        self.children = []
        self.down_latency = 0
        #: One weave component per controller, set by the hierarchy.
        self.ctrl_weaves = [None] * config.controllers
        self.noc_routes = None
        # Flat-walk routing tables; MemoryHierarchy._rewire_parents
        # refreshes them (also after unpickle) before any walk runs.
        self._num_ctrls = config.controllers
        self._zero_load = config.zero_load_latency
        self._ctrl_tiles = tuple(self.controller_tile(ctrl)
                                 for ctrl in range(config.controllers))
        self._net_to_ctrl = tuple(
            tuple(network.latency(src, tile) for tile in self._ctrl_tiles)
            for src in range(num_tiles))
        self._sharers = {}            # line -> int bitmask of child ids
        self._owner = {}              # line -> child id
        self.reads = 0
        self.writebacks = 0
        self.dir_ops = 0

    def __setstate__(self, state):
        """Same legacy-capsule migration as :meth:`Cache.__setstate__`.
        Pre-bitmask capsules also ship ``children`` empty when there is
        no L3; ``MemoryHierarchy.__setstate__`` re-wires it before the
        conversion can be needed, so by the time a directory entry
        exists the children list covers every requester."""
        self.__dict__.update(state)
        self.__dict__.setdefault("dir_ops", 0)
        self._migrate_directory()

    def _migrate_directory(self):
        """Convert legacy set-of-objects directory entries to bitmask
        form (idempotent; called from __setstate__ and again by the
        hierarchy once the children list is rebuilt).  Conversion is
        deferred — entries left as sets — while the children list does
        not yet cover every tracked requester (pre-bitmask capsules
        ship ``children`` empty when there is no L3)."""
        sharers = self._sharers
        if all(isinstance(mask, int) for mask in sharers.values()):
            return
        index = {id(child): i for i, child in enumerate(self.children)}
        if any(id(member) not in index
               for members in sharers.values() for member in members):
            return
        self._sharers = {
            line: sum(1 << index[id(child)] for child in members)
            for line, members in sharers.items()}
        self._owner = {line: index[id(owner)]
                       for line, owner in self._owner.items()}

    def controller_of(self, line):
        return line % self.config.controllers

    def controller_tile(self, ctrl):
        if self.config.controllers >= self.num_tiles:
            return ctrl % self.num_tiles
        stride = self.num_tiles // self.config.controllers
        return (ctrl * stride) % self.num_tiles

    def handle_access(self, line, write, requester, ctx):
        self.reads += 1
        ctrl = line % self.config.controllers
        src_tile = getattr(requester, "tile", 0)
        ctrl_tile = self.controller_tile(ctrl)
        if self.noc_routes is not None and src_tile != ctrl_tile:
            route = self.noc_routes.get((src_tile, ctrl_tile))
            if route is not None:
                ctx.steps.append((route, ctx.latency, StepKind.NOC))
        ctx.latency += self.network.latency(src_tile, ctrl_tile)
        arrival = ctx.latency
        ctx.latency += self.config.zero_load_latency
        weave = self.ctrl_weaves[ctrl]
        if weave is not None:
            ctx.steps.append((weave, arrival, StepKind.READ))
        # Directory over top-level caches (same policy as Cache).
        rid = requester.child_id
        rbit = 1 << rid
        sharers = self._sharers
        mask = sharers.get(line, 0)
        self.dir_ops += 1
        if write:
            others = mask & ~rbit
            if others:
                children = self.children
                while others:
                    low = others & -others
                    others ^= low
                    children[low.bit_length() - 1] \
                        .invalidate_subtree(line, ctx)
                    ctx.invalidations += 1
            sharers[line] = rbit
            self._owner[line] = rid
            return _MESI_E
        owner = self._owner.get(line)
        if owner is not None and owner != rid:
            self.children[owner].downgrade_subtree(line, ctx)
            del self._owner[line]
        mask |= rbit
        sharers[line] = mask
        if mask == rbit:
            self._owner[line] = rid
            return _MESI_E
        return _MESI_S

    def acquire_exclusive(self, line, requester, ctx):
        rid = requester.child_id
        self.dir_ops += 1
        others = self._sharers.get(line, 0) & ~(1 << rid)
        if others:
            children = self.children
            while others:
                low = others & -others
                others ^= low
                children[low.bit_length() - 1].invalidate_subtree(line, ctx)
                ctx.invalidations += 1
        self._sharers[line] = 1 << rid
        self._owner[line] = rid

    def child_evicted(self, line, child, dirty, ctx):
        self.dir_ops += 1
        sharers = self._sharers
        mask = sharers.get(line)
        if mask is not None:
            mask &= ~(1 << child.child_id)
            if mask:
                sharers[line] = mask
            else:
                del sharers[line]
        if self._owner.get(line) == child.child_id:
            del self._owner[line]
        if dirty:
            self.writebacks += 1
            if ctx is not None:
                ctx.add_wback(self.ctrl_weaves[line % self.config.controllers])

    def sharers_of(self, line):
        """Sharing top-level caches of ``line`` (introspection only)."""
        mask = self._sharers.get(line, 0)
        children = self.children
        members = set()
        while mask:
            low = mask & -mask
            mask ^= low
            members.add(children[low.bit_length() - 1])
        return members

    def integrity_items(self, deep=False):
        """Digest items for the integrity sentinel (same shape as
        :meth:`Cache.integrity_items`, minus the array)."""
        yield self.name
        yield (self.reads, self.writebacks)
        yield (len(self._sharers), len(self._owner))
        if deep:
            yield tuple(sorted(
                (line, tuple(sorted(child.name for child in
                                    self.sharers_of(line))))
                for line in self._sharers))
            children = self.children
            yield tuple(sorted((line, children[owner].name)
                               for line, owner in self._owner.items()))

    def fill_stats(self, node):
        node.set("reads", self.reads)
        node.set("writebacks", self.writebacks)

    def __repr__(self):
        return "MainMemory(%d controllers)" % self.config.controllers
