"""Busy-interval timelines for weave-phase resources.

Weave events from different cores reach a component in rough — not
strict — time order: per-core contention feedback skews core timeframes
across intervals.  A resource modeled as a single "next free cycle"
frontier would serialize a straggler event behind occupancy that lies in
its future, creating spurious delay that compounds interval over
interval.  Instead, each resource tracks its busy *intervals*, so a
request can claim any hole at or after its arrival cycle — the same
property zsim's cycle-granular weave port/bank state has.

Old intervals are pruned behind a horizon; a straggler arriving further
back than the horizon sees a free resource, which errs on the
uncontended (bound-consistent) side.
"""

from __future__ import annotations

from bisect import bisect_right

#: How far back busy history is kept, cycles.
PRUNE_HORIZON = 100_000


class Timeline:
    """Busy intervals of a single-server resource."""

    __slots__ = ("_starts", "_ends", "_pruned_before")

    def __init__(self):
        self._starts = []
        self._ends = []
        self._pruned_before = 0

    def first_gap(self, earliest, duration):
        """Where :meth:`reserve` would land, without mutating."""
        starts, ends = self._starts, self._ends
        idx = bisect_right(starts, earliest)
        if idx > 0 and ends[idx - 1] > earliest:
            candidate = ends[idx - 1]
        else:
            candidate = earliest
        while idx < len(starts) and starts[idx] < candidate + duration:
            if ends[idx] > candidate:
                candidate = ends[idx]
            idx += 1
        return candidate

    def reserve(self, earliest, duration):
        """Claim the first free gap of ``duration`` cycles starting at or
        after ``earliest``; returns the start cycle of the reservation.

        Single pass (ISSUE 10): the gap scan of :meth:`first_gap` is
        inlined, and the scan cursor doubles as the insertion index — at
        scan end every earlier interval starts at or before the landed
        candidate and every later one starts at or beyond
        ``candidate + duration``, which is exactly the
        ``bisect_right(starts, candidate)`` position the two-pass
        version recomputed."""
        if duration <= 0:
            return earliest
        starts, ends = self._starts, self._ends
        if not ends or earliest >= ends[-1]:
            # Lands past all recorded occupancy (the common case when
            # events arrive in rough time order): append, merging with
            # a touching last interval — identical list state to the
            # general path's insert-then-merge.
            if ends and ends[-1] == earliest:
                ends[-1] = earliest + duration
            else:
                starts.append(earliest)
                ends.append(earliest + duration)
            if len(starts) > 64 and earliest - PRUNE_HORIZON > \
                    self._pruned_before:
                self._prune(earliest - PRUNE_HORIZON)
            return earliest
        idx = bisect_right(starts, earliest)
        if idx > 0 and ends[idx - 1] > earliest:
            candidate = ends[idx - 1]
        else:
            candidate = earliest
        n = len(starts)
        while idx < n and starts[idx] < candidate + duration:
            if ends[idx] > candidate:
                candidate = ends[idx]
            idx += 1
        starts.insert(idx, candidate)
        ends.insert(idx, candidate + duration)
        # Merge with touching neighbours (keeps the lists short).
        if idx + 1 < len(starts) and ends[idx] >= starts[idx + 1]:
            ends[idx] = max(ends[idx], ends[idx + 1])
            del starts[idx + 1], ends[idx + 1]
        if idx > 0 and ends[idx - 1] >= starts[idx]:
            ends[idx - 1] = max(ends[idx - 1], ends[idx])
            del starts[idx], ends[idx]
        if len(starts) > 64 and candidate - PRUNE_HORIZON > \
                self._pruned_before:
            self._prune(candidate - PRUNE_HORIZON)
        return candidate

    def _prune(self, before):
        self._pruned_before = before
        ends = self._ends
        if not ends or ends[0] > before:
            # Nothing old enough to cut: a long timeline whose horizon
            # advances every reserve hits this on each call.
            return
        cut = bisect_right(ends, before)
        if cut:
            del self._starts[:cut]
            del ends[:cut]

    def busy_at(self, cycle):
        """Whether the resource is busy at ``cycle`` (for tests)."""
        idx = bisect_right(self._starts, cycle)
        return idx > 0 and self._ends[idx - 1] > cycle

    def __len__(self):
        return len(self._starts)


class MultiTimeline:
    """``count`` identical servers; reservations take the earliest."""

    __slots__ = ("_timelines",)

    def __init__(self, count):
        self._timelines = [Timeline() for _ in range(max(1, count))]

    def reserve(self, earliest, duration):
        timelines = self._timelines
        if len(timelines) == 1:
            return timelines[0].reserve(earliest, duration)
        best = timelines[0]
        best_start = best.first_gap(earliest, duration)
        for timeline in timelines[1:]:
            if best_start == earliest:
                break
            start = timeline.first_gap(earliest, duration)
            if start < best_start:
                best, best_start = timeline, start
        return best.reserve(earliest, duration)
