"""Set-associative cache array, fully decoupled from coherence logic.

The array stores MESI states for lines and answers lookup / fill /
invalidate, delegating victim choice to a replacement policy.  Shared
caches are banked at a level above this (one array per bank).
"""

from __future__ import annotations

import zlib

from repro.memory.coherence import MESI
from repro.memory.replacement import make_policy


class CacheArray:
    """One bank's worth of sets x ways."""

    def __init__(self, num_sets, ways, repl="lru", seed=0,
                 hash_sets=False):
        if num_sets < 1 or ways < 1:
            raise ValueError("Array needs at least one set and one way")
        self.num_sets = num_sets
        #: XOR-fold the upper address bits into the set index (zsim's
        #: hashed arrays): spreads pathological strides across sets.
        self.hash_sets = hash_sets
        self.ways = ways
        # Per set: way index -> (line, state); and line -> way for lookup.
        self._lines = [dict() for _ in range(num_sets)]
        self._ways = [[None] * ways for _ in range(num_sets)]
        self._repl = [make_policy(repl, ways, seed + i)
                      for i in range(num_sets)]
        #: Free ways per set: lets a steady-state fill() (full set) skip
        #: the way scan and go straight to the replacement policy.
        self._free = [ways] * num_sets

    def __setstate__(self, state):
        # Checkpoints written before free-way tracking lack _free:
        # recompute it from the way arrays.
        self.__dict__.update(state)
        if "_free" not in state:
            self._free = [sum(way is None for way in ways)
                          for ways in self._ways]

    def set_index(self, line):
        if self.hash_sets:
            line = line ^ (line // self.num_sets) \
                ^ (line // (self.num_sets * self.num_sets))
        return line % self.num_sets

    def lookup(self, line, touch=True):
        """Return the MESI state of ``line`` or None if not present."""
        idx = self.set_index(line)
        entry = self._lines[idx].get(line)
        if entry is None:
            return None
        way, state = entry
        if touch:
            self._repl[idx].touch(way)
        return state

    def update_state(self, line, state):
        """Change the state of a resident line."""
        idx = self.set_index(line)
        way, _ = self._lines[idx][line]
        self._lines[idx][line] = (way, state)

    def fill(self, line, state):
        """Insert ``line``; returns (victim_line, victim_state) if an
        eviction was needed, else (None, None).  The caller must handle
        the victim (writeback + inclusive invalidations) before relying on
        the fill."""
        idx = self.set_index(line)
        lines = self._lines[idx]
        if line in lines:
            raise ValueError("fill() of already-present line 0x%x" % line)
        ways = self._ways[idx]
        repl = self._repl[idx]
        victim_line = victim_state = None
        if self._free[idx]:
            # Lowest free way, matching the historical scan order.
            way = ways.index(None)
            self._free[idx] -= 1
        else:
            way = repl.victim()
            victim_line = ways[way]
            victim_state = lines[victim_line][1]
            del lines[victim_line]
        ways[way] = line
        lines[line] = (way, state)
        repl.touch(way)
        return victim_line, victim_state

    def invalidate(self, line):
        """Remove ``line``; returns its state, or None if absent."""
        idx = self.set_index(line)
        entry = self._lines[idx].pop(line, None)
        if entry is None:
            return None
        way, state = entry
        self._ways[idx][way] = None
        self._free[idx] += 1
        return state

    def occupancy(self):
        """Total resident lines (for tests and stats)."""
        return sum(len(s) for s in self._lines)

    def resident_lines(self):
        """All resident (line, state) pairs (test/debug helper)."""
        for lines in self._lines:
            for line, (_, state) in lines.items():
                yield line, state

    def integrity_items(self, deep=False):
        """Digest items for the integrity sentinel: geometry, occupancy
        and the free-way vector (cheap, O(sets)); ``deep`` adds the
        full tag+MESI contents, sorted per set so the digest is stable
        across pickle round-trips (see repro.resilience.integrity)."""
        # Occupancy is deliberately NOT summed here: the free-way
        # vector digest below already encodes per-set occupancy
        # exactly, and an O(sets) len() walk at every barrier blows
        # the sentinel's hotpath budget on large L3 arrays.
        free = self._free
        yield (self.num_sets, self.ways,
               zlib.crc32(bytes(free)) & 0xFFFFFFFF
               if self.ways < 256 else tuple(free))
        if deep:
            for idx, lines in enumerate(self._lines):
                if lines:
                    yield (idx, tuple(sorted(
                        (line, way, int(state))
                        for line, (way, state) in lines.items())))

    def audit_invariants(self, component):
        """Bookkeeping invariants the sentinel's auditor checks: the
        free-way count of every set matches its residency, and each
        resident line's way back-pointer agrees with the way array.
        Returns ``(component, excerpt)`` violation pairs."""
        violations = []
        for idx, lines in enumerate(self._lines):
            if self._free[idx] != self.ways - len(lines):
                violations.append(
                    (component,
                     "set %d free-way count %d != %d ways - %d resident"
                     % (idx, self._free[idx], self.ways, len(lines))))
            ways = self._ways[idx]
            for line, (way, _state) in lines.items():
                if ways[way] != line:
                    violations.append(
                        (component,
                         "set %d way %d holds %r but the line map says "
                         "0x%x" % (idx, way, ways[way], line)))
                    break
        return violations

    def would_evict(self, line):
        """Line that filling ``line`` would evict right now, or None.

        Used by the interference profiler to detect eviction-driven
        path-altering interference without mutating the array.
        """
        idx = self.set_index(line)
        lines = self._lines[idx]
        if line in lines:
            return None
        if self._free[idx]:
            return None
        return self._ways[idx][self._repl[idx].victim()]
