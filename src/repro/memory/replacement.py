"""Cache replacement policies.

Each cache set owns one policy instance tracking way metadata.  Policies
are fully decoupled from the associative array (the paper stresses that
zsim's cache models keep array, replacement, and coherence separate for
modularity).
"""

from __future__ import annotations

import random


class ReplacementPolicy:
    """Interface: per-set policy over ``ways`` ways."""

    def __init__(self, ways):
        self.ways = ways

    def touch(self, way):
        """Record a hit/fill on ``way``."""
        raise NotImplementedError

    def victim(self):
        """Pick the way to evict (set is full)."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """True least-recently-used, as per-way recency stamps.

    A touch writes one monotonically increasing stamp (O(1), ISSUE 10 —
    the recency-list representation paid an O(ways) ``list.remove`` on
    the walk's hottest op); the victim is the way with the smallest
    stamp.  Stamps are always distinct, so the victim sequence is
    exactly the recency-list one: initial stamps ``0..ways-1`` make way
    0 the first victim, and every touch moves a way logically to the
    end of the order.
    """

    def __init__(self, ways):
        super().__init__(ways)
        self._stamp = list(range(ways))
        self._clock = ways

    def __setstate__(self, state):
        # Checkpoints written by recency-list builds carry _order (most
        # recent last); its positions are exactly the relative stamps.
        if "_order" in state:
            order = state.pop("_order")
            state["_stamp"] = [0] * len(order)
            for pos, way in enumerate(order):
                state["_stamp"][way] = pos
            state["_clock"] = len(order)
        self.__dict__.update(state)

    def touch(self, way):
        self._stamp[way] = self._clock
        self._clock += 1

    def victim(self):
        stamp = self._stamp
        return stamp.index(min(stamp))


class TreePLRU(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation.

    Ways must be a power of two; the policy keeps a binary tree of
    direction bits.
    """

    def __init__(self, ways):
        if ways & (ways - 1):
            raise ValueError("TreePLRU requires power-of-two ways")
        super().__init__(ways)
        self._bits = [0] * max(1, ways - 1)

    def touch(self, way):
        # Walk from root to the leaf for `way`, pointing bits away from it.
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point at the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point at the left half
                node = 2 * node + 2
                lo = mid
        return None

    def victim(self):
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo


class RandomRepl(ReplacementPolicy):
    """Random replacement with a deterministic per-set RNG."""

    def __init__(self, ways, seed=0):
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way):
        return None

    def victim(self):
        return self._rng.randrange(self.ways)


_POLICIES = {"lru": LRU, "tree": TreePLRU, "random": RandomRepl}


def make_policy(name, ways, seed=0):
    """Instantiate a replacement policy by config name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError("Unknown replacement policy: %r" % (name,))
    if cls is RandomRepl:
        return cls(ways, seed)
    return cls(ways)
