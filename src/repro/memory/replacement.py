"""Cache replacement policies.

Each cache set owns one policy instance tracking way metadata.  Policies
are fully decoupled from the associative array (the paper stresses that
zsim's cache models keep array, replacement, and coherence separate for
modularity).
"""

from __future__ import annotations

import random


class ReplacementPolicy:
    """Interface: per-set policy over ``ways`` ways."""

    def __init__(self, ways):
        self.ways = ways

    def touch(self, way):
        """Record a hit/fill on ``way``."""
        raise NotImplementedError

    def victim(self):
        """Pick the way to evict (set is full)."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """True least-recently-used: recency list of way indices."""

    def __init__(self, ways):
        super().__init__(ways)
        # Most recent at the end. Starts in way order (way 0 is victim).
        self._order = list(range(ways))

    def touch(self, way):
        order = self._order
        order.remove(way)
        order.append(way)

    def victim(self):
        return self._order[0]


class TreePLRU(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation.

    Ways must be a power of two; the policy keeps a binary tree of
    direction bits.
    """

    def __init__(self, ways):
        if ways & (ways - 1):
            raise ValueError("TreePLRU requires power-of-two ways")
        super().__init__(ways)
        self._bits = [0] * max(1, ways - 1)

    def touch(self, way):
        # Walk from root to the leaf for `way`, pointing bits away from it.
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point at the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point at the left half
                node = 2 * node + 2
                lo = mid
        return None

    def victim(self):
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo


class RandomRepl(ReplacementPolicy):
    """Random replacement with a deterministic per-set RNG."""

    def __init__(self, ways, seed=0):
        super().__init__(ways)
        self._rng = random.Random(seed)

    def touch(self, way):
        return None

    def victim(self):
        return self._rng.randrange(self.ways)


_POLICIES = {"lru": LRU, "tree": TreePLRU, "random": RandomRepl}


def make_policy(name, ways, seed=0):
    """Instantiate a replacement policy by config name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError("Unknown replacement policy: %r" % (name,))
    if cls is RandomRepl:
        return cls(ways, seed)
    return cls(ways)
