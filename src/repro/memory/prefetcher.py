"""Hardware stream/stride prefetcher model.

The zsim ecosystem models L2 stream prefetchers; this reproduction needs
one for the same reason the real Westmere does: streaming workloads
(STREAM, libquantum, lbm) pull one line per miss without it, far below
the bandwidth a prefetching machine sustains.

The model is a per-core stride detector over physical pages: each page
tracks its last line and stride; two consecutive accesses with the same
stride arm the entry, after which every access prefetches ``degree``
lines ahead.  Prefetch fills go into the attached cache level off the
demand access's critical path; their memory-system traffic is recorded
so the weave phase charges it to the contended resources.
"""

from __future__ import annotations


class _PageEntry:
    __slots__ = ("last_line", "stride", "confident")

    def __init__(self, line):
        self.last_line = line
        self.stride = 0
        self.confident = False


class StridePrefetcher:
    """Per-core page-stride prefetcher."""

    #: Lines per page (4KB pages, 64B lines).
    PAGE_SHIFT = 6
    #: Tracked pages (fully associative, LRU via dict order).
    TABLE_SIZE = 64

    def __init__(self, degree=2):
        self.degree = max(1, degree)
        self._pages = {}
        self.trained = 0
        self.issued = 0

    def observe(self, line):
        """Record a demand access; returns the lines to prefetch."""
        page = line >> self.PAGE_SHIFT
        entry = self._pages.get(page)
        if entry is None:
            if len(self._pages) >= self.TABLE_SIZE:
                del self._pages[next(iter(self._pages))]
            self._pages[page] = _PageEntry(line)
            return ()
        # LRU touch.
        self._pages[page] = self._pages.pop(page)
        stride = line - entry.last_line
        if stride == 0:
            return ()
        if stride == entry.stride:
            if not entry.confident:
                entry.confident = True
                self.trained += 1
        else:
            entry.stride = stride
            entry.confident = False
        entry.last_line = line
        if not entry.confident:
            return ()
        prefetches = tuple(line + entry.stride * (i + 1)
                           for i in range(self.degree))
        self.issued += len(prefetches)
        return prefetches

    def reset(self):
        self._pages.clear()
        self.trained = 0
        self.issued = 0
