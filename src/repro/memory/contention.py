"""Analytical M/D/1 queueing contention model (the Graphite baseline).

Graphite models memory contention with queuing-theory models evaluated in
the (skewed) forward pass, because out-of-order event arrival precludes
microarchitectural contention models.  The paper (Section 4.1, Figure 6
right) shows this M/D/1 approach is inaccurate on bandwidth-saturating
workloads; we reproduce it as a baseline.

The model tracks the arrival rate over a sliding window and computes the
expected M/D/1 waiting time ``W = S * rho / (2 * (1 - rho))`` on top of
the deterministic service time ``S``.
"""

from __future__ import annotations

from collections import deque


class MD1Model:
    """Sliding-window M/D/1 latency estimator for one service center."""

    #: Load is clamped below 1 so the formula stays finite; queueing
    #: models degrade exactly this way near saturation, which is the
    #: source of their inaccuracy.
    MAX_RHO = 0.98

    def __init__(self, service_cycles, window=2000):
        if service_cycles <= 0:
            raise ValueError("Service time must be positive")
        self.service = service_cycles
        self.window = window
        self._arrivals = deque()
        self.requests = 0
        self.total_wait = 0.0

    def latency(self, cycle):
        """Register an arrival at ``cycle`` and return the modeled total
        latency (service + expected queueing wait)."""
        arrivals = self._arrivals
        horizon = cycle - self.window
        while arrivals and arrivals[0] <= horizon:
            arrivals.popleft()
        arrivals.append(cycle)
        rho = min(self.MAX_RHO,
                  len(arrivals) * self.service / float(self.window))
        wait = self.service * rho / (2.0 * (1.0 - rho))
        self.requests += 1
        self.total_wait += wait
        return int(round(self.service + wait))

    @property
    def mean_wait(self):
        if self.requests == 0:
            return 0.0
        return self.total_wait / self.requests

    def reset(self):
        self._arrivals.clear()
        self.requests = 0
        self.total_wait = 0.0
