"""Access context threaded through the memory hierarchy.

Every core memory access (ifetch, load, store) carries one
:class:`AccessContext` down the hierarchy.  It accumulates the zero-load
latency (the *bound* on the access), the per-level hit/miss record for
stats attribution, and — for accesses that reach contention-modeled
components — the *weave chain*: the ordered list of (component, offset,
kind) steps that the weave phase turns into timed events (Figure 4 of the
paper).
"""

from __future__ import annotations


class StepKind:
    """Weave event kinds, matching the paper's Figure 4 labels."""

    HIT = "HIT"
    MISS = "MISS"
    READ = "READ"
    WBACK = "WBACK"
    RESP = "RESP"
    NOC = "NOC"


class AccessContext:
    """Mutable state for one access's trip through the hierarchy."""

    __slots__ = ("core_id", "line", "write", "ifetch", "latency", "steps",
                 "missed_levels", "hit_level", "invalidations", "wbacks",
                 "shared_evictions")

    def __init__(self, core_id, line, write, ifetch=False):
        self.core_id = core_id
        self.line = line
        self.write = write
        self.ifetch = ifetch
        self.latency = 0
        #: Lines this access evicted from shared caches (fills beyond
        #: the private levels) — the second class of path-altering
        #: interference the paper's Figure 2 characterizes.
        self.shared_evictions = ()
        #: Weave chain: (weave_component, offset_cycles, kind). Offsets are
        #: relative to the cycle the core issues the access and reflect
        #: zero-load timing, i.e. each event's lower bound.
        self.steps = []
        self.missed_levels = []
        self.hit_level = None
        self.invalidations = 0
        #: Off-critical-path writebacks: (weave_component, offset, kind).
        self.wbacks = []

    def reset(self, core_id, line, write, ifetch=False):
        """Reinitialize a slab-recycled context for a new access.

        The list attributes are cleared in place rather than reallocated:
        :class:`AccessResult` copies them into tuples, so nothing retains
        the lists themselves across accesses."""
        self.core_id = core_id
        self.line = line
        self.write = write
        self.ifetch = ifetch
        self.latency = 0
        self.shared_evictions = ()
        self.steps.clear()
        self.missed_levels.clear()
        self.hit_level = None
        self.invalidations = 0
        self.wbacks.clear()

    def add_step(self, weave_component, kind):
        if weave_component is not None:
            self.steps.append((weave_component, self.latency, kind))

    def add_step_at(self, weave_component, offset, kind):
        """Record a weave step at an explicit zero-load offset."""
        if weave_component is not None:
            self.steps.append((weave_component, offset, kind))

    def add_wback(self, weave_component, kind=StepKind.WBACK):
        if weave_component is not None:
            self.wbacks.append((weave_component, self.latency, kind))

    def record_miss(self, level_name):
        self.missed_levels.append(level_name)

    def record_hit(self, level_name):
        if self.hit_level is None:
            self.hit_level = level_name

    @property
    def beyond_private(self):
        """True if the access generated weave-phase events."""
        return bool(self.steps)


class AccessResult:
    """Immutable summary returned to the core timing model."""

    __slots__ = ("latency", "missed_levels", "hit_level", "steps", "wbacks",
                 "line", "write", "core_id", "invalidations",
                 "shared_evictions")

    def __init__(self, ctx):
        self.latency = ctx.latency
        self.missed_levels = tuple(ctx.missed_levels)
        self.hit_level = ctx.hit_level
        self.steps = tuple(ctx.steps)
        self.wbacks = tuple(ctx.wbacks)
        self.line = ctx.line
        self.write = ctx.write
        self.core_id = ctx.core_id
        self.invalidations = ctx.invalidations
        self.shared_evictions = ctx.shared_evictions

    def refill(self, ctx):
        """Rewrite every slot from ``ctx`` — the slab-recycle analogue of
        ``__init__``.  Callers own the instance exclusively (results are
        only recycled once the weave phase has consumed them), so "immutable
        summary" still holds for everyone who can observe one."""
        self.latency = ctx.latency
        self.missed_levels = tuple(ctx.missed_levels)
        self.hit_level = ctx.hit_level
        self.steps = tuple(ctx.steps)
        self.wbacks = tuple(ctx.wbacks)
        self.line = ctx.line
        self.write = ctx.write
        self.core_id = ctx.core_id
        self.invalidations = ctx.invalidations
        self.shared_evictions = ctx.shared_evictions

    @property
    def beyond_private(self):
        return bool(self.steps)

    def missed(self, level_name):
        return level_name in self.missed_levels

    def __repr__(self):
        return ("AccessResult(lat=%d, hit=%s, missed=%s)"
                % (self.latency, self.hit_level, list(self.missed_levels)))
