"""Simulated processes and threads.

zsim runs multiple real processes as one logical simulation by mapping a
shared heap; here processes are simulation objects owning threads.  Each
thread wraps an instrumented functional stream.  Process trees created by
fork()/exec() are captured via the Spawn syscall.
"""

from __future__ import annotations

import itertools


class ThreadState:
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


_thread_ids = itertools.count()
_process_ids = itertools.count(100)


class SimThread:
    """One simulated software thread."""

    def __init__(self, stream, name=None, process=None, affinity=None):
        self.tid = next(_thread_ids)
        self.name = name or "t%d" % self.tid
        self.stream = stream
        self.process = process
        #: Optional set of core ids this thread may run on.
        self.affinity = set(affinity) if affinity is not None else None
        self.state = ThreadState.RUNNABLE
        self.wake_cycle = 0
        self.core = None            # core id while RUNNING
        self.home_core = None       # sticky placement, set by scheduler
        self.run_start_cycle = 0    # for the round-robin quantum
        self.blocked_count = 0
        self.syscall_count = 0
        self.cpu_cycles = 0         # simulated cycles spent on a core
        if process is not None:
            process.threads.append(self)

    def can_run_on(self, core_id):
        return self.affinity is None or core_id in self.affinity

    def __repr__(self):
        return "SimThread(%s, %s)" % (self.name, self.state)


class SimProcess:
    """A simulated process: a thread group with a parent link."""

    def __init__(self, name, parent=None):
        self.pid = next(_process_ids)
        self.name = name
        self.parent = parent
        self.children = []
        self.threads = []
        if parent is not None:
            parent.children.append(self)

    def tree(self):
        """Flatten the process subtree rooted here (fork/exec capture)."""
        out = [self]
        for child in self.children:
            out.extend(child.tree())
        return out

    @property
    def alive(self):
        return any(t.state != ThreadState.DONE for t in self.threads)

    def __repr__(self):
        return "SimProcess(pid=%d, %r, %d threads)" % (
            self.pid, self.name, len(self.threads))
