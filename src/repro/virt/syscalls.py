"""Syscall descriptors for the virtualized user-level OS interface.

Simulated workloads never enter a real kernel; a SYSCALL instruction's
:class:`~repro.isa.program.BBLExec` carries one of these descriptors, and
the scheduler (:mod:`repro.virt.scheduler`) implements its semantics
against simulated time.  The paper's key distinction is preserved:

* *Blocking* syscalls (futex wait, barriers, contended locks, sleeps)
  make the thread **leave** the interval barrier so simulation can
  advance, and **join** again when they return to user code.
* *Non-blocking* syscalls appear to execute instantaneously.
"""

from __future__ import annotations


class Syscall:
    """Base class; ``blocking`` says whether the caller may be suspended."""

    blocking = False

    def __repr__(self):
        fields = ", ".join("%s=%r" % kv for kv in vars(self).items())
        return "%s(%s)" % (type(self).__name__, fields)


class FutexWait(Syscall):
    """Wait on a futex key (semaphore-flavoured: a stored wake token is
    consumed immediately, so wake-before-wait is not lost)."""

    blocking = True

    def __init__(self, key):
        self.key = key


class FutexWake(Syscall):
    """Wake up to ``count`` waiters on ``key``."""

    def __init__(self, key, count=1):
        self.key = key
        self.count = count


class Barrier(Syscall):
    """Synchronization barrier: blocks until ``parties`` threads arrive."""

    blocking = True

    def __init__(self, key, parties):
        self.key = key
        self.parties = parties


class Lock(Syscall):
    """Acquire a mutex; blocks while another thread owns it."""

    blocking = True

    def __init__(self, key):
        self.key = key


class Unlock(Syscall):
    """Release a mutex (must be held by the caller)."""

    def __init__(self, key):
        self.key = key


class Sleep(Syscall):
    """Sleep for ``cycles`` of simulated time (timing virtualization:
    sleeps are linked to simulated, not host, time)."""

    blocking = True

    def __init__(self, cycles):
        self.cycles = cycles


class Spawn(Syscall):
    """fork()/exec()/pthread_create stand-in: add a new thread whose
    functional stream is produced by ``thread_factory()``."""

    def __init__(self, thread_factory):
        self.thread_factory = thread_factory


class ThreadExit(Syscall):
    """Thread termination."""

    blocking = True  # never returns


class ReadSysFile(Syscall):
    """open()+read() of a /proc or /sys path: redirected to the
    pre-generated virtual tree (system virtualization).  The content is
    delivered via ``callback(text_or_None)`` so the functional stream
    can self-tune to the *simulated* machine."""

    def __init__(self, path, callback=None):
        self.path = path
        self.callback = callback


class GetTime(Syscall):
    """clock_gettime / rdtsc-class query; returns simulated time."""


class Yield(Syscall):
    """sched_yield: reschedule without blocking."""
