"""Round-robin user-level scheduler with affinities and futex semantics.

Implements the paper's scheduler (Section 3.3): applications may launch
more threads than simulated cores; a round-robin scheduler with
per-thread affinities time-multiplexes them.  Blocking syscalls *leave*
the interval barrier (their core can run another thread or idle) and
*join* when they complete, avoiding simulator-OS deadlock.

All decisions are made in simulated (bound-phase) cycles, so scheduling
is deterministic for a given workload and configuration.

Execution backends may run bound-phase cores on worker threads (see
:mod:`repro.exec`); every mutating entry point therefore takes the
scheduler lock so a thread handoff (syscall, wake, preemption,
deschedule) is atomic even when the caller is not the engine's driver
thread.  The backends' ordered core handoff keeps the *order* of these
calls serial-equivalent; the lock keeps each call internally consistent
on free-threaded hosts.
"""

from __future__ import annotations

import threading

from collections import deque

from repro.obs.log import get_logger
from repro.obs.tracer import TID_SCHED
from repro.virt.process import SimThread, ThreadState
from repro.virt import syscalls as sc

_log = get_logger("virt.scheduler")


def _locked(method):
    """Run a scheduler entry point under the scheduler lock (see module
    docs: backends may call in from worker threads)."""
    import functools

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)
    return wrapper


class SyscallResult:
    CONTINUE = "continue"   # non-blocking: appears instantaneous
    BLOCKED = "blocked"     # thread left the barrier
    EXITED = "exited"


class Scheduler:
    """Deterministic round-robin scheduler over simulated cores."""

    def __init__(self, num_cores, quantum=50_000, syscall_overhead=100,
                 system_view=None, telemetry=None):
        self.num_cores = num_cores
        self._telem = telemetry
        # Reentrant: handle_syscall wakes waiters, which re-enter
        # internal helpers under the same lock.
        self._lock = threading.RLock()
        self.quantum = quantum
        self.syscall_overhead = syscall_overhead
        #: Optional SystemView serving virtualized /proc reads.
        self.system_view = system_view
        self.threads = []
        self._home_load = [0] * num_cores
        self._run_queue = deque()
        self._running = [None] * num_cores   # core id -> SimThread
        # Futexes: key -> waiters deque; tokens: key -> stored wake count.
        self._futex_waiters = {}
        self._futex_tokens = {}
        # Barriers: key -> (arrived list).
        self._barriers = {}
        # Locks: key -> owner thread; waiters: key -> deque.
        self._lock_owner = {}
        self._lock_waiters = {}
        # Sleepers: list of (wake_cycle, thread), kept sorted lazily.
        self._sleepers = []
        self.context_switches = 0
        self.syscalls_handled = 0

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def __getstate__(self):
        """Scheduler state is plain data except the lock (a host-side
        artifact) and the telemetry context; both are dropped and
        recreated/reattached on load (see repro.resilience)."""
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_telem"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def blocked_report(self):
        """Per-thread blocked-state snapshot for diagnostics (deadlock
        errors, supervisor logs): one dict per live thread."""
        with self._lock:
            return [{"thread": t.name, "state": t.state,
                     "core": t.core, "home_core": t.home_core,
                     "wake_cycle": t.wake_cycle,
                     "blocked_count": t.blocked_count,
                     "syscalls": t.syscall_count}
                    for t in self.live_threads]

    def integrity_items(self):
        """Digest items for the integrity sentinel (called at the
        interval barrier, where the scheduler is quiesced): global
        counters, per-thread scheduling state in registration order,
        queue/slot occupancy, and sync-object summaries.  Threads are
        identified by name — object reprs would leak host addresses
        into the digest.  Sync-object keys may mix types, so sorts key
        on repr."""
        yield (self.num_cores, self.context_switches,
               self.syscalls_handled)
        for t in self.threads:
            yield (t.name, t.state, t.core, t.home_core, t.wake_cycle,
                   t.run_start_cycle, t.cpu_cycles, t.blocked_count,
                   t.syscall_count)
        yield tuple(t.name for t in self._run_queue)
        yield tuple(t.name if t is not None else None
                    for t in self._running)
        yield tuple(sorted(((key, len(waiters)) for key, waiters
                            in self._futex_waiters.items()), key=repr))
        yield tuple(sorted(self._futex_tokens.items(), key=repr))
        yield tuple(sorted(((key, len(arrived)) for key, arrived
                            in self._barriers.items()), key=repr))
        yield tuple(sorted(((key, owner.name) for key, owner
                            in self._lock_owner.items()), key=repr))
        yield tuple(sorted(((key, len(waiters)) for key, waiters
                            in self._lock_waiters.items()), key=repr))
        yield tuple(sorted((cycle, t.name) for cycle, t in self._sleepers))

    def audit_invariants(self):
        """Barrier-time bookkeeping invariants for the integrity
        sentinel's auditor; returns ``(component, excerpt)`` pairs.
        Only structural facts that hold at *every* barrier are checked
        (the run queue may legally hold stale non-runnable entries —
        ``pick_thread`` skips them — so thread states are not
        policed)."""
        violations = []
        with self._lock:
            on_core = {}
            for core_id, thread in enumerate(self._running):
                if thread is None:
                    continue
                if id(thread) in on_core:
                    violations.append(
                        ("sched", "thread %s is running on cores %d "
                         "and %d" % (thread.name, on_core[id(thread)],
                                     core_id)))
                on_core[id(thread)] = core_id
                if thread.core != core_id:
                    violations.append(
                        ("sched", "thread %s occupies core %d but "
                         "records core=%r" % (thread.name, core_id,
                                              thread.core)))
            for thread in self._run_queue:
                if id(thread) in on_core:
                    violations.append(
                        ("sched", "thread %s is both running (core %d) "
                         "and run-queued" % (thread.name,
                                             on_core[id(thread)])))
        return violations

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------

    @_locked
    def add_thread(self, thread):
        if not isinstance(thread, SimThread):
            raise TypeError("add_thread expects a SimThread")
        self.threads.append(thread)
        thread.state = ThreadState.RUNNABLE
        # Home-core assignment: least-loaded core the affinity allows.
        # Threads stay on their home unless it keeps them waiting (see
        # pick_thread), which spreads threads across cores and keeps
        # placement sticky, like a real affinity-aware round-robin.
        candidates = [c for c in range(self.num_cores)
                      if thread.can_run_on(c)]
        if not candidates:
            raise ValueError("Thread %s has an empty affinity set"
                             % thread.name)
        home = min(candidates, key=self._home_load.__getitem__)
        thread.home_core = home
        self._home_load[home] += 1
        self._run_queue.append(thread)
        return thread

    @_locked
    def pick_thread(self, core_id, cycle):
        """Pop the next runnable thread for ``core_id``: its own homed
        threads first (FIFO); a foreign thread may be stolen only when
        its home core is busy running some other thread (work
        conservation without churn)."""
        self._wake_sleepers(cycle)
        queue = self._run_queue
        chosen = None
        for thread in queue:
            if thread.state != ThreadState.RUNNABLE:
                continue
            home = thread.home_core
            if home is None or home == core_id:
                chosen = thread
                break
            if (chosen is None and thread.can_run_on(core_id)
                    and self._running[home] is not None):
                chosen = thread
                # Keep scanning: a homed thread still wins.
        if chosen is None:
            # Drop stale entries opportunistically.
            while queue and queue[0].state != ThreadState.RUNNABLE:
                queue.popleft()
            return None
        queue.remove(chosen)
        chosen.state = ThreadState.RUNNING
        chosen.core = core_id
        chosen.run_start_cycle = max(cycle, chosen.wake_cycle)
        self._running[core_id] = chosen
        self.context_switches += 1
        if self._telem is not None:
            self._sched_event("schedule", chosen,
                              {"core": core_id, "cycle": cycle})
        return chosen

    def attach_telemetry(self, telemetry):
        self._telem = telemetry

    def _sched_event(self, kind, thread, args):
        """One scheduler event (telemetry attached only): a trace
        instant on the scheduler lane plus a counter."""
        telem = self._telem
        args["thread"] = thread.name
        if telem.tracer is not None:
            telem.tracer.instant(kind, "sched", TID_SCHED, args)
        if telem.metrics is not None:
            telem.metrics.inc("sched.%s" % kind)

    @_locked
    def reattach(self, core_id, thread):
        """Put a thread back on its core after a non-blocking syscall."""
        thread.state = ThreadState.RUNNING
        thread.core = core_id
        self._running[core_id] = thread

    def running_thread(self, core_id):
        return self._running[core_id]

    @_locked
    def deschedule(self, core_id, cycle=None):
        """Remove the running thread from a core (it keeps its state);
        with ``cycle``, the thread's CPU time is credited."""
        thread = self._running[core_id]
        self._running[core_id] = None
        if thread is not None:
            thread.core = None
            if cycle is not None and cycle > thread.run_start_cycle:
                thread.cpu_cycles += cycle - thread.run_start_cycle
                thread.run_start_cycle = cycle
        return thread

    @_locked
    def preempt_if_due(self, core_id, cycle):
        """Round-robin: preempt the core's thread at a quantum boundary
        when other runnable threads are waiting.  Returns the preempted
        thread or None."""
        thread = self._running[core_id]
        if thread is None or not self._run_queue:
            return None
        if cycle - thread.run_start_cycle < self.quantum:
            return None
        if not any(t.can_run_on(core_id) for t in self._run_queue):
            return None
        self.deschedule(core_id, cycle)
        thread.state = ThreadState.RUNNABLE
        thread.wake_cycle = cycle
        self._run_queue.append(thread)
        if self._telem is not None:
            self._sched_event("preempt", thread,
                              {"core": core_id, "cycle": cycle})
        return thread

    @_locked
    def runnable_count(self, cycle=None):
        if cycle is not None:
            self._wake_sleepers(cycle)
        return len(self._run_queue)

    @property
    def live_threads(self):
        return [t for t in self.threads if t.state != ThreadState.DONE]

    @property
    def all_done(self):
        return not self.live_threads

    def has_pending_work(self, cycle):
        """True if any thread could run now or later."""
        return bool(self._run_queue or self._sleepers
                    or any(t is not None for t in self._running))

    @_locked
    def wake_sleepers_until(self, cycle):
        """Move sleepers due by ``cycle`` onto the run queue (used by the
        bound phase's second-chance pass within an interval)."""
        self._wake_sleepers(cycle)

    @_locked
    def next_wake_cycle(self):
        """Earliest sleeper wake-up, or None (deadlock detection)."""
        if not self._sleepers:
            return None
        return min(c for c, _ in self._sleepers)

    # ------------------------------------------------------------------
    # Syscall handling
    # ------------------------------------------------------------------

    @_locked
    def handle_syscall(self, thread, syscall, cycle):
        """Apply ``syscall`` issued by ``thread`` at ``cycle``.  Returns a
        :class:`SyscallResult` value."""
        self.syscalls_handled += 1
        thread.syscall_count += 1
        if self._telem is not None and self._telem.metrics is not None:
            self._telem.metrics.inc("sched.syscalls.%s"
                                    % type(syscall).__name__)
        if isinstance(syscall, sc.FutexWait):
            tokens = self._futex_tokens.get(syscall.key, 0)
            if tokens > 0:
                self._futex_tokens[syscall.key] = tokens - 1
                return SyscallResult.CONTINUE
            self._futex_waiters.setdefault(syscall.key,
                                           deque()).append(thread)
            return self._block(thread)
        if isinstance(syscall, sc.FutexWake):
            waiters = self._futex_waiters.get(syscall.key)
            woken = 0
            while waiters and woken < syscall.count:
                self._wake(waiters.popleft(), cycle)
                woken += 1
            if woken < syscall.count:
                self._futex_tokens[syscall.key] = (
                    self._futex_tokens.get(syscall.key, 0)
                    + syscall.count - woken)
            return SyscallResult.CONTINUE
        if isinstance(syscall, sc.Barrier):
            arrived = self._barriers.setdefault(syscall.key, [])
            arrived.append(thread)
            if len(arrived) < syscall.parties:
                return self._block(thread)
            # Last arrival: release everyone at this cycle.
            for waiter in arrived[:-1]:
                self._wake(waiter, cycle)
            del self._barriers[syscall.key]
            return SyscallResult.CONTINUE
        if isinstance(syscall, sc.Lock):
            owner = self._lock_owner.get(syscall.key)
            if owner is None:
                self._lock_owner[syscall.key] = thread
                return SyscallResult.CONTINUE
            self._lock_waiters.setdefault(syscall.key,
                                          deque()).append(thread)
            return self._block(thread)
        if isinstance(syscall, sc.Unlock):
            if self._lock_owner.get(syscall.key) is not thread:
                raise RuntimeError("Unlock of lock %r not held by %r"
                                   % (syscall.key, thread.name))
            waiters = self._lock_waiters.get(syscall.key)
            if waiters:
                successor = waiters.popleft()
                self._lock_owner[syscall.key] = successor
                self._wake(successor, cycle)
            else:
                del self._lock_owner[syscall.key]
            return SyscallResult.CONTINUE
        if isinstance(syscall, sc.Sleep):
            thread.state = ThreadState.BLOCKED
            thread.blocked_count += 1
            self._sleepers.append((cycle + syscall.cycles, thread))
            return SyscallResult.BLOCKED
        if isinstance(syscall, sc.Spawn):
            child = syscall.thread_factory()
            child.wake_cycle = cycle + self.syscall_overhead
            self.add_thread(child)
            return SyscallResult.CONTINUE
        if isinstance(syscall, sc.ThreadExit):
            thread.state = ThreadState.DONE
            return SyscallResult.EXITED
        if isinstance(syscall, sc.ReadSysFile):
            content = (self.system_view.open_path(syscall.path)
                       if self.system_view is not None else None)
            if syscall.callback is not None:
                syscall.callback(content)
            return SyscallResult.CONTINUE
        if isinstance(syscall, (sc.GetTime, sc.Yield)):
            return SyscallResult.CONTINUE
        raise TypeError("Unknown syscall: %r" % (syscall,))

    @_locked
    def thread_done(self, thread):
        thread.state = ThreadState.DONE

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _block(self, thread):
        thread.state = ThreadState.BLOCKED
        thread.blocked_count += 1
        if self._telem is not None:
            self._sched_event("block", thread, {})
        return SyscallResult.BLOCKED

    def _wake(self, thread, cycle):
        thread.state = ThreadState.RUNNABLE
        thread.wake_cycle = cycle + self.syscall_overhead
        self._run_queue.append(thread)
        if self._telem is not None:
            self._sched_event("wake", thread, {"cycle": cycle})

    def _wake_sleepers(self, cycle):
        if not self._sleepers:
            return
        due = [(c, t) for c, t in self._sleepers if c <= cycle]
        if due:
            self._sleepers = [(c, t) for c, t in self._sleepers if c > cycle]
            for wake_cycle, thread in sorted(due, key=lambda x: x[0]):
                thread.state = ThreadState.RUNNABLE
                thread.wake_cycle = wake_cycle
                self._run_queue.append(thread)
