"""System-view virtualization: the simulated machine's /proc and CPUID.

Applications that self-tune to the machine (OpenMP sizing thread pools
from core counts, JVMs reading /proc/cpuinfo, MKL probing CPUID) must see
the *simulated* system, not the host.  The paper redirects /proc and /sys
opens to a pre-generated tree and virtualizes CPUID/getcpu; this module
generates that view from the simulated configuration.
"""

from __future__ import annotations


class SystemView:
    """The guest-visible hardware description of a simulated system."""

    def __init__(self, config):
        self.config = config

    def cpu_count(self):
        """sysconf(_SC_NPROCESSORS_ONLN) for the simulated chip."""
        return self.config.num_cores

    def getcpu(self, thread):
        """The virtualized getcpu() syscall: the simulated core a thread
        runs on (or -1 if descheduled)."""
        core = getattr(thread, "core", None)
        return -1 if core is None else core

    def cpuid(self):
        """A CPUID-like capability dictionary for the simulated chip."""
        cfg = self.config
        return {
            "vendor": "RepSim",
            "model_name": "Simulated %s (%s cores)" % (
                cfg.name, cfg.core.model.upper()),
            "num_cores": cfg.num_cores,
            "freq_mhz": cfg.core.freq_mhz,
            "cache_line_bytes": cfg.l1d.line_bytes,
            "l1d_kb": cfg.l1d.size_kb,
            "l1i_kb": cfg.l1i.size_kb,
            "l2_kb": cfg.l2.size_kb if cfg.l2 else 0,
            "l3_kb": cfg.l3.size_kb if cfg.l3 else 0,
        }

    def proc_cpuinfo(self):
        """A /proc/cpuinfo-shaped text for the simulated system (what an
        open("/proc/cpuinfo") would be redirected to)."""
        info = self.cpuid()
        blocks = []
        for core in range(self.config.num_cores):
            blocks.append("\n".join([
                "processor\t: %d" % core,
                "vendor_id\t: %s" % info["vendor"],
                "model name\t: %s" % info["model_name"],
                "cpu MHz\t\t: %.3f" % float(info["freq_mhz"]),
                "cache size\t: %d KB" % info["l3_kb"],
                "core id\t\t: %d" % core,
                "cpu cores\t: %d" % info["num_cores"],
            ]))
        return "\n\n".join(blocks) + "\n"

    def proc_tree(self):
        """The pre-generated virtual /proc & /sys tree as a path->content
        mapping (the redirect target for open() virtualization)."""
        cpuinfo = self.proc_cpuinfo()
        online = "0-%d" % (self.config.num_cores - 1)
        return {
            "/proc/cpuinfo": cpuinfo,
            "/sys/devices/system/cpu/online": online + "\n",
            "/sys/devices/system/cpu/possible": online + "\n",
            "/proc/stat": "cpu  0 0 0 0\n" + "".join(
                "cpu%d 0 0 0 0\n" % c
                for c in range(self.config.num_cores)),
        }

    def open_path(self, path):
        """Virtualized open(): return guest-visible content for /proc and
        /sys paths, or None for paths that fall through to the host."""
        return self.proc_tree().get(path)
