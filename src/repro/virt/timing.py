"""Timing virtualization: simulated-time clocks.

The paper virtualizes rdtsc, time syscalls/vsyscalls, sleeps, and
timeouts so that instrumented processes see *simulated* time rather than
host time — essential for adaptive algorithms and client-server
protocols with timeouts.  :class:`VirtualClock` is the single source of
guest-visible time in this reproduction.
"""

from __future__ import annotations


class VirtualClock:
    """Maps core cycles to guest-visible timestamps."""

    def __init__(self, freq_mhz):
        if freq_mhz <= 0:
            raise ValueError("Frequency must be positive")
        self.freq_mhz = freq_mhz

    def rdtsc(self, cycle):
        """The virtualized timestamp counter is simply the simulated
        cycle count (TSC ticks at core frequency)."""
        return int(cycle)

    def cycles_to_ns(self, cycles):
        return cycles * 1000.0 / self.freq_mhz

    def ns_to_cycles(self, ns):
        return int(round(ns * self.freq_mhz / 1000.0))

    def cycles_to_us(self, cycles):
        return self.cycles_to_ns(cycles) / 1000.0

    def gettime_ns(self, cycle):
        """clock_gettime(CLOCK_MONOTONIC) against simulated time."""
        return int(self.cycles_to_ns(cycle))

    def timeout_expired(self, start_cycle, now_cycle, timeout_ns):
        """Evaluate a guest timeout purely in simulated time."""
        return self.cycles_to_ns(now_cycle - start_cycle) >= timeout_ns
