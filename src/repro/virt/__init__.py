"""Lightweight user-level virtualization: scheduler, syscalls, clocks."""

from repro.virt.process import SimProcess, SimThread, ThreadState
from repro.virt.scheduler import Scheduler, SyscallResult
from repro.virt.sysview import SystemView
from repro.virt.timing import VirtualClock

__all__ = [
    "Scheduler",
    "SimProcess",
    "SimThread",
    "SyscallResult",
    "SystemView",
    "ThreadState",
    "VirtualClock",
]
