"""Tests for the path-altering interference profiler (Figure 2)."""

from repro.core.interference import InterferenceProfiler
from repro.memory.access import AccessContext, AccessResult


def access(core, line, cycle, write=False, hit=True, invs=0):
    ctx = AccessContext(core, line, write)
    if not hit:
        ctx.record_miss("l1d")
    ctx.invalidations = invs
    return AccessResult(ctx), cycle


class TestClassification:
    def test_single_core_never_interferes(self):
        prof = InterferenceProfiler((1000,))
        for i in range(10):
            prof.record(*access(0, 5, 100 + i, write=True))
        assert prof.interfering[1000] == 0

    def test_cross_core_write_interferes(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=True))
        prof.record(*access(1, 5, 200, write=False))
        assert prof.interfering[1000] == 1

    def test_both_read_hits_excluded(self):
        """Two read hits to the same line are not path-altering."""
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=False, hit=True))
        prof.record(*access(1, 5, 200, write=False, hit=True))
        assert prof.interfering[1000] == 0

    def test_read_miss_pair_interferes(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=False, hit=False))
        prof.record(*access(1, 5, 200, write=False, hit=True))
        assert prof.interfering[1000] == 1

    def test_read_hit_with_invalidations_counts(self):
        """A 'read hit' that triggered coherence actions alters paths."""
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=False, hit=True, invs=1))
        prof.record(*access(1, 5, 200, write=False, hit=True))
        assert prof.interfering[1000] == 1

    def test_different_lines_never_interfere(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=True))
        prof.record(*access(1, 6, 100, write=True))
        assert prof.interfering[1000] == 0


class TestWindows:
    def test_accesses_in_different_windows_do_not_interfere(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 900, write=True))
        prof.record(*access(1, 5, 1100, write=True))  # next window
        assert prof.interfering[1000] == 0

    def test_longer_window_catches_more(self):
        """The same trace shows more interference at longer intervals —
        the monotonicity behind Figure 2."""
        prof = InterferenceProfiler((1000, 10_000))
        prof.record(*access(0, 5, 900, write=True))
        prof.record(*access(1, 5, 1100, write=True))
        assert prof.interfering[1000] == 0
        assert prof.interfering[10_000] == 1

    def test_fraction(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=True))
        prof.record(*access(1, 5, 200, write=True))
        prof.record(*access(1, 99, 300, write=True))
        assert prof.total_accesses == 3
        assert prof.fraction(1000) == 1 / 3


class TestReorderedCount:
    def test_in_order_pair_not_reordered(self):
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 100, write=True))
        prof.record(*access(1, 5, 200, write=True))
        assert prof.interfering[1000] == 1
        assert prof.reordered[1000] == 0

    def test_out_of_order_pair_reordered(self):
        """Simulated later but bound-timed earlier: actually reordered
        (the count zsim uses to pick the interval length)."""
        prof = InterferenceProfiler((1000,))
        prof.record(*access(0, 5, 800, write=True))   # simulated first
        prof.record(*access(1, 5, 200, write=True))   # earlier cycle!
        assert prof.reordered[1000] == 1

    def test_reordered_subset_of_interfering(self):
        import random
        rng = random.Random(2)
        prof = InterferenceProfiler((1000, 10_000))
        for _ in range(500):
            prof.record(*access(rng.randrange(4), rng.randrange(8),
                                rng.randrange(5000),
                                write=rng.random() < 0.5,
                                hit=rng.random() < 0.7))
        for length in (1000, 10_000):
            assert prof.reordered[length] <= prof.interfering[length]


def test_reset():
    prof = InterferenceProfiler((1000,))
    prof.record(*access(0, 5, 100, write=True))
    prof.reset()
    assert prof.total_accesses == 0
    assert prof.fraction(1000) == 0.0
