"""Execution backends: serial/parallel/pipelined/process must produce
identical simulated results (the determinism contract of repro.exec)."""

import copy
import dataclasses

import pytest

from repro.config import (
    BoundWeaveConfig,
    CacheConfig,
    CoreConfig,
    SystemConfig,
    small_test_system,
)
from repro.core import ZSim
from repro.core.simulator import CONTENTION_MODELS, _MD1Memory
from repro.exec import BACKEND_NAMES, make_backend
from repro.exec.parallel import ParallelBackend
from repro.exec.pipelined import PipelinedBackend
from repro.exec.serial import SerialBackend
from repro.stats import assert_equivalent
from repro.workloads import mt_workload


def _multi_tile_config():
    """16 cores over 4 tiles so the weave runs 4 domains (the parallel
    weave path is a no-op with a single domain)."""
    cfg = SystemConfig(
        name="exec-16c",
        num_tiles=4,
        cores_per_tile=4,
        core=CoreConfig(model="simple"),
        l1i=CacheConfig(name="l1i", size_kb=4, ways=2, latency=3),
        l1d=CacheConfig(name="l1d", size_kb=4, ways=4, latency=4),
        l2=CacheConfig(name="l2", size_kb=16, ways=4, latency=7,
                       shared_by=4),
        l2_shared_per_tile=True,
        l3=CacheConfig(name="l3", size_kb=64, ways=8, latency=14, banks=4,
                       shared_by=16),
        boundweave=BoundWeaveConfig(host_threads=4),
    )
    return cfg.validate()


def _hetero_config():
    cfg = small_test_system(num_cores=4)
    return dataclasses.replace(
        cfg, hetero_cores={0: CoreConfig(model="ooo")}).validate()


CONFIGS = {
    "ooo2": lambda: small_test_system(num_cores=2, core_model="ooo"),
    "tiled16": _multi_tile_config,
    "hetero": _hetero_config,
}


def _simulated_stats(config, contention, backend, instrs=25_000):
    wl = mt_workload("blackscholes", scale=1 / 64,
                     num_threads=config.num_cores)
    sim = ZSim(config, threads=wl.make_threads(target_instrs=instrs),
               contention_model=contention, backend=backend)
    result = sim.run()
    return result.stats().to_dict()


class TestBackendEquivalence:
    @pytest.mark.parametrize("contention", CONTENTION_MODELS)
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    def test_backends_match_serial(self, config_name, contention):
        baseline = _simulated_stats(CONFIGS[config_name](), contention,
                                    "serial")
        for backend in ("parallel", "pipelined", "process"):
            tree = _simulated_stats(CONFIGS[config_name](), contention,
                                    backend)
            # The host subtree holds wall-clock measurements, which
            # legitimately differ across backends; everything else is
            # simulated state and must match the serial reference
            # exactly.  assert_equivalent reports the diverged paths.
            assert_equivalent(
                tree, baseline, ignore=("host",),
                context="%s backend vs serial (%s, %s)"
                % (backend, config_name, contention))


class TestBackendSelection:
    def test_default_is_serial(self, tiny_config):
        sim = ZSim(tiny_config)
        assert isinstance(sim.backend, SerialBackend)
        assert sim.host_model.backend_name == "serial"

    def test_config_field_selects_backend(self, tiny_config):
        cfg = dataclasses.replace(
            tiny_config,
            boundweave=dataclasses.replace(tiny_config.boundweave,
                                           backend="parallel"))
        sim = ZSim(cfg)
        assert isinstance(sim.backend, ParallelBackend)
        sim.backend.shutdown()

    def test_explicit_arg_overrides_config(self, tiny_config):
        sim = ZSim(tiny_config, backend="pipelined")
        assert isinstance(sim.backend, PipelinedBackend)
        sim.backend.shutdown()

    def test_unknown_backend_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="backend"):
            ZSim(tiny_config, backend="gpu")
        with pytest.raises(ValueError, match="backend"):
            make_backend("gpu")

    def test_config_validation_rejects_unknown_backend(self, tiny_config):
        cfg = dataclasses.replace(
            tiny_config,
            boundweave=dataclasses.replace(tiny_config.boundweave,
                                           backend="gpu"))
        with pytest.raises(ValueError, match="backend"):
            cfg.validate()

    def test_backend_names_registry(self):
        assert BACKEND_NAMES == ("serial", "parallel", "pipelined",
                                 "process")
        for name in BACKEND_NAMES:
            assert make_backend(name).name == name


class TestMD1MemoryAttributeSafety:
    def test_missing_dunder_raises_attribute_error(self, tiny_config):
        sim = ZSim(tiny_config, contention_model="md1")
        with pytest.raises(AttributeError):
            sim.mem.__getstate__missing__  # noqa: B018

    def test_half_built_instance_does_not_recurse(self):
        mem = _MD1Memory.__new__(_MD1Memory)
        with pytest.raises(AttributeError):
            mem.hierarchy

    def test_copyable(self, tiny_config):
        sim = ZSim(tiny_config, contention_model="md1")
        clone = copy.copy(sim.mem)
        assert clone.hierarchy is sim.mem.hierarchy

    def test_delegation_still_works(self, tiny_config):
        sim = ZSim(tiny_config, contention_model="md1")
        assert sim.mem.config is tiny_config


class TestBackendObservability:
    def test_parallel_reports_worker_idle(self):
        from repro.obs import Telemetry
        cfg = _multi_tile_config()
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=cfg.num_cores)
        telemetry = Telemetry(trace=False, metrics=True)
        sim = ZSim(cfg, threads=wl.make_threads(target_instrs=20_000),
                   backend="parallel", telemetry=telemetry)
        sim.run()
        hist = telemetry.metrics.histogram("exec.worker_idle_us")
        assert hist.count > 0

    def test_pipelined_reports_measured_and_modeled_speedup(self,
                                                            tiny_config):
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=tiny_config.num_cores)
        sim = ZSim(tiny_config,
                   threads=wl.make_threads(target_instrs=25_000),
                   backend="pipelined")
        result = sim.run()
        host = result.stats().to_dict()["host"]
        assert host["backend"] == "pipelined"
        assert host["measured_wall_seconds"] > 0
        assert host["measured_speedup"] > 0
        assert "x1" in host["speedup"]
        assert "x1" in host["pipelined_speedup"]

    def test_shutdown_is_idempotent_and_restartable(self, tiny_config):
        sim = ZSim(tiny_config, backend="parallel")
        wl = mt_workload("blackscholes", scale=1 / 64,
                         num_threads=tiny_config.num_cores)
        for thread in wl.make_threads(target_instrs=5_000):
            sim.add_thread(thread)
        sim.run(max_intervals=3)   # run() shuts the backend down
        sim.backend.shutdown()     # second shutdown is a no-op
        sim.run(max_intervals=3)   # pools respawn lazily
        sim.backend.shutdown()
