"""The stats-diff equivalence oracle (repro.stats.diff) and its CLI.

``diff_trees`` is what the backend-determinism tests and CI stand on:
typed per-path mismatch reporting instead of a wall of dict repr, with
subtree pruning (``--ignore host``) and a relative tolerance for the
few legitimately approximate consumers.
"""

import json

import pytest

from repro.cli import main
from repro.stats import (
    DiffResult,
    assert_equivalent,
    diff_trees,
    load_tree,
)

TREE = {
    "cores": {
        "core0": {"cycles": 1000, "instrs": 800},
        "core1": {"cycles": 1000, "instrs": 790},
    },
    "caches": {"l1d": {"hits": 500, "misses": 20}},
    "host": {"wall_seconds": 1.25, "backend": "serial"},
}


def _clone(tree=TREE):
    return json.loads(json.dumps(tree))


class TestDiffTrees:
    def test_identical_trees_are_equivalent(self):
        result = diff_trees(TREE, _clone())
        assert result.equivalent
        assert bool(result)
        assert result.paths_compared == 8
        assert "identical: 8 leaf paths" in result.render()

    def test_value_mismatch_reports_path_and_delta(self):
        other = _clone()
        other["cores"]["core1"]["instrs"] = 795
        result = diff_trees(TREE, other)
        assert not result.equivalent
        (mismatch,) = result.mismatches
        assert mismatch.path == "cores.core1.instrs"
        assert mismatch.kind == "value"
        assert mismatch.delta == -5
        assert "cores.core1.instrs" in result.render()

    def test_missing_and_extra_paths_are_typed(self):
        other = _clone()
        del other["caches"]["l1d"]["misses"]
        other["caches"]["l2"] = {"hits": 1}
        result = diff_trees(TREE, other)
        kinds = {m.path: m.kind for m in result.mismatches}
        assert kinds == {"caches.l1d.misses": "extra",
                        "caches.l2": "missing"}

    def test_scalar_vs_subtree_is_a_type_mismatch(self):
        other = _clone()
        other["caches"]["l1d"] = 520
        result = diff_trees(TREE, other)
        (mismatch,) = result.mismatches
        assert (mismatch.path, mismatch.kind) == ("caches.l1d", "type")

    def test_relative_tolerance_bounds_numeric_drift(self):
        other = _clone()
        other["cores"]["core0"]["cycles"] = 1009  # 0.9% off
        assert not diff_trees(TREE, other).equivalent
        assert diff_trees(TREE, other, tolerance=0.01).equivalent
        assert not diff_trees(TREE, other, tolerance=0.001).equivalent

    def test_non_numeric_values_never_tolerance_match(self):
        a = {"backend": "serial"}
        b = {"backend": "process"}
        assert not diff_trees(a, b, tolerance=0.5).equivalent

    def test_ignore_prunes_subtrees_at_any_depth(self):
        other = _clone()
        other["host"]["wall_seconds"] = 99.0         # top-level host
        other["cores"]["core0"]["host"] = {"x": 1}   # nested host
        result = diff_trees(TREE, other, ignore=("host",))
        assert result.equivalent
        # Pruned subtrees do not inflate the coverage count.
        assert result.paths_compared == 6

    def test_render_caps_the_mismatch_list(self):
        a = {str(i): i for i in range(20)}
        b = {str(i): i + 1 for i in range(20)}
        result = diff_trees(a, b)
        text = result.render(max_report=5)
        assert "20 mismatch(es)" in text
        assert "... and 15 more" in text

    def test_empty_trees_are_equivalent(self):
        result = diff_trees({}, {})
        assert result.equivalent
        assert result.paths_compared == 0


class TestAssertEquivalent:
    def test_passes_and_returns_the_result(self):
        result = assert_equivalent(TREE, _clone())
        assert isinstance(result, DiffResult)
        assert result.equivalent

    def test_failure_names_the_diverged_path_and_context(self):
        other = _clone()
        other["caches"]["l1d"]["hits"] = 501
        with pytest.raises(AssertionError) as excinfo:
            assert_equivalent(TREE, other, context="unit test")
        text = str(excinfo.value)
        assert text.startswith("unit test: ")
        assert "caches.l1d.hits" in text

    def test_ignore_and_tolerance_pass_through(self):
        other = _clone()
        other["host"]["wall_seconds"] = 9.0
        other["cores"]["core0"]["cycles"] = 1001
        assert_equivalent(TREE, other, tolerance=0.01, ignore=("host",))


class TestLoadTree:
    def test_reads_a_bare_tree(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(TREE))
        assert load_tree(str(path)) == TREE

    def test_unwraps_the_stats_envelope(self, tmp_path):
        path = tmp_path / "envelope.json"
        path.write_text(json.dumps({"stats": TREE, "meta": {"x": 1}}))
        assert load_tree(str(path)) == TREE


class TestDiffCLI:
    """``repro diff`` exit codes: 0 equivalent/within tolerance,
    1 divergent — the contract CI scripts on."""

    def _write(self, tmp_path, name, tree):
        path = tmp_path / name
        path.write_text(json.dumps(tree))
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", TREE)
        b = self._write(tmp_path, "b.json", _clone())
        assert main(["diff", a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_exits_one_and_reports_paths(self, tmp_path,
                                                   capsys):
        other = _clone()
        other["cores"]["core0"]["instrs"] = 801
        a = self._write(tmp_path, "a.json", TREE)
        b = self._write(tmp_path, "b.json", other)
        assert main(["diff", a, b]) == 1
        assert "cores.core0.instrs" in capsys.readouterr().out

    def test_tolerance_flag_accepts_drift(self, tmp_path):
        other = _clone()
        other["cores"]["core0"]["cycles"] = 1005
        a = self._write(tmp_path, "a.json", TREE)
        b = self._write(tmp_path, "b.json", other)
        assert main(["diff", a, b]) == 1
        assert main(["diff", a, b, "--tolerance", "0.01"]) == 0

    def test_ignore_flag_prunes_host(self, tmp_path):
        other = _clone()
        other["host"]["wall_seconds"] = 77.0
        a = self._write(tmp_path, "a.json", TREE)
        b = self._write(tmp_path, "b.json", other)
        assert main(["diff", a, b]) == 1
        assert main(["diff", a, b, "--ignore", "host"]) == 0

    def test_missing_file_is_a_clean_error(self, tmp_path):
        a = self._write(tmp_path, "a.json", TREE)
        with pytest.raises(SystemExit, match="could not read"):
            main(["diff", a, str(tmp_path / "nope.json")])
