"""Crash-tolerant experiment campaigns (repro.fleet).

The headline property is the chaos guarantee: with worker runs *and*
the orchestrator SIGKILLed at arbitrary points, ``repro fleet resume``
completes every non-quarantined job exactly once, never re-runs a
completed job, and every job's stats tree is identical (modulo ``host``)
to a serial in-process run of the same spec.  The property test at the
bottom kills the orchestrator at random offsets and checks exactly that.
"""

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.errors import CheckpointError, FleetError
from repro.fleet import (
    FleetOrchestrator,
    Journal,
    SweepSpec,
    read_journal,
)
from repro.harness.sweeps import SWEEP_NAMES, build_sweep
from repro.obs import FlightRecorder
from repro.resilience import (
    Checkpointer,
    DecorrelatedJitter,
    read_latest_checkpoint,
)
from repro.resilience.checkpoint import FORMAT_VERSION, MAGIC
from repro.stats import diff_trees, load_tree

#: A tiny but real sweep: two seeds of the same workload on the test
#: system.  Small enough for CI, large enough to exercise concurrency.
TINY_SPEC = {
    "name": "tiny",
    "defaults": {"config": "test", "cores": 2, "instrs": 3000,
                 "scale": 0.03125, "workload": "blackscholes"},
    "grid": {"seed": [0, 1]},
}


def _orchestrate(tmp_path, spec=None, resume=False, **knobs):
    knobs.setdefault("workers", 2)
    knobs.setdefault("backoff_base_s", 0.05)
    knobs.setdefault("term_grace_s", 2.0)
    return FleetOrchestrator(str(tmp_path / "camp"),
                             spec_data=spec, resume=resume, **knobs)


def _serial_stats(tmp_path, job):
    """The oracle: run the job's exact argv in-process, serially."""
    out = str(tmp_path / ("oracle-%s.json" % job.job_id))
    assert main(job.run_argv() + ["--stats-json", out,
                                  "--no-flight"]) == 0
    return out


def _assert_matches_oracle(tmp_path, orchestrator):
    for job in orchestrator.spec.jobs:
        fleet_stats = os.path.join(orchestrator.directory, "jobs",
                                   job.job_id, "stats.json")
        oracle = _serial_stats(tmp_path, job)
        result = diff_trees(load_tree(oracle), load_tree(fleet_stats),
                            ignore=["host"])
        assert result.equivalent, (
            "job %s diverged from the serial oracle:\n%s"
            % (job.job_id, result.render()))


class TestSweepSpec:
    def test_grid_expansion_is_deterministic(self):
        spec = SweepSpec.from_dict(TINY_SPEC)
        again = SweepSpec.from_dict(json.loads(json.dumps(TINY_SPEC)))
        assert [j.job_id for j in spec.jobs] == \
            [j.job_id for j in again.jobs]
        assert len(spec) == 2
        assert spec.jobs[0].params["seed"] == 0

    def test_cartesian_product_over_sorted_axes(self):
        spec = SweepSpec.from_dict({
            "defaults": {"workload": "mcf"},
            "grid": {"seed": [0, 1], "cores": [1, 2]},
        })
        assert len(spec) == 4
        # Axes iterate sorted (cores before seed), so cores is the
        # outer loop.
        assert [(j.params["cores"], j.params["seed"])
                for j in spec.jobs] == [(1, 0), (1, 1), (2, 0), (2, 1)]

    def test_run_argv_round_trips_through_the_cli_parser(self):
        from repro.cli import build_parser
        spec = SweepSpec.from_dict(TINY_SPEC)
        args = build_parser().parse_args(spec.jobs[1].run_argv())
        assert args.workload == "blackscholes"
        assert args.seed_offset == 1

    def test_rejects_unknown_parameters_and_missing_workload(self):
        with pytest.raises(FleetError, match="unknown job parameter"):
            SweepSpec.from_dict({"defaults": {"workload": "mcf",
                                              "frobnicate": 1}})
        with pytest.raises(FleetError, match="no workload"):
            SweepSpec.from_dict({"defaults": {"cores": 2}})

    def test_rejects_duplicate_jobs_and_empty_sweeps(self):
        with pytest.raises(FleetError, match="duplicate"):
            SweepSpec.from_dict({"jobs": [{"workload": "mcf"},
                                          {"workload": "mcf"}]})
        with pytest.raises(FleetError, match="zero jobs"):
            SweepSpec.from_dict({"name": "empty"})

    def test_canned_sweeps_expand(self):
        for name in SWEEP_NAMES:
            data = build_sweep(name, limit=2, seeds=2)
            spec = SweepSpec.from_dict(data)
            assert len(spec) >= 2
            for job in spec.jobs:
                assert job.params["seed"] in (0, 1)


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append("campaign", name="t")
        journal.append("start", job="j0", attempt=1)
        journal.close()
        records, skipped = read_journal(path)
        assert skipped == 0
        assert [r["event"] for r in records] == ["campaign", "start"]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append("campaign", name="t")
        journal.append("start", job="j0", attempt=1)
        journal.close()
        with open(path, "ab") as fh:  # SIGKILL mid-append
            fh.write(b'{"event":"exit","job":"j0","at')
        records, skipped = read_journal(path)
        assert skipped == 1
        assert [r["event"] for r in records] == ["campaign", "start"]

    def test_rotation_compacts_and_prunes_stale_temps(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        stale = str(tmp_path / "j.jsonl.12345.tmp")
        with open(stale, "w") as fh:  # a killed rotation's leftovers
            fh.write("garbage")
        journal = Journal(path, rotate_bytes=4096)
        assert not os.path.exists(stale)
        for index in range(200):
            journal.append("exit", job="j%03d" % index, attempt=1)
        snapshot = [{"event": "state", "job": "j0", "state": "done"}]
        assert journal.maybe_rotate(lambda: snapshot)
        assert journal.rotations == 1
        # The journal stays appendable after rotation.
        journal.append("drain", reason="test")
        journal.close()
        records, skipped = read_journal(path)
        assert skipped == 0
        assert [r["event"] for r in records] == ["state", "drain"]

    def test_rotation_below_threshold_never_snapshots(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        journal.append("campaign", name="t")
        assert not journal.maybe_rotate(
            lambda: pytest.fail("snapshot taken below threshold"))
        journal.close()


class TestBackoff:
    def test_window_and_determinism(self):
        jitter = DecorrelatedJitter(0.5, seed=7)
        draws = [jitter.next() for _ in range(32)]
        assert all(0.5 <= d <= 4.0 for d in draws)
        again = DecorrelatedJitter(0.5, seed=7)
        assert [again.next() for _ in range(32)] == draws

    def test_reset_restarts_the_window(self):
        # reset() shrinks the decorrelated window back to the base
        # (the RNG stream keeps advancing: draws stay decorrelated).
        jitter = DecorrelatedJitter(0.5, seed=7)
        for _ in range(16):
            jitter.next()
        jitter.reset()
        assert 0.5 <= jitter.next() <= 1.5


class TestCheckpointFallback:
    @staticmethod
    def _write_capsule(path, interval):
        # A well-formed capsule file without a real simulator: the
        # fallback decision rides on the header (magic, version, CRC),
        # which is all these tests corrupt.
        import pickle
        import zlib
        capsule = {"version": FORMAT_VERSION, "interval": interval,
                   "sim": pickle.dumps({"fake": True})}
        body = pickle.dumps(capsule)
        header = b"%s %d %08x\n" % (MAGIC, FORMAT_VERSION,
                                    zlib.crc32(body) & 0xFFFFFFFF)
        with open(path, "wb") as fh:
            fh.write(header + body)

    def _write_two(self, tmp_path):
        newest = str(tmp_path / "ckpt-x-00000004.pkl")
        older = str(tmp_path / "ckpt-x-00000002.pkl")
        self._write_capsule(older, 2)
        self._write_capsule(newest, 4)
        return older, newest

    def test_falls_back_past_a_corrupt_newest(self, tmp_path):
        older, newest = self._write_two(tmp_path)
        with open(newest, "r+b") as fh:  # truncate mid-body
            fh.truncate(20)
        flight = FlightRecorder()
        path, capsule = read_latest_checkpoint(str(tmp_path),
                                               flight=flight)
        assert path == older
        assert capsule["interval"] == 2
        assert any(e["kind"] == "checkpoint_fallback"
                   for e in flight.events())

    def test_raises_only_when_no_candidate_is_valid(self, tmp_path):
        older, newest = self._write_two(tmp_path)
        for path in (older, newest):
            with open(path, "r+b") as fh:
                fh.truncate(20)
        with pytest.raises(CheckpointError, match="all 2 candidate"):
            read_latest_checkpoint(str(tmp_path))
        with pytest.raises(CheckpointError, match="no checkpoints"):
            read_latest_checkpoint(str(tmp_path / "empty"))


class TestOrphanCleanup:
    def test_checkpointer_prunes_only_its_own_temps(self, tmp_path):
        mine = str(tmp_path / "ckpt-run1-00000003.pkl.999.tmp")
        other = str(tmp_path / "ckpt-run2-00000003.pkl.999.tmp")
        for path in (mine, other):
            with open(path, "w") as fh:
                fh.write("stale")
        Checkpointer(str(tmp_path), run_id="run1")
        assert not os.path.exists(mine)
        assert os.path.exists(other)

    def test_monitor_prunes_stale_status_temps(self, tmp_path):
        from repro.obs.monitor import prune_status_orphans
        status = str(tmp_path / "status.json")
        stale = status + ".4242.tmp"
        unrelated = str(tmp_path / "other.json.4242.tmp")
        for path in (stale, unrelated):
            with open(path, "w") as fh:
                fh.write("{}")
        prune_status_orphans(status)
        assert not os.path.exists(stale)
        assert os.path.exists(unrelated)


class TestReportRobustness:
    def _capsule_dir(self, tmp_path):
        flight = FlightRecorder(capsule_dir=str(tmp_path))
        flight.record("dispatch", worker=0, interval=1)
        good = flight.capture(kind="crash", message="it broke")
        bad = str(tmp_path / "postmortem-dead-001.json")
        with open(bad, "w") as fh:
            fh.write('{"version": 1, "trunc')
        return good, bad

    def test_skips_corrupt_capsules_with_a_warning(self, tmp_path,
                                                   capsys):
        self._capsule_dir(tmp_path)
        assert main(["report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "skipping unreadable capsule" in captured.err
        assert "it broke" in captured.out

    def test_fails_only_when_nothing_is_readable(self, tmp_path):
        good, _bad = self._capsule_dir(tmp_path)
        os.unlink(good)
        with pytest.raises(SystemExit, match="no readable capsule"):
            main(["report", str(tmp_path)])
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no post-mortem capsules"):
            main(["report", str(empty)])


class TestOrchestrator:
    def test_small_sweep_matches_the_serial_oracle(self, tmp_path):
        orchestrator = _orchestrate(tmp_path, TINY_SPEC)
        assert orchestrator.run() == 0
        assert all(st.state == "done"
                   for st in orchestrator.jobs.values())
        assert all(st.attempts == 1
                   for st in orchestrator.jobs.values())
        _assert_matches_oracle(tmp_path, orchestrator)

    def test_resume_of_a_finished_campaign_runs_nothing(self, tmp_path):
        orchestrator = _orchestrate(tmp_path, TINY_SPEC)
        assert orchestrator.run() == 0
        again = _orchestrate(tmp_path, resume=True)
        assert again.run() == 0
        assert all(st.attempts == 1 for st in again.jobs.values())

    def test_fresh_run_refuses_an_existing_campaign_dir(self, tmp_path):
        orchestrator = _orchestrate(tmp_path, TINY_SPEC)
        orchestrator.run()
        with pytest.raises(FleetError, match="fleet resume"):
            _orchestrate(tmp_path, TINY_SPEC)

    def test_resume_needs_a_campaign_dir(self, tmp_path):
        with pytest.raises(FleetError, match="not a resumable"):
            _orchestrate(tmp_path, resume=True)

    def test_rotten_job_is_quarantined_not_retried_forever(
            self, tmp_path):
        spec = dict(TINY_SPEC, name="rot")
        spec["jobs"] = [{"workload": "nosuchworkload"}]
        orchestrator = _orchestrate(tmp_path, spec, quarantine_after=2)
        assert orchestrator.run() == 1
        states = {st.spec.params["workload"]: st.state
                  for st in orchestrator.jobs.values()}
        assert states["nosuchworkload"] == "quarantined"
        assert states["blackscholes"] == "done"
        rotten = [st for st in orchestrator.jobs.values()
                  if st.state == "quarantined"]
        assert rotten[0].attempts == 2
        records, _ = read_journal(
            os.path.join(orchestrator.directory, "journal.jsonl"))
        assert any(r["event"] == "quarantined" for r in records)

    def test_retry_quarantined_unparks_on_resume(self, tmp_path):
        spec = dict(TINY_SPEC, name="rot")
        spec["jobs"] = [{"workload": "nosuchworkload"}]
        orchestrator = _orchestrate(tmp_path, spec, quarantine_after=1)
        assert orchestrator.run() == 1
        again = _orchestrate(tmp_path, resume=True, quarantine_after=1,
                             retry_quarantined=True)
        rotten = [st for st in again.jobs.values()
                  if "nosuchworkload" in st.job_id]
        assert rotten[0].state == "pending"
        assert again.run() == 1  # still rotten, re-quarantined
        assert rotten[0].attempts == 2


class TestFleetObservability:
    def test_status_file_and_prometheus_text(self, tmp_path):
        from repro.obs.monitor import prometheus_text, render_top
        orchestrator = _orchestrate(tmp_path, TINY_SPEC)
        assert orchestrator.run() == 0
        status_path = os.path.join(orchestrator.directory,
                                   "status.json")
        with open(status_path) as fh:
            status = json.load(fh)
        assert status["kind"] == "fleet"
        assert status["state"] == "done"
        assert status["progress"] == 1.0
        assert status["counts"]["done"] == 2
        text = prometheus_text(status)
        assert "repro_fleet_info" in text
        assert 'repro_fleet_jobs{state="done"} 2' in text
        frame = render_top(status)
        assert "campaign tiny" in frame
        assert "jobs 2/2 done" in frame
        # `repro top --once` and `repro fleet status` both accept it.
        assert main(["top", status_path, "--once"]) == 0
        assert main(["fleet", "status", orchestrator.directory]) == 0


def _spawn_fleet(campdir, specfile, resume=False, env=None):
    sub = (["resume", campdir] if resume
           else ["run", specfile, "--dir", campdir])
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet"] + sub +
        ["--workers", "2", "--backoff-base", "0.05",
         "--term-grace", "2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        start_new_session=True, env=env)


class TestChaosResume:
    """The acceptance property: SIGKILL the orchestrator at random
    journal offsets; resume must finish every job exactly once with
    oracle-identical stats."""

    def test_sigkill_orchestrator_then_resume(self, tmp_path):
        rng = random.Random(0xF1EE7)
        campdir = str(tmp_path / "camp")
        specfile = str(tmp_path / "spec.json")
        spec = dict(TINY_SPEC, name="chaos",
                    grid={"seed": [0, 1, 2]})
        with open(specfile, "w") as fh:
            json.dump(spec, fh)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))) + "/src",
                env.get("PYTHONPATH", "")) if p])

        proc = _spawn_fleet(campdir, specfile, env=env)
        kills = 0
        for attempt in range(12):
            time.sleep(rng.uniform(0.3, 1.2))
            if proc.poll() is not None:
                break
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
            kills += 1
            proc = _spawn_fleet(campdir, specfile, resume=True, env=env)
        rc = proc.wait(timeout=120)
        assert rc == 0, "campaign never completed (rc %s)" % rc

        # Idempotent replay: once a job journals "completed", no later
        # start record may exist for it.
        records, _ = read_journal(os.path.join(campdir,
                                               "journal.jsonl"))
        completed_at = {}
        for index, record in enumerate(records):
            if record.get("event") == "exit" and \
                    record.get("outcome") == "completed":
                completed_at.setdefault(record["job"], index)
            if record.get("event") == "start":
                done = completed_at.get(record["job"])
                assert done is None or index < done, (
                    "job %s re-ran after completing" % record["job"])
        parsed = SweepSpec.from_dict(spec)
        assert set(completed_at) == {j.job_id for j in parsed.jobs}

        # Every job's stats tree matches the serial in-process oracle.
        for job in parsed.jobs:
            fleet_stats = os.path.join(campdir, "jobs", job.job_id,
                                       "stats.json")
            oracle = _serial_stats(tmp_path, job)
            result = diff_trees(load_tree(oracle),
                                load_tree(fleet_stats),
                                ignore=["host"])
            assert result.equivalent, (
                "job %s diverged after %d orchestrator kill(s):\n%s"
                % (job.job_id, kills, result.render()))
