"""Tests for the mini-ISA: registers, opcodes, programs, µops."""

import pytest

from repro.isa.opcodes import INSTR_LENGTH, Opcode, decode_instruction
from repro.isa.program import BasicBlock, BBLExec, Instruction, Program
from repro.isa.registers import (
    NO_REG,
    NUM_REGS,
    RFLAGS,
    RIP,
    fp,
    gp,
    reg_name,
)
from repro.isa.uops import (
    NUM_PORTS,
    PORTS_ALU,
    Uop,
    UopType,
    port_list,
)


class TestRegisters:
    def test_gp_range(self):
        assert gp(0) == 0
        assert gp(15) == 15

    def test_gp_out_of_range(self):
        with pytest.raises(ValueError):
            gp(16)
        with pytest.raises(ValueError):
            gp(-1)

    def test_fp_offset(self):
        assert fp(0) == 16
        assert fp(7) == 23

    def test_fp_out_of_range(self):
        with pytest.raises(ValueError):
            fp(8)

    def test_special_registers_distinct(self):
        ids = {gp(i) for i in range(16)} | {fp(i) for i in range(8)}
        ids |= {RFLAGS, RIP}
        assert len(ids) == NUM_REGS

    def test_reg_names(self):
        assert reg_name(gp(3)) == "r3"
        assert reg_name(fp(2)) == "f2"
        assert reg_name(RFLAGS) == "rflags"
        assert reg_name(RIP) == "rip"
        assert reg_name(NO_REG) == "-"

    def test_reg_name_invalid(self):
        with pytest.raises(ValueError):
            reg_name(999)


class TestUops:
    def test_port_list(self):
        assert port_list(PORTS_ALU) == [0, 1, 5]
        assert port_list(0) == []
        assert port_list((1 << NUM_PORTS) - 1) == list(range(NUM_PORTS))

    def test_uop_mem_flags(self):
        load = Uop(UopType.LOAD, mem_slot=0)
        assert load.is_mem and load.is_load and not load.is_store
        store = Uop(UopType.STORE_ADDR, mem_slot=1)
        assert store.is_mem and store.is_store and not store.is_load
        alu = Uop(UopType.EXEC)
        assert not alu.is_mem

    def test_uop_repr_includes_type(self):
        assert "load" in repr(Uop(UopType.LOAD, mem_slot=0))


class TestOpcodeDecoding:
    def test_alu_single_uop(self):
        instr = Instruction(Opcode.ALU, gp(1), gp(2), gp(3))
        uops, slots = decode_instruction(instr, 0)
        assert len(uops) == 1 and slots == 0
        assert uops[0].type == UopType.EXEC
        assert uops[0].dst2 == RFLAGS

    def test_load_consumes_slot(self):
        instr = Instruction(Opcode.LOAD, gp(1), dst1=gp(2))
        uops, slots = decode_instruction(instr, 3)
        assert slots == 1
        assert uops[0].mem_slot == 3

    def test_store_fission(self):
        """Stores split into store-address + store-data µops."""
        instr = Instruction(Opcode.STORE, gp(1), gp(2))
        uops, slots = decode_instruction(instr, 0)
        assert [u.type for u in uops] == [UopType.STORE_ADDR,
                                          UopType.STORE_DATA]
        assert slots == 1
        assert uops[0].mem_slot == uops[1].mem_slot == 0

    def test_load_alu_fission_dependency(self):
        """Memory-operand ALU: load µop feeds the exec µop."""
        instr = Instruction(Opcode.LOAD_ALU, gp(1), gp(2), gp(3))
        uops, slots = decode_instruction(instr, 0)
        assert [u.type for u in uops] == [UopType.LOAD, UopType.EXEC]
        assert uops[0].dst1 == gp(3)
        assert uops[1].src1 == gp(3)  # dataflow dependency

    def test_alu_store_four_uops_two_slots(self):
        instr = Instruction(Opcode.ALU_STORE, gp(1), gp(2), gp(3))
        uops, slots = decode_instruction(instr, 0)
        assert len(uops) == 4 and slots == 2
        assert uops[0].mem_slot == 0 and uops[2].mem_slot == 1

    def test_branch_writes_rip(self):
        uops, _ = decode_instruction(Instruction(Opcode.COND_BRANCH), 0)
        assert uops[0].type == UopType.BRANCH
        assert uops[0].dst1 == RIP
        assert uops[0].src1 == RFLAGS

    def test_div_long_latency(self):
        uops, _ = decode_instruction(
            Instruction(Opcode.DIV, gp(1), gp(2), gp(3)), 0)
        assert uops[0].lat > 10

    def test_fp_latencies_ordered(self):
        add, _ = decode_instruction(
            Instruction(Opcode.FPADD, fp(0), fp(1), fp(2)), 0)
        mul, _ = decode_instruction(
            Instruction(Opcode.FPMUL, fp(0), fp(1), fp(2)), 0)
        div, _ = decode_instruction(
            Instruction(Opcode.FPDIV, fp(0), fp(1), fp(2)), 0)
        assert add[0].lat < mul[0].lat < div[0].lat

    def test_every_opcode_decodes(self):
        for opcode in Opcode.NAMES:
            instr = Instruction(opcode, gp(1), gp(2), gp(3))
            uops, slots = decode_instruction(instr, 0)
            assert len(uops) >= 1
            assert slots >= 0

    def test_lengths_defined_for_all_opcodes(self):
        assert set(INSTR_LENGTH) == set(Opcode.NAMES)

    def test_unknown_opcode_raises(self):
        instr = Instruction(Opcode.ALU)
        instr.opcode = 999
        with pytest.raises(ValueError):
            decode_instruction(instr, 0)


class TestProgram:
    def test_block_layout_contiguous(self):
        program = Program("p", code_base=0x1000)
        b0 = program.add_block([Instruction(Opcode.ALU, gp(1), gp(2))])
        b1 = program.add_block([Instruction(Opcode.NOP)])
        assert b0.address == 0x1000
        assert b1.address == b0.end_address

    def test_block_ids_sequential(self):
        program = build = Program("p")
        blocks = [build.add_block([Instruction(Opcode.NOP)])
                  for _ in range(5)]
        assert [b.bbl_id for b in blocks] == list(range(5))
        assert program.num_blocks == 5

    def test_mem_slot_counting(self):
        block = BasicBlock(0, 0, [
            Instruction(Opcode.LOAD, gp(1), dst1=gp(2)),
            Instruction(Opcode.STORE, gp(1), gp(2)),
            Instruction(Opcode.ALU_STORE, gp(1), gp(2), gp(3)),
            Instruction(Opcode.ALU, gp(1), gp(2), gp(3)),
        ])
        assert block.num_mem_slots == 4  # 1 + 1 + 2 + 0

    def test_num_bytes_matches_lengths(self):
        instrs = [Instruction(Opcode.ALU, gp(1), gp(2)),
                  Instruction(Opcode.JMP)]
        block = BasicBlock(0, 0, instrs)
        assert block.num_bytes == sum(i.length for i in instrs)

    def test_program_ids_unique(self):
        assert Program("a").program_id != Program("b").program_id

    def test_instruction_is_branch(self):
        assert Instruction(Opcode.COND_BRANCH).is_branch
        assert Instruction(Opcode.JMP).is_branch
        assert not Instruction(Opcode.ALU, gp(1), gp(2)).is_branch


class TestBBLExec:
    def test_default_next_address_falls_through(self):
        block = BasicBlock(0, 0x100, [Instruction(Opcode.NOP)])
        exec_ = BBLExec(block)
        assert exec_.next_address == block.end_address

    def test_explicit_next_address(self):
        block = BasicBlock(0, 0x100, [Instruction(Opcode.JMP)])
        exec_ = BBLExec(block, taken=True, next_address=0x2000)
        assert exec_.next_address == 0x2000

    def test_carries_syscall(self):
        block = BasicBlock(0, 0, [Instruction(Opcode.SYSCALL)])
        exec_ = BBLExec(block, syscall="desc")
        assert exec_.syscall == "desc"
