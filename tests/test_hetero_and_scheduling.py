"""Tests for heterogeneous chips, home-core scheduling, and the bound
phase's second-chance (mid-interval wakeup) behaviour."""

import dataclasses

from repro.config import CoreConfig, small_test_system
from repro.core import ZSim
from repro.cpu import OOOCore, SimpleCore
from repro.dbt.instrumentation import InstrumentedStream
from repro.isa.opcodes import Opcode
from repro.isa.program import BBLExec, Instruction, Program
from repro.isa.registers import gp
from repro.virt.process import SimThread
from repro.virt.scheduler import Scheduler
from repro.virt.syscalls import Barrier, FutexWait, FutexWake
from repro.workloads.base import KernelSpec, Workload


class TestHeterogeneousCores:
    def test_mixed_core_models_instantiated(self):
        cfg = small_test_system(num_cores=4, core_model="simple")
        cfg = dataclasses.replace(
            cfg, hetero_cores={0: CoreConfig(model="ooo"),
                               1: CoreConfig(model="ooo")})
        sim = ZSim(cfg)
        assert isinstance(sim.cores[0], OOOCore)
        assert isinstance(sim.cores[1], OOOCore)
        assert isinstance(sim.cores[2], SimpleCore)
        assert isinstance(sim.cores[3], SimpleCore)

    def test_big_cores_run_faster(self):
        cfg = small_test_system(num_cores=2, core_model="simple")
        cfg = dataclasses.replace(
            cfg, hetero_cores={0: CoreConfig(model="ooo")})
        spec = KernelSpec(name="het", footprint_kb=16, mem_ratio=0.2,
                          hot_fraction=0.9, barrier_iters=0, ilp=6,
                          seed=3)
        threads = Workload(spec, 2).make_threads(target_instrs=40_000,
                                                 num_threads=2)
        threads[0].affinity = {0}
        threads[1].affinity = {1}
        sim = ZSim(cfg, threads=threads)
        sim.run()
        assert sim.cores[0].ipc > 1.3 * sim.cores[1].ipc

    def test_mlp_window_follows_core_model(self):
        cfg = small_test_system(num_cores=2, core_model="simple")
        cfg = dataclasses.replace(
            cfg, hetero_cores={0: CoreConfig(model="ooo")})
        sim = ZSim(cfg)
        assert sim.weave.mlp_window[0] == \
            cfg.boundweave.ooo_mlp_window
        assert sim.weave.mlp_window[1] == 1


class TestHomeCores:
    def test_threads_spread_across_cores(self):
        sched = Scheduler(num_cores=4)
        threads = [SimThread(iter(()), name="t%d" % i) for i in range(8)]
        for t in threads:
            sched.add_thread(t)
        homes = [t.home_core for t in threads]
        assert sorted(homes) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_home_respects_affinity(self):
        sched = Scheduler(num_cores=4)
        t = SimThread(iter(()), affinity={2, 3})
        sched.add_thread(t)
        assert t.home_core in (2, 3)

    def test_empty_affinity_rejected(self):
        import pytest
        sched = Scheduler(num_cores=2)
        t = SimThread(iter(()), affinity={5})
        with pytest.raises(ValueError):
            sched.add_thread(t)

    def test_no_steal_from_free_home(self):
        """A thread whose home core is free is not stolen by others."""
        sched = Scheduler(num_cores=2)
        a = SimThread(iter(()), name="a")
        b = SimThread(iter(()), name="b")
        sched.add_thread(a)  # home 0
        sched.add_thread(b)  # home 1
        assert sched.pick_thread(0, 0) is a
        sched.deschedule(0)
        # Core 0 asks again: b's home core 1 is free, so no steal.
        assert sched.pick_thread(0, 100) is None

    def test_steal_when_home_busy(self):
        sched = Scheduler(num_cores=2)
        a = SimThread(iter(()), name="a")
        b = SimThread(iter(()), name="b")
        c = SimThread(iter(()), name="c")
        sched.add_thread(a)  # home 0
        sched.add_thread(b)  # home 1
        sched.add_thread(c)  # home 0 (least loaded tie -> 0)
        assert sched.pick_thread(0, 0) is a   # core 0 busy with a
        assert sched.pick_thread(1, 0) is b   # core 1 busy with b
        sched.deschedule(1)                   # b left core 1
        # c's home (0) is busy running a -> free core 1 steals c.
        assert sched.pick_thread(1, 0) is c


class TestSecondChance:
    def _program(self):
        program = Program("sc")
        work = program.add_block(
            [Instruction(Opcode.ALU, gp(1), gp(2), gp(1))] * 8)
        sysb = program.add_block([Instruction(Opcode.SYSCALL)])
        return work, sysb

    def test_mid_interval_wakeup_resumes_same_interval(self):
        """With a huge interval, a futex waiter woken early in the
        interval still finishes inside it (the join/leave property)."""
        work, sysb = self._program()

        def waiter():
            yield BBLExec(sysb, (), syscall=FutexWait("k"))
            for _ in range(10):
                yield BBLExec(work)

        def waker():
            for _ in range(5):
                yield BBLExec(work)
            yield BBLExec(sysb, (), syscall=FutexWake("k"))
            for _ in range(5):
                yield BBLExec(work)

        cfg = small_test_system(num_cores=2, core_model="simple",
                                interval_cycles=100_000)
        sim = ZSim(cfg, threads=[
            SimThread(InstrumentedStream(waiter()), name="waiter"),
            SimThread(InstrumentedStream(waker()), name="waker")])
        res = sim.run()
        # Everything finishes in a couple of intervals, at cycles far
        # below the interval length.
        assert res.intervals <= 2
        assert res.cycles < 5_000

    def test_barrier_releases_within_interval(self):
        work, sysb = self._program()

        def party(tid):
            for _ in range(3 + tid):
                yield BBLExec(work)
            yield BBLExec(sysb, (), syscall=Barrier("b", 3))
            for _ in range(5):
                yield BBLExec(work)

        cfg = small_test_system(num_cores=3, core_model="simple",
                                interval_cycles=50_000)
        sim = ZSim(cfg, threads=[
            SimThread(InstrumentedStream(party(t)), name="p%d" % t)
            for t in range(3)])
        res = sim.run()
        assert res.intervals <= 2
        assert res.cycles < 3_000

    def test_idle_cores_do_not_pad_cycles(self):
        """Cores that never run stay at cycle 0 (no idle padding)."""
        work, _sysb = self._program()

        def stream():
            for _ in range(20):
                yield BBLExec(work)

        cfg = small_test_system(num_cores=4, core_model="simple")
        sim = ZSim(cfg, threads=[
            SimThread(InstrumentedStream(stream()), name="only")])
        sim.run()
        idle_cycles = [c.cycle for c in sim.cores if c.instrs == 0]
        assert idle_cycles == [0, 0, 0]


class TestResume:
    def test_run_can_be_resumed(self, tiny_config):
        spec = KernelSpec(name="resume", barrier_iters=0, seed=2)
        threads = Workload(spec, 2).make_threads(target_instrs=30_000,
                                                 num_threads=2)
        sim = ZSim(tiny_config, threads=threads)
        first = sim.run(max_instrs=10_000)
        assert not sim.scheduler.all_done
        second = sim.run()
        assert sim.scheduler.all_done
        assert second.instrs > first.instrs
        assert second.cycles >= first.cycles

    def test_resumed_run_matches_single_run(self, tiny_config):
        def run(split):
            spec = KernelSpec(name="resume2", barrier_iters=0, seed=2)
            threads = Workload(spec, 2).make_threads(
                target_instrs=30_000, num_threads=2)
            sim = ZSim(tiny_config, threads=threads)
            if split:
                sim.run(max_instrs=10_000)
            return sim.run().cycles
        # Interval boundaries shift slightly on resume; results agree
        # closely but not bit-exactly.
        assert abs(run(True) - run(False)) < 0.02 * run(False)
