"""Tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache_array import CacheArray
from repro.memory.coherence import MESI


class TestBasics:
    def test_miss_returns_none(self):
        array = CacheArray(4, 2)
        assert array.lookup(0x10) is None

    def test_fill_then_hit(self):
        array = CacheArray(4, 2)
        array.fill(0x10, MESI.E)
        assert array.lookup(0x10) == MESI.E

    def test_update_state(self):
        array = CacheArray(4, 2)
        array.fill(0x10, MESI.S)
        array.update_state(0x10, MESI.M)
        assert array.lookup(0x10) == MESI.M

    def test_double_fill_raises(self):
        array = CacheArray(4, 2)
        array.fill(0x10, MESI.E)
        with pytest.raises(ValueError):
            array.fill(0x10, MESI.E)

    def test_invalidate(self):
        array = CacheArray(4, 2)
        array.fill(0x10, MESI.M)
        assert array.invalidate(0x10) == MESI.M
        assert array.lookup(0x10) is None
        assert array.invalidate(0x10) is None

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheArray(0, 2)


class TestEviction:
    def test_no_eviction_until_full(self):
        array = CacheArray(1, 4)
        for i in range(4):
            victim, _ = array.fill(i, MESI.E)
            assert victim is None

    def test_eviction_when_set_full(self):
        array = CacheArray(1, 2)
        array.fill(0, MESI.E)
        array.fill(1, MESI.M)
        victim, state = array.fill(2, MESI.E)
        assert victim == 0  # LRU
        assert state == MESI.E

    def test_eviction_respects_lru_touch(self):
        array = CacheArray(1, 2)
        array.fill(0, MESI.E)
        array.fill(1, MESI.E)
        array.lookup(0)  # touch 0; 1 becomes LRU
        victim, _ = array.fill(2, MESI.E)
        assert victim == 1

    def test_sets_are_independent(self):
        array = CacheArray(2, 1)
        array.fill(0, MESI.E)  # set 0
        victim, _ = array.fill(1, MESI.E)  # set 1
        assert victim is None

    def test_would_evict_is_pure(self):
        array = CacheArray(1, 2)
        array.fill(0, MESI.E)
        assert array.would_evict(5) is None  # free way remains
        array.fill(1, MESI.E)
        candidate = array.would_evict(5)
        assert candidate == 0
        # No mutation happened.
        assert array.lookup(0, touch=False) == MESI.E
        assert array.would_evict(0) is None  # already present


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63),
                          st.sampled_from([MESI.S, MESI.E, MESI.M])),
                min_size=1, max_size=200))
def test_array_invariants(ops):
    """Occupancy never exceeds capacity; resident lines are findable;
    victims are always lines that were resident."""
    array = CacheArray(4, 2)
    resident = {}
    for line, state in ops:
        if array.lookup(line, touch=False) is not None:
            array.update_state(line, state)
            resident[line] = state
            continue
        victim, vstate = array.fill(line, state)
        if victim is not None:
            assert resident.pop(victim) == vstate
        resident[line] = state
        assert array.occupancy() <= 4 * 2
    assert dict(array.resident_lines()) == resident
    for line, state in resident.items():
        assert array.lookup(line, touch=False) == state


def test_occupancy_counts():
    array = CacheArray(2, 2)
    for line in range(4):
        array.fill(line, MESI.E)
    assert array.occupancy() == 4
